// graph_tool — dataset utility: generate synthetic graphs, convert
// between formats, and inspect structure.
//
//   graph_tool generate --dataset cal --scale 0.0625 --out cal.bin
//   graph_tool convert --in wiki.mtx --out wiki.bin
//   graph_tool info --in cal.bin
//   graph_tool component --in wiki.bin --out wiki_lcc.bin
//
// Formats are inferred from extensions: .gr (DIMACS), .mtx
// (MatrixMarket), .txt/.el (edge list), .bin (tunesssp binary cache).
#include <cstdio>
#include <string>

#include "graph/components.hpp"
#include "graph/datasets.hpp"
#include "graph/degree_stats.hpp"
#include "obs/run_report.hpp"
#include "tools/tool_common.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace sssp;

namespace {

using tools::load_any_graph;
using tools::save_any_graph;

void print_info(const graph::CsrGraph& g) {
  const auto stats = graph::compute_degree_stats(g);
  std::printf("%s\n", to_string(stats).c_str());
  std::printf("mean edge weight: %.2f\n", g.mean_edge_weight());
  std::printf("memory: %.1f MiB\n",
              static_cast<double>(g.memory_bytes()) / (1024.0 * 1024.0));
  std::printf("scale-free shape: %s\n",
              graph::looks_scale_free(stats) ? "yes" : "no");
  const auto labeling = graph::weakly_connected_components(g);
  std::printf("weak components: %zu (largest %zu vertices)\n",
              labeling.num_components(),
              labeling.num_components()
                  ? labeling.sizes[labeling.largest_component()]
                  : 0);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("in", "", "input graph file (.bin/.gr/.mtx/.txt/.el)");
  flags.define("out", "", "output graph file (.bin/.gr)");
  flags.define("dataset", "cal", "generate: cal | wiki");
  flags.define("scale", "0.0625", "generate: fraction of paper size");
  flags.define("seed", "42", "generate: RNG seed");
  tools::define_fault_flags(flags);
  tools::define_observability_flags(flags);
  tools::define_threads_flag(flags);
  tools::define_resource_flags(flags);
  flags.define("report-out", "",
               "write a run-report JSON (dataset shape + totals) here");
  if (flags.handle_help(
          "graph_tool <generate|convert|info|component> [flags]"))
    return 0;
  flags.check_unknown();

  if (flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: graph_tool <generate|convert|info|component> "
                 "[flags]; see --help\n");
    return 2;
  }
  const std::string command = flags.positional()[0];

  util::RunControl control;
  try {
    tools::enable_observability(flags);
    tools::enable_faults(flags);
    tools::apply_resource_flags(flags);
    const std::size_t threads = tools::apply_threads_flag(flags);
    // Graph commands are monolithic (no iteration boundary to poll), but
    // a SIGINT/SIGTERM received mid-command still marks whatever gets
    // flushed below as interrupted and maps to exit 11.
    util::install_signal_stop(control);
    std::uint64_t report_vertices = 0;
    util::WallTimer timer;
    if (command == "generate") {
      const auto dataset = graph::parse_dataset(flags.get_string("dataset"));
      const auto g = graph::make_dataset(
          dataset,
          {.scale = flags.get_double("scale"),
           .seed = static_cast<std::uint64_t>(flags.get_int("seed"))});
      std::printf("generated %s in %.2fs\n",
                  graph::dataset_name(dataset).c_str(),
                  timer.elapsed_seconds());
      report_vertices = g.num_vertices();
      print_info(g);
      if (const auto out = flags.get_string("out"); !out.empty()) {
        save_any_graph(g, out);
        std::printf("wrote %s\n", out.c_str());
      }
    } else if (command == "convert") {
      const auto g = load_any_graph(flags.get_string("in"));
      report_vertices = g.num_vertices();
      save_any_graph(g, flags.get_string("out"));
      std::printf("converted %s -> %s (%zu vertices, %zu edges) in %.2fs\n",
                  flags.get_string("in").c_str(),
                  flags.get_string("out").c_str(), g.num_vertices(),
                  g.num_edges(), timer.elapsed_seconds());
    } else if (command == "info") {
      const auto g = load_any_graph(flags.get_string("in"));
      report_vertices = g.num_vertices();
      print_info(g);
    } else if (command == "component") {
      const auto g = load_any_graph(flags.get_string("in"));
      const auto extracted = graph::largest_component(g);
      report_vertices = extracted.graph.num_vertices();
      std::printf("largest component: %zu of %zu vertices, %zu edges\n",
                  extracted.graph.num_vertices(), g.num_vertices(),
                  extracted.graph.num_edges());
      if (const auto out = flags.get_string("out"); !out.empty()) {
        save_any_graph(extracted.graph, out);
        std::printf("wrote %s\n", out.c_str());
      }
    } else {
      std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
      return 2;
    }
    const util::StopReason stop = control.reason();
    if (const auto path = flags.get_string("report-out"); !path.empty()) {
      obs::RunReportMeta meta;
      meta.tool = "graph_tool";
      meta.algorithm = command;
      meta.dataset = !flags.get_string("in").empty()
                         ? flags.get_string("in")
                         : flags.get_string("dataset");
      meta.num_vertices = report_vertices;
      meta.threads = threads;
      meta.host_seconds = timer.elapsed_seconds();
      meta.interrupted = stop != util::StopReason::kNone;
      meta.outcome = stop == util::StopReason::kNone ? "completed"
                                                     : util::to_string(stop);
      obs::save_run_report(path, meta, {});
      std::printf("wrote run report to %s\n", path.c_str());
    }
    tools::print_fault_summary();
    tools::write_observability_outputs(flags);
    if (stop != util::StopReason::kNone) return tools::exit_code_for_stop(stop);
  } catch (const graph::GraphIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::exit_code_for(e);
  } catch (const util::DiskFullError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitDiskFull;
  } catch (const res::ResourceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitResourceBudget;
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "error: out of memory\n");
    return tools::kExitResourceBudget;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
