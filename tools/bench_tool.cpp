// Differential performance-regression runner (docs/PERFORMANCE.md,
// "Regression harness").
//
// Executes a pinned workload matrix — road + R-MAT graphs × thread
// counts 1/4 × near-far/self-tuning — measuring each cell median-of-N
// with warmup runs excluded, then one extra profiled run per cell for
// energy and hardware counters (degrading through the same backend
// ladder as sssp_tool --profile). Results land in BENCH_sssp.json
// (schema "tunesssp.bench.v1").
//
// With --baseline the current medians are compared cell-by-cell
// against a committed baseline document using a noise-aware threshold:
// a cell regresses only when its median slowed by more than
// max(--threshold, baseline_spread + current_spread), where spread is
// (max - min) / (2 * median) of the measured runs. Regressions list on
// stderr and the tool exits 14 (kExitBenchRegression) so CI can gate.
//
// --slowdown F spins inside the timed region until each run takes F×
// its real time — an injected synthetic regression used by the test
// suite to prove the comparison actually fires.
//
// --overhead-check asserts the disarmed-profiling guarantee: a
// SSSP_PROF_PHASE scope that is not armed costs one relaxed atomic
// load and a branch, and (entries-per-sweep × per-scope-cost) must be
// ≤ 1% of the advance sweep's wall clock.
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/self_tuning.hpp"
#include "frontier/engine.hpp"
#include "graph/binary_io.hpp"
#include "graph/csr.hpp"
#include "graph/degree_stats.hpp"
#include "graph/rmat.hpp"
#include "graph/road.hpp"
#include "obs/json.hpp"
#include "prof/profiler.hpp"
#include "serve/server.hpp"
#include "sssp/batch_engine.hpp"
#include "sssp/near_far.hpp"
#include "tools/tool_common.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace sssp;

struct Cell {
  std::string name;       // stable key, e.g. "road.t1.near-far"
  std::string dataset;    // "road" | "rmat"
  std::size_t threads;    // 1 | 4
  std::string algorithm;  // "near-far" | "self-tuning"
};

struct CellResult {
  Cell cell;
  std::vector<double> run_seconds;  // measured runs, warmups excluded
  double median_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double spread = 0.0;  // (max - min) / (2 * median)
  std::uint64_t iterations = 0;
  std::uint64_t improving_relaxations = 0;
  double edges_per_second = 0.0;
  // From the extra profiled run.
  double energy_joules = 0.0;
  double average_watts = 0.0;
  std::string energy_backend;
  std::string counter_backend;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
};

// The matrix is pinned: fixed generator seeds, fixed sources, fixed
// cells. quick is sized for CI smoke (sub-second cells); full for
// workstation trend tracking.
graph::CsrGraph make_bench_graph(const std::string& dataset, bool full) {
  if (dataset == "road") {
    graph::RoadOptions options;
    options.rows = full ? 512 : 288;
    options.cols = full ? 512 : 288;
    options.seed = 7;
    return graph::generate_road(options);
  }
  graph::RmatOptions options;
  options.scale = full ? 17 : 15;
  options.num_edges = full ? (1u << 20) : (1u << 19);
  options.seed = 42;
  return graph::generate_rmat(options);
}

std::vector<Cell> make_matrix() {
  std::vector<Cell> cells;
  for (const char* dataset : {"road", "rmat"})
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}})
      for (const char* algorithm : {"near-far", "self-tuning"}) {
        Cell cell;
        cell.dataset = dataset;
        cell.threads = threads;
        cell.algorithm = algorithm;
        cell.name = std::string(dataset) + ".t" + std::to_string(threads) +
                    "." + algorithm;
        cells.push_back(cell);
      }
  return cells;
}

algo::SsspResult run_cell_once(const Cell& cell, const graph::CsrGraph& g,
                               graph::VertexId source) {
  if (cell.algorithm == "near-far") {
    algo::NearFarOptions options;
    return algo::near_far(g, source, options);
  }
  core::SelfTuningOptions options;
  options.set_point = 20000.0;
  options.measure_controller_time = false;  // deterministic workload
  return core::self_tuning_sssp(g, source, options);
}

// Spins until the timed region has consumed factor× its real elapsed
// time. Burns CPU (not sleep) so the slowdown survives task-clock
// accounting too.
void apply_slowdown(const util::WallTimer& timer, double real_seconds,
                    double factor) {
  if (factor <= 1.0) return;
  volatile std::uint64_t sink = 0;
  while (timer.elapsed_seconds() < real_seconds * factor) {
    std::uint64_t acc = sink;
    for (int i = 0; i < 1000; ++i) acc += static_cast<std::uint64_t>(i);
    sink = acc;
  }
}

double median_of(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

CellResult measure_cell(const Cell& cell, const graph::CsrGraph& g,
                        int runs, int warmup, double slowdown,
                        const prof::Profiler::Options& profile_options) {
  CellResult result;
  result.cell = cell;
  util::ThreadPool::set_global_threads(cell.threads);
  const graph::VertexId source = graph::max_degree_vertex(g);

  for (int run = 0; run < warmup + runs; ++run) {
    util::WallTimer timer;
    algo::SsspResult r = run_cell_once(cell, g, source);
    const double real = timer.elapsed_seconds();
    apply_slowdown(timer, real, slowdown);
    const double seconds = timer.elapsed_seconds();
    if (run < warmup) continue;
    result.run_seconds.push_back(seconds);
    result.iterations = r.iterations.size();
    result.improving_relaxations = r.improving_relaxations;
  }

  result.median_seconds = median_of(result.run_seconds);
  result.min_seconds =
      *std::min_element(result.run_seconds.begin(), result.run_seconds.end());
  result.max_seconds =
      *std::max_element(result.run_seconds.begin(), result.run_seconds.end());
  result.spread = result.median_seconds > 0.0
                      ? (result.max_seconds - result.min_seconds) /
                            (2.0 * result.median_seconds)
                      : 0.0;
  result.edges_per_second =
      result.median_seconds > 0.0
          ? static_cast<double>(g.num_edges()) / result.median_seconds
          : 0.0;

  // One extra armed run for energy/counters — kept out of the timing
  // sample so backend probes and per-phase reads never skew medians.
  prof::Profiler& profiler = prof::Profiler::global();
  profiler.start(profile_options);
  {
    util::WallTimer timer;
    algo::SsspResult r = run_cell_once(cell, g, source);
    apply_slowdown(timer, timer.elapsed_seconds(), 1.0);
    (void)r;
  }
  profiler.stop();
  const prof::RunProfile profile = profiler.report();
  result.energy_joules = profile.energy.joules;
  result.average_watts = profile.energy.average_watts;
  result.energy_backend = prof::to_string(profile.energy.backend);
  result.counter_backend = prof::to_string(profile.counter_backend);
  result.cycles = profile.totals.cycles;
  result.instructions = profile.totals.instructions;
  return result;
}

// Serving throughput over the pinned road graph (--serve): a seeded
// hot/cold query mix driven closed-loop through an in-process
// serve::Server with certification on, reported as the `serve` section
// of the bench document. Informational only — the baseline comparison
// walks `cells` and never gates on it (QPS on shared CI runners is too
// noisy to diff), but the trend lands in every BENCH_sssp.json.
// Resident-set snapshot from /proc/self/status (kB fields, reported in
// MB). The anon/file split is what makes the multi-process memory
// story legible: private (anon) pages are paid once per worker
// process, while file-backed pages — the mmap'd graph cache
// (graph/mmap_cache.hpp) — are shared page-cache entries, so N workers
// cost ~1x graph RSS, not Nx.
struct RssSnapshot {
  double vm_rss_mb = 0.0;  // total resident
  double anon_mb = 0.0;    // private: heap, stacks — per-process
  double file_mb = 0.0;    // file-backed: shared across processes
};

RssSnapshot read_rss() {
  RssSnapshot snap;
  std::ifstream status("/proc/self/status");
  std::string line;
  const auto kb_field = [&](const char* key) -> double {
    if (line.rfind(key, 0) != 0) return -1.0;
    return std::strtod(line.c_str() + std::strlen(key), nullptr) / 1024.0;
  };
  while (std::getline(status, line)) {
    if (const double v = kb_field("VmRSS:"); v >= 0.0) snap.vm_rss_mb = v;
    if (const double v = kb_field("RssAnon:"); v >= 0.0) snap.anon_mb = v;
    if (const double v = kb_field("RssFile:"); v >= 0.0) snap.file_mb = v;
  }
  return snap;
}

struct ServeBench {
  bool ran = false;
  std::uint64_t queries = 0;
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t shed = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double latency_ms_p50 = 0.0, latency_ms_p95 = 0.0, latency_ms_p99 = 0.0;
  RssSnapshot rss;            // taken right after the drive loop
  double graph_heap_mb = 0.0; // 0 when the graph is an mmap view
  double mapped_mb = 0.0;     // > 0 for the mmap leg
};

ServeBench measure_serve(const graph::CsrGraph& g, bool full) {
  ServeBench bench;
  serve::ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 64;
  options.cache_entries = 128;
  options.verify_default = true;  // measure *certified* serving
  serve::Server server(g, options);
  server.start();

  // Seeded mix: 60% of queries hit a 4-source hot set (cache-served
  // after first touch), the rest draw cold sources.
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<graph::VertexId> any_source(
      0, static_cast<graph::VertexId>(g.num_vertices() - 1));
  const graph::VertexId hot[4] = {any_source(rng), any_source(rng),
                                  any_source(rng), any_source(rng)};

  const std::uint64_t total = full ? 2000 : 400;
  // Closed loop with bounded outstanding work: never deeper than half
  // the queue, so this measures service rate, not shed rate.
  const std::size_t window = options.queue_capacity / 2;
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t responded = 0;
  const auto sink = [&](const serve::Response&) {
    std::lock_guard<std::mutex> lock(mu);
    ++responded;
    cv.notify_all();
  };

  util::WallTimer timer;
  for (std::uint64_t i = 0; i < total; ++i) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return i - responded < window; });
    }
    const graph::VertexId source =
        coin(rng) < 0.6 ? hot[i % 4] : any_source(rng);
    server.submit("{\"id\":" + std::to_string(i) +
                      ",\"source\":" + std::to_string(source) + "}",
                  sink);
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return responded == total; });
  }
  bench.seconds = timer.elapsed_seconds();
  bench.rss = read_rss();
  bench.graph_heap_mb =
      static_cast<double>(g.memory_bytes()) / (1024.0 * 1024.0);
  server.drain();

  const serve::ServerStats stats = server.stats();
  bench.ran = true;
  bench.queries = total;
  bench.completed = stats.completed;
  bench.cache_hits = stats.cache.hits;
  bench.shed = stats.shed_queue_full + stats.shed_expired_queue;
  bench.qps = bench.seconds > 0.0
                  ? static_cast<double>(stats.completed) / bench.seconds
                  : 0.0;
  bench.latency_ms_p50 = stats.latency_ms_p50;
  bench.latency_ms_p95 = stats.latency_ms_p95;
  bench.latency_ms_p99 = stats.latency_ms_p99;
  return bench;
}

// The same serve workload over an mmap'd v2 cache of the road graph
// instead of the heap copy — the configuration the crash-isolated
// supervisor runs its worker fleet in. The interesting number is the
// RSS split: the graph's bytes move from anon (private, per-process)
// to file-backed (shared page cache), which is why N worker processes
// cost ~1x graph RSS instead of Nx (docs/SERVING.md, "Process model &
// crash isolation").
ServeBench measure_serve_mmap(const graph::CsrGraph& road, bool full) {
  const std::string path = "/tmp/tunesssp_bench_road_" +
                           std::to_string(::getpid()) + ".bin";
  graph::save_binary_file(road, path);
  ServeBench bench;
  {
    graph::MmapGraph mapped = graph::MmapGraph::open(path);
    bench = measure_serve(mapped.graph(), full);
    bench.mapped_mb =
        static_cast<double>(mapped.mapped_bytes()) / (1024.0 * 1024.0);
  }
  std::remove(path.c_str());
  return bench;
}

// Batched multi-source throughput (--multi-source): the same K = 8
// hash-picked sources per pinned graph class solved three ways —
// sequentially (K single-source near-far runs) and via both
// batch-engine strategies (docs/PERFORMANCE.md, "Batched
// multi-source"). Warmup runs are excluded, timed runs averaged.
// Informational like `serve`: reported as the `multi_source` section,
// never gated — the gated speedup record lives in BENCH_frontier.json
// via bench/multi_source.
struct MultiSourceBench {
  bool ran = false;
  std::size_t lanes = 0;
  struct Row {
    std::string dataset;
    double sequential_seconds = 0.0;
    double fused_seconds = 0.0;
    double independent_seconds = 0.0;
  };
  std::vector<Row> rows;
};

MultiSourceBench measure_multi_source(
    const std::map<std::string, graph::CsrGraph>& graphs, int runs,
    int warmup) {
  MultiSourceBench bench;
  bench.ran = true;
  bench.lanes = 8;
  for (const auto& [name, g] : graphs) {
    std::vector<graph::VertexId> sources;
    util::SplitMix64 hash(0x9e3779b97f4a7c15ull);
    while (sources.size() < bench.lanes) {
      const auto v =
          static_cast<graph::VertexId>(hash.next() % g.num_vertices());
      if (!g.neighbors(v).empty()) sources.push_back(v);
    }
    const auto time_avg = [&](const auto& fn) {
      for (int i = 0; i < warmup; ++i) fn();
      util::WallTimer timer;
      for (int i = 0; i < runs; ++i) fn();
      return timer.elapsed_seconds() / runs;
    };
    MultiSourceBench::Row row;
    row.dataset = name;
    row.sequential_seconds = time_avg([&] {
      for (const graph::VertexId s : sources) (void)algo::near_far(g, s);
    });
    algo::BatchOptions fused;
    fused.strategy = algo::BatchStrategy::kFused;
    row.fused_seconds =
        time_avg([&] { (void)algo::run_batch(g, sources, fused); });
    algo::BatchOptions independent;
    independent.strategy = algo::BatchStrategy::kIndependent;
    row.independent_seconds =
        time_avg([&] { (void)algo::run_batch(g, sources, independent); });
    bench.rows.push_back(row);
  }
  return bench;
}

void write_serve_section(obs::JsonWriter& w, const ServeBench& bench) {
  w.key("queries").value(bench.queries);
  w.key("completed").value(bench.completed);
  w.key("cache_hits").value(bench.cache_hits);
  w.key("shed").value(bench.shed);
  w.key("seconds").value(bench.seconds);
  w.key("qps").value(bench.qps);
  w.key("latency_ms_p50").value(bench.latency_ms_p50);
  w.key("latency_ms_p95").value(bench.latency_ms_p95);
  w.key("latency_ms_p99").value(bench.latency_ms_p99);
  w.key("graph_heap_mb").value(bench.graph_heap_mb);
  if (bench.mapped_mb > 0.0) w.key("graph_mapped_mb").value(bench.mapped_mb);
  w.key("rss").begin_object();
  w.key("vm_rss_mb").value(bench.rss.vm_rss_mb);
  w.key("anon_mb").value(bench.rss.anon_mb);
  w.key("file_mb").value(bench.rss.file_mb);
  w.end_object();
}

void write_bench_json(std::ostream& out, const std::string& matrix, int runs,
                      int warmup, double slowdown,
                      const std::vector<CellResult>& results,
                      const ServeBench& serve_bench,
                      const ServeBench& serve_mmap_bench,
                      const MultiSourceBench& multi_bench) {
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("schema").value("tunesssp.bench.v1");
  w.key("matrix").value(matrix);
  w.key("runs").value(static_cast<std::uint64_t>(runs));
  w.key("warmup").value(static_cast<std::uint64_t>(warmup));
  w.key("slowdown").value(slowdown);
  w.key("cells").begin_array();
  for (const CellResult& r : results) {
    w.begin_object();
    w.key("name").value(r.cell.name);
    w.key("dataset").value(r.cell.dataset);
    w.key("threads").value(static_cast<std::uint64_t>(r.cell.threads));
    w.key("algorithm").value(r.cell.algorithm);
    w.key("median_seconds").value(r.median_seconds);
    w.key("min_seconds").value(r.min_seconds);
    w.key("max_seconds").value(r.max_seconds);
    w.key("spread").value(r.spread);
    w.key("iterations").value(r.iterations);
    w.key("improving_relaxations").value(r.improving_relaxations);
    w.key("edges_per_second").value(r.edges_per_second);
    w.key("energy_joules").value(r.energy_joules);
    w.key("average_watts").value(r.average_watts);
    w.key("energy_backend").value(r.energy_backend);
    w.key("counter_backend").value(r.counter_backend);
    w.key("cycles").value(r.cycles);
    w.key("instructions").value(r.instructions);
    w.end_object();
  }
  w.end_array();
  if (serve_bench.ran) {
    w.key("serve").begin_object();
    write_serve_section(w, serve_bench);
    w.end_object();
  }
  // Informational like `serve`: the per-process RSS split documents the
  // shared-mmap memory win (a supervisor's N workers cost ~1x graph RSS
  // because file-backed pages are shared; anon pages are per-process).
  if (serve_mmap_bench.ran) {
    w.key("serve_mmap").begin_object();
    write_serve_section(w, serve_mmap_bench);
    w.key("note").value(
        "graph pages are file-backed (shared page cache): N worker "
        "processes over the same cache cost ~1x graph RSS, not Nx");
    w.end_object();
  }
  if (multi_bench.ran) {
    w.key("multi_source").begin_object();
    w.key("lanes").value(static_cast<std::uint64_t>(multi_bench.lanes));
    w.key("rows").begin_array();
    for (const MultiSourceBench::Row& row : multi_bench.rows) {
      const auto speedup = [&](double s) {
        return s > 0.0 ? row.sequential_seconds / s : 0.0;
      };
      w.begin_object();
      w.key("dataset").value(row.dataset);
      w.key("sequential_seconds").value(row.sequential_seconds);
      w.key("fused_seconds").value(row.fused_seconds);
      w.key("independent_seconds").value(row.independent_seconds);
      w.key("fused_speedup").value(speedup(row.fused_seconds));
      w.key("independent_speedup").value(speedup(row.independent_seconds));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

// Cell-by-cell comparison against a committed baseline. Returns the
// number of regressions (0 = clean). Cells absent from the baseline —
// or too fast to time reliably — are reported but never fail the run.
int compare_against_baseline(const std::string& baseline_path,
                             double threshold,
                             const std::vector<CellResult>& results) {
  std::ifstream in(baseline_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench: cannot open baseline %s\n",
                 baseline_path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  obs::JsonValue baseline;
  if (!obs::parse_json(buffer.str(), baseline)) {
    std::fprintf(stderr, "bench: baseline %s is not valid JSON\n",
                 baseline_path.c_str());
    return 1;
  }
  std::map<std::string, const obs::JsonValue*> baseline_cells;
  if (const obs::JsonValue* cells = baseline.find("cells");
      cells != nullptr && cells->is_array()) {
    for (const obs::JsonValue& cell : cells->array)
      baseline_cells[cell.string_or("name", "")] = &cell;
  }

  // Cells faster than this cannot be compared meaningfully: scheduler
  // jitter alone exceeds any honest threshold.
  constexpr double kMinComparableSeconds = 0.002;
  int regressions = 0;
  for (const CellResult& r : results) {
    const auto it = baseline_cells.find(r.cell.name);
    if (it == baseline_cells.end()) {
      std::printf("bench: %-24s NEW (no baseline cell)\n",
                  r.cell.name.c_str());
      continue;
    }
    const double base_median = it->second->number_or("median_seconds", 0.0);
    const double base_spread = it->second->number_or("spread", 0.0);
    if (base_median < kMinComparableSeconds ||
        r.median_seconds < kMinComparableSeconds) {
      std::printf("bench: %-24s SKIP (sub-%.0fms cell)\n", r.cell.name.c_str(),
                  kMinComparableSeconds * 1e3);
      continue;
    }
    const double change = (r.median_seconds - base_median) / base_median;
    const double effective =
        std::max(threshold, base_spread + r.spread);
    const bool regressed = change > effective;
    if (regressed) ++regressions;
    std::printf("bench: %-24s %+6.1f%% (median %.4fs vs %.4fs, "
                "threshold %.1f%%) %s\n",
                r.cell.name.c_str(), change * 100.0, r.median_seconds,
                base_median, effective * 100.0,
                regressed ? "REGRESSION" : "ok");
    if (regressed)
      std::fprintf(stderr,
                   "bench: REGRESSION %s: %.4fs vs baseline %.4fs "
                   "(+%.1f%% > %.1f%%)\n",
                   r.cell.name.c_str(), r.median_seconds, base_median,
                   change * 100.0, effective * 100.0);
  }
  return regressions;
}

// Asserts the ≤1% disarmed-profiling guarantee on the advance sweep
// (the hot loop SSSP_PROF_PHASE instruments most densely):
//   1. one armed sweep counts the phase-scope entries a sweep performs;
//   2. unprofiled sweeps give the honest wall clock;
//   3. a tight loop measures what one disarmed scope costs;
// then entries × per-scope-cost must stay under 1% of the sweep time.
int run_overhead_check() {
  graph::RmatOptions options;
  options.scale = 13;
  options.num_edges = 1u << 16;
  options.seed = 42;
  const graph::CsrGraph g = graph::generate_rmat(options);
  const graph::VertexId source = graph::max_degree_vertex(g);
  util::ThreadPool::set_global_threads(1);

  const auto sweep = [&] {
    frontier::NearFarEngine engine(g, source);
    std::uint64_t edges = 0;
    while (!engine.frontier_empty()) {
      edges += engine.advance_and_filter().x2;
      engine.bisect(graph::kInfiniteDistance);
    }
    return edges;
  };

  // 1. Armed sweep: total scope entries (all phases).
  prof::Profiler::Options profile_options;
  profile_options.use_perf = false;
  profile_options.use_rapl = false;
  prof::Profiler& profiler = prof::Profiler::global();
  profiler.start(profile_options);
  (void)sweep();
  profiler.stop();
  std::uint64_t entries = 0;
  for (const auto& [name, phase] : profiler.report().phases)
    entries += phase.entries;

  // 2. Median unprofiled sweep time.
  std::vector<double> times;
  for (int i = 0; i < 5; ++i) {
    util::WallTimer timer;
    (void)sweep();
    times.push_back(timer.elapsed_seconds());
  }
  const double sweep_seconds = median_of(times);

  // 3. Disarmed per-scope cost.
  constexpr std::uint64_t kScopes = 20'000'000;
  util::WallTimer timer;
  for (std::uint64_t i = 0; i < kScopes; ++i) {
    SSSP_PROF_PHASE("bench.overhead");
  }
  const double per_scope = timer.elapsed_seconds() / kScopes;

  const double overhead =
      sweep_seconds > 0.0
          ? static_cast<double>(entries) * per_scope / sweep_seconds
          : 0.0;
  std::printf(
      "overhead check: %llu scopes/sweep x %.1f ns/scope = %.4f%% of "
      "%.4fs sweep (limit 1%%): %s\n",
      static_cast<unsigned long long>(entries), per_scope * 1e9,
      overhead * 100.0, sweep_seconds, overhead <= 0.01 ? "PASS" : "FAIL");
  return overhead <= 0.01 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("matrix", "quick",
               "workload matrix: quick (CI smoke) | full (trend tracking)");
  flags.define("runs", "5", "measured runs per cell (median reported)");
  flags.define("warmup", "1", "warmup runs per cell, excluded from stats");
  flags.define("out", "BENCH_sssp.json", "write the bench document here");
  flags.define("baseline", "",
               "compare against this committed bench document; exit 14 on "
               "any noise-adjusted median-time regression");
  flags.define("threshold", "0.15",
               "minimum relative slowdown treated as a regression (the "
               "effective threshold also adds both runs' spreads)");
  flags.define("slowdown", "1",
               "spin until every run takes this factor of its real time "
               "(test hook: injects a synthetic regression)");
  flags.define("serve", "false",
               "also bench the query service: a seeded hot/cold mix through "
               "an in-process server (certification on), reported as the "
               "`serve` section (informational, never gated)");
  flags.define("multi-source", "false",
               "also bench batched multi-source: K=8 pinned queries per "
               "graph class, sequential vs fused vs independent, reported "
               "as the `multi_source` section (informational, never gated)");
  flags.define("overhead-check", "false",
               "assert disarmed SSSP_PROF_PHASE costs <= 1% of the advance "
               "sweep wall clock, then exit");
  flags.define("profile-no-perf", "false",
               "skip the perf_event probe for the per-cell energy run");
  flags.define("profile-no-rapl", "false",
               "skip the RAPL probe for the per-cell energy run");
  if (flags.handle_help(
          "differential performance/energy regression runner over a pinned "
          "road + R-MAT workload matrix"))
    return 0;
  flags.check_unknown();

  try {
    if (flags.get_bool("overhead-check")) return run_overhead_check();

    const std::string matrix = flags.get_string("matrix");
    if (matrix != "quick" && matrix != "full")
      throw std::runtime_error("--matrix expects quick or full");
    const bool full = matrix == "full";
    const int runs = static_cast<int>(flags.get_int("runs"));
    const int warmup = static_cast<int>(flags.get_int("warmup"));
    if (runs < 1 || warmup < 0)
      throw std::runtime_error("--runs must be >= 1 and --warmup >= 0");
    const double slowdown = flags.get_double("slowdown");
    if (slowdown < 1.0)
      throw std::runtime_error("--slowdown must be >= 1");

    prof::Profiler::Options profile_options;
    profile_options.use_perf = !flags.get_bool("profile-no-perf");
    profile_options.use_rapl = !flags.get_bool("profile-no-rapl");
    profile_options.model_watts = tools::profile_model_watts();

    // Generate each dataset once; cells share the pinned graph.
    std::map<std::string, graph::CsrGraph> graphs;
    for (const char* dataset : {"road", "rmat"})
      graphs.emplace(dataset, make_bench_graph(dataset, full));
    for (const auto& [name, g] : graphs)
      std::printf("bench: %s graph: %llu vertices, %llu edges\n", name.c_str(),
                  static_cast<unsigned long long>(g.num_vertices()),
                  static_cast<unsigned long long>(g.num_edges()));

    std::vector<CellResult> results;
    for (const Cell& cell : make_matrix()) {
      const CellResult r = measure_cell(cell, graphs.at(cell.dataset), runs,
                                        warmup, slowdown, profile_options);
      std::printf(
          "bench: %-24s median %.4fs (spread %.1f%%), %.2fM edges/s, "
          "%.2f J (%s)\n",
          r.cell.name.c_str(), r.median_seconds, r.spread * 100.0,
          r.edges_per_second / 1e6, r.energy_joules,
          r.energy_backend.c_str());
      results.push_back(r);
    }

    ServeBench serve_bench;
    ServeBench serve_mmap_bench;
    if (flags.get_bool("serve")) {
      util::ThreadPool::set_global_threads(1);  // workers provide parallelism
      serve_bench = measure_serve(graphs.at("road"), full);
      std::printf(
          "bench: serve                    %.0f qps (p50 %.2fms, p95 %.2fms, "
          "p99 %.2fms), %llu/%llu ok, %llu cache hits\n",
          serve_bench.qps, serve_bench.latency_ms_p50,
          serve_bench.latency_ms_p95, serve_bench.latency_ms_p99,
          static_cast<unsigned long long>(serve_bench.completed),
          static_cast<unsigned long long>(serve_bench.queries),
          static_cast<unsigned long long>(serve_bench.cache_hits));
      std::printf(
          "bench: serve rss                %.1f MB resident "
          "(%.1f MB anon, %.1f MB file; graph heap %.1f MB)\n",
          serve_bench.rss.vm_rss_mb, serve_bench.rss.anon_mb,
          serve_bench.rss.file_mb, serve_bench.graph_heap_mb);
      serve_mmap_bench = measure_serve_mmap(graphs.at("road"), full);
      std::printf(
          "bench: serve (mmap graph)       %.0f qps, %.1f MB mapped "
          "shared — rss %.1f MB anon / %.1f MB file (N workers ~ 1x "
          "graph RSS)\n",
          serve_mmap_bench.qps, serve_mmap_bench.mapped_mb,
          serve_mmap_bench.rss.anon_mb, serve_mmap_bench.rss.file_mb);
    }

    MultiSourceBench multi_bench;
    if (flags.get_bool("multi-source")) {
      multi_bench = measure_multi_source(graphs, runs, warmup);
      for (const MultiSourceBench::Row& row : multi_bench.rows)
        std::printf(
            "bench: multi-source %-12s seq %.4fs, fused %.4fs (%.2fx), "
            "independent %.4fs (%.2fx)\n",
            row.dataset.c_str(), row.sequential_seconds, row.fused_seconds,
            row.fused_seconds > 0.0
                ? row.sequential_seconds / row.fused_seconds
                : 0.0,
            row.independent_seconds,
            row.independent_seconds > 0.0
                ? row.sequential_seconds / row.independent_seconds
                : 0.0);
    }

    if (const std::string out = flags.get_string("out"); !out.empty()) {
      std::ostringstream stream;
      write_bench_json(stream, matrix, runs, warmup, slowdown, results,
                       serve_bench, serve_mmap_bench, multi_bench);
      stream << '\n';
      // Atomic so a crash or full disk mid-write can never leave a
      // truncated baseline that later runs would "regress" against.
      sssp::util::atomic_write_file(out, stream.str());
      std::printf("bench: wrote %s (%zu cells)\n", out.c_str(),
                  results.size());
    }

    if (const std::string baseline = flags.get_string("baseline");
        !baseline.empty()) {
      const int regressions = compare_against_baseline(
          baseline, flags.get_double("threshold"), results);
      if (regressions > 0) {
        std::fprintf(stderr, "bench: %d regression(s) against %s\n",
                     regressions, baseline.c_str());
        return sssp::tools::kExitBenchRegression;
      }
      std::printf("bench: no regressions against %s\n", baseline.c_str());
    }
    return 0;
  } catch (const sssp::util::DiskFullError& error) {
    std::fprintf(stderr, "bench_tool: %s\n", error.what());
    return sssp::tools::kExitDiskFull;
  } catch (const sssp::res::ResourceError& error) {
    std::fprintf(stderr, "bench_tool: %s\n", error.what());
    return sssp::tools::kExitResourceBudget;
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "bench_tool: out of memory\n");
    return sssp::tools::kExitResourceBudget;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bench_tool: %s\n", error.what());
    return 1;
  }
}
