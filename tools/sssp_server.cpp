// sssp_server — overload-safe SSSP query service over a resident graph
// (docs/SERVING.md).
//
// Loads the graph once, then serves JSON queries through the admission/
// deadline/cache/certification pipeline in src/serve. Two transports:
//
//   --mode pipe   newline-delimited JSON on stdin/stdout (the default;
//                 stderr carries the banner and summary, stdout carries
//                 *only* responses)
//   --mode tcp    4-byte little-endian length-prefixed frames on a
//                 loopback socket (--port 0 picks a free port, printed
//                 on stderr and as "listening port=N" on stdout)
//
// SIGINT/SIGTERM (or stdin EOF in pipe mode) triggers a graceful drain:
// admissions stop, queued + in-flight work finishes or is shed within
// --drain-ms, the final run report is flushed, and the process exits 0.
// Startup failures (bad port, unusable socket) exit 15
// (kExitServeStartup); graph-load failures keep their structured 3-8
// codes (docs/ROBUSTNESS.md).
//
// Crash isolation (docs/SERVING.md, "Process model & crash isolation"):
//   --supervise N   run N worker *processes* behind a serve::Supervisor
//                   that owns the transport, re-dispatches queries from
//                   crashed workers, restarts with backoff, and exits
//                   16 (kExitCrashLoop) when the breaker trips
//   --worker-fd N   internal: run as a supervised worker speaking
//                   framed protocol over descriptor N
//   --mmap MODE     auto|on|off — map the v2 binary cache read-only and
//                   share one physical graph copy across workers
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/failpoint.hpp"
#include "graph/mmap_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "serve/supervisor.hpp"
#include "tools/tool_common.hpp"
#include "util/flags.hpp"
#include "util/run_control.hpp"

using namespace sssp;

namespace {

// Pipe mode: stdin lines in, stdout lines out. The response sink runs
// on worker threads too, so stdout writes are serialized here. Hosts
// the pipe flavor of the `serve.response.torn_write` drill: half the
// document plus the newline, so the stream stays line-parseable and the
// client sees exactly one unparseable response.
//
// Service is serve::Server or serve::Supervisor (same submit/drain
// surface); `extra_stop` lets the supervised path stop serving the
// moment the crash-loop breaker trips.
template <typename Service>
void run_pipe(Service& server, util::RunControl& control,
              const std::function<bool()>& extra_stop = {}) {
  std::mutex out_mu;
  const auto sink = [&out_mu](const serve::Response& response) {
    std::string doc = serve::format_response(response);
    if (SSSP_FAILPOINT("serve.response.torn_write"))
      doc.resize(doc.size() / 2);
    std::lock_guard<std::mutex> lock(out_mu);
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  };

  std::string buffer;
  char chunk[4096];
  while (!control.stop_requested()) {
    if (extra_stop && extra_stop()) break;
    pollfd pfd{};
    pfd.fd = STDIN_FILENO;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: the client is done; drain
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      if (pos > 0) server.submit({buffer.data(), pos}, sink);
      buffer.erase(0, pos + 1);
    }
    // A newline-free flood past the frame limit is fed to the firewall
    // (which rejects it) instead of growing the buffer without bound.
    if (buffer.size() > serve::kMaxFrameBytes) {
      server.submit(buffer, sink);
      buffer.clear();
    }
  }
  if (!buffer.empty()) server.submit(buffer, sink);
}

// One TCP connection's shared write-side state. Response sinks hold a
// shared_ptr so a worker finishing after the reader closed the
// connection writes nowhere instead of into a recycled fd.
struct ConnState {
  int fd = -1;
  std::mutex mu;
  bool open = true;
};

template <typename Service>
void serve_connection(const std::shared_ptr<ConnState>& state,
                      Service& server) {
  const auto sink = [state](const serve::Response& response) {
    const std::string doc = serve::format_response(response);
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->open) return;  // client already gone
    try {
      if (SSSP_FAILPOINT("serve.response.torn_write"))
        serve::write_torn_frame(state->fd, doc);
      else
        serve::write_frame(state->fd, doc);
    } catch (const serve::ServeError&) {
      // Write failure (client reset): the reader loop will see it too.
    }
  };

  try {
    std::string payload;
    while (serve::read_frame(state->fd, payload))
      server.submit(payload, sink);
  } catch (const serve::ServeError&) {
    // Torn frame or read error: drop the connection, keep serving.
  }
  std::lock_guard<std::mutex> lock(state->mu);
  state->open = false;
  ::close(state->fd);
}

template <typename Service>
void run_tcp(Service& server, util::RunControl& control, int port,
             const std::function<bool()>& extra_stop = {}) {
  if (port < 0 || port > 65535)
    throw serve::ServeError("--port must be in [0, 65535]");
  const int listen_fd = serve::listen_tcp(static_cast<std::uint16_t>(port));
  const std::uint16_t actual = serve::bound_port(listen_fd);
  std::fprintf(stderr, "sssp_server: listening on 127.0.0.1:%u\n", actual);
  // Machine-readable line for harnesses that spawned us with port 0.
  std::printf("listening port=%u\n", actual);
  std::fflush(stdout);

  std::vector<std::thread> readers;
  std::vector<std::shared_ptr<ConnState>> conns;
  while (!control.stop_requested()) {
    if (extra_stop && extra_stop()) break;
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 50);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int fd = serve::accept_conn(listen_fd);
    if (fd < 0) {
      // Transient accept failure (EMFILE/ENFILE or the injected
      // serve.accept.emfile drill): the pending connection stays in
      // the backlog, so the listen fd remains readable — back off
      // briefly instead of spinning through poll at 100% CPU while
      // waiting for in-flight connections to free descriptors.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    // Injected accept-side drop: the client sees a connection that
    // closes immediately and must reconnect.
    if (SSSP_FAILPOINT("serve.accept.drop")) {
      ::close(fd);
      continue;
    }
    auto state = std::make_shared<ConnState>();
    state->fd = fd;
    conns.push_back(state);
    readers.emplace_back(
        [state, &server] { serve_connection(state, server); });
  }
  ::close(listen_fd);

  // Drain first so in-flight responses still reach their connections,
  // then unblock any reader still parked in read_frame.
  server.drain();
  for (const auto& state : conns) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->open) ::shutdown(state->fd, SHUT_RD);
  }
  for (std::thread& reader : readers) reader.join();
}

// Supervised worker: speaks the framed protocol over --worker-fd. The
// supervisor forwards only validated "query" requests; EOF on the
// descriptor is the drain signal (the supervisor shut its write side).
// Announces readiness — and the graph shape the supervisor's parse
// firewall needs — with a proactive `__sup_ready__` info frame, so no
// handshake request can race the worker-fault drills below.
int run_worker(const graph::CsrGraph& g, serve::Server& server,
               util::RunControl& control, int worker_fd) {
  std::mutex out_mu;
  const auto sink = [&out_mu, worker_fd](const serve::Response& response) {
    const std::string doc = serve::format_response(response);
    std::lock_guard<std::mutex> lock(out_mu);
    try {
      serve::write_frame(worker_fd, doc);
    } catch (const serve::ServeError&) {
      // Supervisor gone mid-response: it re-dispatches or sheds; the
      // worker keeps draining.
    }
  };

  {
    serve::Response ready;
    ready.id = "__sup_ready__";
    ready.status = serve::Status::kOk;
    ready.has_info = true;
    ready.num_vertices = g.num_vertices();
    ready.num_edges = g.num_edges();
    ready.graph_fingerprint = server.graph_fingerprint();
    ready.queue_capacity = server.options().queue_capacity;
    ready.workers = std::max<std::size_t>(1, server.options().workers);
    ready.cache_entries = server.options().cache_entries;
    sink(ready);
  }

  std::string payload;
  while (!control.stop_requested()) {
    pollfd pfd{};
    pfd.fd = worker_fd;
    pfd.events = POLLIN;
    const int n = ::poll(&pfd, 1, 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) continue;
    bool got = false;
    try {
      got = serve::read_frame(worker_fd, payload);
    } catch (const serve::ServeError&) {
      break;  // torn frame from the supervisor: treat as shutdown
    }
    if (!got) break;  // EOF: supervisor asked us to drain

    // Worker-fault drills: a hard crash (tests the supervisor's
    // re-dispatch + restart path) and a hang (tests the routing
    // deadline + SIGKILL escalation). Sited here so only forwarded
    // queries — never the ready frame — can trigger them.
    if (SSSP_FAILPOINT("serve.worker.abort")) std::abort();
    if (SSSP_FAILPOINT("serve.worker.hang"))
      std::this_thread::sleep_for(std::chrono::hours(1));

    server.submit(payload, sink);
  }
  server.drain();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("in", "", "input graph (.bin/.gr/.mtx/.txt/.el); required");
  flags.define("mode", "pipe", "transport: pipe (stdin/stdout) | tcp");
  flags.define("port", "0", "tcp only: listen port (0 = kernel-assigned)");
  flags.define("queue-capacity", "64",
               "admission queue capacity; beyond it the shed policy "
               "applies");
  flags.define("shed-policy", "reject-new",
               "overflow policy: reject-new | drop-oldest");
  flags.define("workers", "2",
               "queries executing concurrently (each may still use the "
               "global thread pool internally)");
  flags.define("cache-entries", "128",
               "LRU result-cache capacity in entries (0 = no cache)");
  flags.define("default-deadline-ms", "0",
               "deadline for requests that carry none (0 = unlimited)");
  flags.define("drain-ms", "5000",
               "graceful-drain budget: queued/in-flight work not done "
               "this many ms after SIGINT/SIGTERM is shed");
  flags.define("verify", "true",
               "certify every result before responding (requests may "
               "override per-query)");
  flags.define("default-algorithm", "near-far",
               "algorithm for requests that do not name one: near-far | "
               "dijkstra | delta-stepping | self-tuning");
  flags.define("set-point", "20000",
               "default self-tuning parallelism target");
  flags.define("batch-max", "8",
               "coalesce up to this many compatible queued near-far "
               "queries into one batched run (1 disables)");
  flags.define("batch-strategy", "independent",
               "batched run strategy: fused | independent");
  flags.define("sample-reports", "0",
               "publish the full per-iteration trace of the first N "
               "freshly solved queries in the run report");
  flags.define("report-out", "",
               "write the final serve run report JSON here on drain");
  flags.define("supervise", "0",
               "run this many crash-isolated worker processes behind a "
               "supervisor (0 = single-process serving)");
  flags.define("worker-fd", "-1",
               "internal: run as a supervised worker over this fd");
  flags.define("mmap", "auto",
               "graph residency: auto (map v2 .bin caches, heap "
               "otherwise) | on (require the mmap cache) | off");
  flags.define("redispatch-budget", "3",
               "supervise only: crash/hang re-dispatches per query "
               "before the standard overloaded shed");
  flags.define("query-timeout-ms", "30000",
               "supervise only: routing deadline for queries without "
               "one; a worker holding a query past it is presumed hung "
               "and SIGKILLed (0 = off)");
  flags.define("restart-backoff-ms", "100",
               "supervise only: base worker restart backoff (doubles "
               "per consecutive crash, capped at 5000)");
  flags.define("crash-loop-k", "5",
               "supervise only: breaker trips after this many worker "
               "crashes inside --crash-loop-window-s, exiting 16");
  flags.define("crash-loop-window-s", "30",
               "supervise only: crash-loop breaker window in seconds");
  flags.define("cache-max-mb", "0",
               "byte bound for the result cache on top of "
               "--cache-entries (0 = unbounded)");
  flags.define("scrub-interval-ms", "0",
               "mmap mode: background re-checksum of the mapped cache "
               "every this many ms; a mismatch quarantines the file and "
               "drains the server (0 = off)");
  tools::define_observability_flags(flags);
  tools::define_fault_flags(flags);
  tools::define_threads_flag(flags);
  tools::define_resource_flags(flags);
  if (flags.handle_help(
          "serve SSSP queries over a resident graph (docs/SERVING.md)"))
    return 0;
  flags.check_unknown();

  util::RunControl control;
  try {
    tools::enable_observability(flags);
    tools::enable_faults(flags);
    tools::apply_threads_flag(flags);
    tools::apply_resource_flags(flags);
    // First signal: graceful drain. Second: hard exit 128+signo.
    util::install_signal_stop(control);
    // A client that disappears mid-response must cost an EPIPE errno,
    // not the process.
    ::signal(SIGPIPE, SIG_IGN);

    const std::string in = flags.get_string("in");
    if (in.empty()) {
      std::fprintf(stderr, "--in is required; see --help\n");
      return 2;
    }
    const std::string mode = flags.get_string("mode");
    if (mode != "pipe" && mode != "tcp") {
      std::fprintf(stderr, "--mode expects pipe or tcp\n");
      return 2;
    }

    serve::ServerOptions options;
    options.queue_capacity =
        static_cast<std::size_t>(flags.get_int("queue-capacity"));
    options.shed_policy =
        serve::parse_shed_policy(flags.get_string("shed-policy"));
    options.workers = static_cast<std::size_t>(flags.get_int("workers"));
    options.cache_entries =
        static_cast<std::size_t>(flags.get_int("cache-entries"));
    options.default_deadline_ms =
        static_cast<double>(flags.get_int("default-deadline-ms"));
    options.drain_ms = static_cast<double>(flags.get_int("drain-ms"));
    options.verify_default = flags.get_bool("verify");
    options.default_algorithm = flags.get_string("default-algorithm");
    options.set_point = flags.get_double("set-point");
    options.batch_max =
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     flags.get_int("batch-max")));
    options.batch_strategy =
        algo::parse_batch_strategy(flags.get_string("batch-strategy"));
    options.sample_reports =
        static_cast<std::size_t>(flags.get_int("sample-reports"));
    options.cache_max_bytes =
        static_cast<std::size_t>(flags.get_int("cache-max-mb")) * 1024 *
        1024;
    if (options.default_algorithm != "near-far" &&
        options.default_algorithm != "dijkstra" &&
        options.default_algorithm != "delta-stepping" &&
        options.default_algorithm != "self-tuning") {
      std::fprintf(stderr, "unknown --default-algorithm '%s'\n",
                   options.default_algorithm.c_str());
      return 2;
    }

    const int worker_fd = static_cast<int>(flags.get_int("worker-fd"));
    const int supervise = static_cast<int>(flags.get_int("supervise"));
    const std::string mmap_mode = flags.get_string("mmap");
    if (supervise < 0) {
      std::fprintf(stderr, "--supervise must be >= 0\n");
      return 2;
    }

    if (supervise > 0 && worker_fd < 0) {
      // Supervised serving: this process owns the transport and routes
      // to a fleet of worker processes (each re-execing this binary
      // with --worker-fd). The graph stays un-loaded here — workers
      // map the shared cache themselves.
      serve::SupervisorOptions sup;
      sup.workers = static_cast<std::size_t>(supervise);
      sup.queue_capacity = options.queue_capacity;
      sup.redispatch_budget =
          static_cast<int>(flags.get_int("redispatch-budget"));
      sup.query_timeout_ms =
          static_cast<double>(flags.get_int("query-timeout-ms"));
      sup.restart_backoff_ms =
          static_cast<double>(flags.get_int("restart-backoff-ms"));
      sup.crash_loop_k = static_cast<int>(flags.get_int("crash-loop-k"));
      sup.crash_loop_window_s =
          static_cast<double>(flags.get_int("crash-loop-window-s"));
      sup.drain_ms = options.drain_ms;
      sup.worker_command = {
          std::string(argv[0]),
          "--in", in,
          "--mmap", mmap_mode,
          "--queue-capacity", flags.get_string("queue-capacity"),
          "--shed-policy", flags.get_string("shed-policy"),
          "--workers", flags.get_string("workers"),
          "--cache-entries", flags.get_string("cache-entries"),
          "--default-deadline-ms", flags.get_string("default-deadline-ms"),
          "--drain-ms", flags.get_string("drain-ms"),
          "--verify", options.verify_default ? "true" : "false",
          "--default-algorithm", options.default_algorithm,
          "--set-point", flags.get_string("set-point"),
          "--batch-max", flags.get_string("batch-max"),
          "--batch-strategy", flags.get_string("batch-strategy"),
          "--threads", flags.get_string("threads"),
          "--cache-max-mb", flags.get_string("cache-max-mb"),
          "--scrub-interval-ms", flags.get_string("scrub-interval-ms"),
          "--mem-budget-mb", flags.get_string("mem-budget-mb"),
          "--scratch-budget-mb", flags.get_string("scratch-budget-mb"),
          "--fd-headroom", flags.get_string("fd-headroom"),
      };
      if (const auto spec = flags.get_string("failpoint"); !spec.empty()) {
        sup.worker_command.push_back("--failpoint");
        sup.worker_command.push_back(spec);
      }

      serve::Supervisor supervisor(sup);
      supervisor.start();
      std::fprintf(stderr,
                   "sssp_server: supervising %d workers over %s "
                   "(breaker %d crashes / %s s, redispatch budget %d)\n",
                   supervise, in.c_str(), sup.crash_loop_k,
                   flags.get_string("crash-loop-window-s").c_str(),
                   sup.redispatch_budget);

      const auto tripped = [&supervisor] { return supervisor.tripped(); };
      if (mode == "tcp")
        run_tcp(supervisor, control,
                static_cast<int>(flags.get_int("port")), tripped);
      else
        run_pipe(supervisor, control, tripped);

      // Reap every child and release the fleet's descriptors before
      // exit: no zombie or inherited fd may survive drain.
      supervisor.drain();
      const serve::SupervisorStats sstats = supervisor.stats();
      std::fprintf(stderr,
                   "sssp_server: supervisor drained — %llu received, "
                   "%llu ok, %llu redispatched, %llu restarts, %llu "
                   "crashes, breaker %s\n",
                   static_cast<unsigned long long>(sstats.received),
                   static_cast<unsigned long long>(sstats.completed),
                   static_cast<unsigned long long>(sstats.redispatched),
                   static_cast<unsigned long long>(sstats.worker_restarts),
                   static_cast<unsigned long long>(sstats.worker_crashes),
                   sstats.tripped ? "TRIPPED" : "ok");
      if (const auto path = flags.get_string("report-out"); !path.empty()) {
        std::ostringstream out;
        supervisor.write_report(out);
        out << "\n";
        util::atomic_write_file(path, out.str());
        std::fprintf(stderr, "sssp_server: wrote report to %s\n",
                     path.c_str());
      }
      tools::print_fault_summary();
      tools::write_observability_outputs(flags);
      return supervisor.tripped() ? tools::kExitCrashLoop : 0;
    }

    const tools::ResidentGraph resident =
        tools::load_resident_graph(in, mmap_mode);
    const graph::CsrGraph& g = resident.graph();
    serve::Server server(g, options);
    server.start();

    // Background media scrubber (docs/ROBUSTNESS.md, "Resource budgets
    // & exhaustion"): periodically re-checksums the mapped cache; on a
    // mismatch (bit rot, truncation, SIGBUS) the file is quarantined
    // and the server drains instead of serving from corrupt pages.
    std::unique_ptr<graph::CacheScrubber> scrubber;
    const auto scrub_ms =
        static_cast<std::uint64_t>(flags.get_int("scrub-interval-ms"));
    if (scrub_ms > 0 && resident.is_mapped) {
      scrubber = std::make_unique<graph::CacheScrubber>(
          resident.mapped, scrub_ms,
          [&control](const std::string& reason) {
            std::fprintf(stderr,
                         "sssp_server: mapped cache FAILED scrub (%s); "
                         "quarantined, draining\n",
                         reason.c_str());
            control.request_stop(util::StopReason::kInterrupt);
          });
      std::fprintf(stderr, "sssp_server: scrubbing mapped cache every "
                   "%llu ms\n",
                   static_cast<unsigned long long>(scrub_ms));
    }
    std::fprintf(stderr,
                 "sssp_server: serving %llu vertices / %llu edges "
                 "(queue %zu %s, %zu workers, cache %zu, verify %s, "
                 "graph %s)\n",
                 static_cast<unsigned long long>(g.num_vertices()),
                 static_cast<unsigned long long>(g.num_edges()),
                 options.queue_capacity, to_string(options.shed_policy),
                 options.workers, options.cache_entries,
                 options.verify_default ? "on" : "off",
                 resident.is_mapped ? "mmap-shared" : "heap");

    if (worker_fd >= 0) {
      // Supervised worker: framed protocol over the inherited fd.
      const int rc = run_worker(g, server, control, worker_fd);
      tools::print_fault_summary();
      return rc;
    }

    if (mode == "tcp")
      run_tcp(server, control, static_cast<int>(flags.get_int("port")));
    else
      run_pipe(server, control);

    server.drain();
    const serve::ServerStats stats = server.stats();
    std::fprintf(stderr,
                 "sssp_server: drained %s in %.3f s — %llu received, "
                 "%llu ok, %llu shed (%llu full / %llu expired / %llu "
                 "draining), %llu errors\n",
                 stats.drain_clean ? "clean" : "forced",
                 stats.drain_seconds,
                 static_cast<unsigned long long>(stats.received),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.shed_queue_full +
                                                 stats.shed_expired_queue +
                                                 stats.shed_draining),
                 static_cast<unsigned long long>(stats.shed_queue_full),
                 static_cast<unsigned long long>(stats.shed_expired_queue),
                 static_cast<unsigned long long>(stats.shed_draining),
                 static_cast<unsigned long long>(stats.handler_errors));
    if (scrubber) scrubber->stop();
    if (const auto path = flags.get_string("report-out"); !path.empty()) {
      std::ostringstream out;
      server.write_report(out);
      out << "\n";
      util::atomic_write_file(path, out.str());
      std::fprintf(stderr, "sssp_server: wrote report to %s\n",
                   path.c_str());
    }
    tools::print_fault_summary();
    tools::write_observability_outputs(flags);
    return 0;
  } catch (const graph::GraphIoError& e) {
    // Startup is the only graph I/O the server performs, so any loader
    // failure means the service never became ready. The structured
    // diagnosis (format + error class) stays in the message; the exit
    // code is the single startup-failure code so orchestrators can
    // tell "failed to start" from "started, then failed".
    std::fprintf(stderr, "sssp_server: startup failed: %s (loader code %d)\n",
                 e.what(), tools::exit_code_for(e));
    return tools::kExitServeStartup;
  } catch (const serve::ServeError& e) {
    std::fprintf(stderr, "sssp_server: startup failed: %s\n", e.what());
    return tools::kExitServeStartup;
  } catch (const util::DiskFullError& e) {
    std::fprintf(stderr, "sssp_server: %s\n", e.what());
    return tools::kExitDiskFull;
  } catch (const res::ResourceError& e) {
    std::fprintf(stderr, "sssp_server: %s\n", e.what());
    return tools::kExitResourceBudget;
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "sssp_server: out of memory\n");
    return tools::kExitResourceBudget;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "sssp_server: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sssp_server: %s\n", e.what());
    return 1;
  }
}
