// soak_tool — in-process chaos-soak harness (docs/ROBUSTNESS.md,
// "Verification & post-mortem"): randomized failpoint schedules ×
// injected kill/resume cycles × thread counts, with the rule that every
// run that survives to completion must pass result certification and
// match the Dijkstra reference exactly.
//
//   soak_tool --in g.bin --rounds 12 --seed 7 --threads-list 1,4
//
// Each round draws a random scenario from a seeded RNG (so a failing
// round is reproducible from its --seed alone): a random source, a
// thread count from --threads-list, an audit cadence, a set of armed
// chaos failpoints (NaN injections into the controller and SGD
// models), and a crash schedule for the checkpoint layer. When an
// injected crash "kills" the run, the harness does what an operator
// would: reload the last checkpoint (a corrupt one is rejected and the
// round restarts from scratch — that is the contract under test) and
// resume. The final cycle of every round runs with crash failpoints
// disarmed so each round terminates.
//
// Exit codes: 0 all rounds certified, 13 any surviving run failed
// certification or mismatched the reference, 1 harness error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/checkpointed_run.hpp"
#include "core/self_tuning.hpp"
#include "sssp/batch_engine.hpp"
#include "sssp/dijkstra.hpp"
#include "tools/tool_common.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"
#include "verify/certifier.hpp"
#include "verify/flight_recorder.hpp"

using namespace sssp;

namespace {

// Chaos menu: every failpoint here is safe to leave armed for a whole
// run — the run must *survive* it (self-healing control plane) and
// still produce a certified result. Crash failpoints are scheduled
// separately because they end the process-equivalent.
// far.boundary.corrupt is deliberately NOT here: it corrupts Eq. 7
// state the engine *depends on* (a consumed corrupted partition can
// terminate the run early), so demanding certification under it would
// be a wrong contract — the auditor/mutation drills cover it with a
// seeded schedule whose A2 trip is deterministic.
constexpr const char* kChaosMenu[] = {
    "controller.observe.nan",
    "controller.x4.nan",
    "controller.far.nan",
    "sgd.observe.nan",
};

constexpr const char* kCrashMenu[] = {
    "ckpt.crash_before_write",
    "ckpt.crash_after_tmp",
    "ckpt.torn_write",
    "ckpt.bit_flip",  // corrupts the written file instead of throwing:
                      // the *next* resume must reject it at load
};

std::vector<std::size_t> parse_threads_list(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    if (!item.empty()) out.push_back(std::stoul(item));
    pos = comma + 1;
  }
  if (out.empty()) throw std::runtime_error("--threads-list is empty");
  return out;
}

struct SoakStats {
  std::uint64_t rounds = 0;
  std::uint64_t certified = 0;
  std::uint64_t failed = 0;
  std::uint64_t crashes = 0;
  std::uint64_t resumes = 0;
  std::uint64_t rejected_checkpoints = 0;
  std::uint64_t scratch_restarts = 0;
  std::uint64_t audits = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t batch_rounds = 0;
  std::uint64_t batch_lanes = 0;
  std::uint64_t batch_drills = 0;
  std::uint64_t batch_drill_catches = 0;
  std::uint64_t exhaustion_rounds = 0;
  std::uint64_t exhaustion_clean_failures = 0;  // structured errors
  std::uint64_t exhaustion_disk_full = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("in", "", "input graph (.bin/.gr/.mtx/.txt/.el)");
  flags.define("rounds", "8", "number of randomized soak rounds");
  flags.define("seed", "1",
               "master seed; a failing round reproduces from this alone");
  flags.define("threads-list", "1,4",
               "comma-separated thread counts to rotate through");
  flags.define("set-point", "1000", "controller parallelism set-point");
  flags.define("max-cycles", "6",
               "crash/resume cycles per round before the crash schedule "
               "is disarmed (keeps every round finite)");
  flags.define("ckpt-dir", ".", "directory for the soak checkpoints");
  flags.define("batch-rounds", "0",
               "additional batched multi-source rounds: random lane count "
               "and strategy per round, every lane certified; ~1/4 of "
               "rounds arm batch.lane.flip_dist and the corrupted lane "
               "must FAIL certification");
  flags.define("exhaustion-rounds", "0",
               "additional resource-exhaustion rounds: random res.*/io.* "
               "failpoints armed over checkpointed runs; a run must "
               "either complete and certify (possibly degraded) or fail "
               "with a structured resource/disk error — never an "
               "uncaught bad_alloc, never a partial checkpoint file");
  flags.define("verify-strict", "false",
               "also cross-check each survivor against Dijkstra inside "
               "the certifier");
  flags.define("flight-out", "",
               "write the flight-recorder dump of the last round here");
  if (flags.handle_help(
          "chaos-soak: randomized faults x kill/resume x threads; every "
          "survivor must certify"))
    return 0;
  flags.check_unknown();

  try {
    const std::string in = flags.get_string("in");
    if (in.empty()) {
      std::fprintf(stderr, "--in is required; see --help\n");
      return 2;
    }
    const auto rounds = static_cast<std::uint64_t>(flags.get_int("rounds"));
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    const auto max_cycles =
        std::max<std::int64_t>(1, flags.get_int("max-cycles"));
    const std::vector<std::size_t> threads_list =
        parse_threads_list(flags.get_string("threads-list"));
    const double set_point = flags.get_double("set-point");
    const std::string ckpt_path =
        flags.get_string("ckpt-dir") + "/soak.ckpt";
    if (!flags.get_string("flight-out").empty())
      verify::set_flight_enabled(true);

    const graph::CsrGraph g = tools::load_any_graph(in);
    const auto n = static_cast<std::uint64_t>(g.num_vertices());
    if (n == 0) {
      std::fprintf(stderr, "graph is empty\n");
      return 2;
    }
    std::printf("soak: %llu rounds on %s (%zu vertices, %zu edges), seed "
                "%llu\n",
                static_cast<unsigned long long>(rounds), in.c_str(),
                g.num_vertices(), g.num_edges(),
                static_cast<unsigned long long>(seed));

    SoakStats stats;
    auto& registry = fault::FailpointRegistry::global();
    for (std::uint64_t round = 0; round < rounds; ++round) {
      // One RNG per round, derived only from (seed, round): rerunning
      // with --rounds 1 after bumping seed by the failing round's index
      // replays exactly that scenario.
      std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL + round + 1);
      // Prefer a source with outgoing edges: an isolated source settles
      // in one iteration and exercises nothing.
      auto source = static_cast<graph::VertexId>(rng() % n);
      for (int tries = 0; tries < 64 && g.out_degree(source) == 0; ++tries)
        source = static_cast<graph::VertexId>(rng() % n);
      const std::size_t threads = threads_list[rng() % threads_list.size()];
      util::ThreadPool::set_global_threads(threads);

      core::SelfTuningOptions options;
      options.set_point = set_point;
      const std::uint64_t audit_choices[] = {0, 1, 3};
      options.audit_every = audit_choices[rng() % 3];
      options.audit_abort = false;  // quarantine-and-continue mode

      // Chaos schedule: each menu entry armed with probability 1/2 at a
      // low per-hit fire rate, seeded from the round RNG.
      std::string chaos;
      for (const char* name : kChaosMenu) {
        if (rng() % 2 != 0) continue;
        if (!chaos.empty()) chaos += ';';
        chaos += std::string(name) + "=0.05," + std::to_string(rng() % 1000);
      }

      ckpt::CheckpointPolicy policy;
      policy.path = ckpt_path;
      policy.every_iterations = 1 + rng() % 4;
      std::remove(ckpt_path.c_str());
      std::remove((ckpt_path + ".tmp").c_str());

      std::optional<ckpt::RunState> resume_state;
      std::optional<ckpt::CheckpointedResult> finished;
      std::uint64_t round_crashes = 0;
      for (std::int64_t cycle = 0; cycle < max_cycles; ++cycle) {
        registry.disarm_all();
        if (!chaos.empty()) registry.arm_list(chaos);
        // Crash schedule: most cycles arm one crash failpoint on an
        // every-Nth cadence (the first writes succeed, then the process
        // "dies"); the last cycle always runs crash-free.
        if (cycle + 1 < max_cycles && rng() % 4 != 0) {
          const char* crash = kCrashMenu[rng() % 4];
          registry.arm(std::string(crash) + "=" +
                       std::to_string(2 + rng() % 3));
        }
        try {
          finished = ckpt::run_self_tuning_checkpointed(
              g, source, options, policy, nullptr,
              resume_state ? &*resume_state : nullptr);
          break;
        } catch (const ckpt::InjectedCrash&) {
          ++round_crashes;
          ++stats.crashes;
          registry.disarm_all();
          try {
            resume_state = ckpt::load_checkpoint_file(ckpt_path);
            ckpt::validate_against(*resume_state, g);
            ++stats.resumes;
          } catch (const graph::GraphIoError&) {
            // The checkpoint the crash left behind is damaged (torn /
            // bit-flipped) or missing: the loader must reject it and
            // the operator restarts from scratch. That rejection IS
            // the robustness property under test.
            resume_state.reset();
            ++stats.rejected_checkpoints;
            ++stats.scratch_restarts;
            std::remove(ckpt_path.c_str());
          }
        }
      }
      registry.disarm_all();
      ++stats.rounds;
      if (!finished) {
        std::fprintf(stderr,
                     "round %llu: did not complete within %lld cycles\n",
                     static_cast<unsigned long long>(round),
                     static_cast<long long>(max_cycles));
        ++stats.failed;
        continue;
      }

      // Survivor rule: certification plus an exact reference diff.
      verify::CertifyOptions copts;
      copts.strict = flags.get_bool("verify-strict");
      const verify::Certificate cert = verify::certify(g, finished->result,
                                                       copts);
      const std::size_t mismatches = algo::count_distance_mismatches(
          finished->result.distances,
          algo::dijkstra_distances(g, finished->result.source));
      const bool ok = cert.certified && mismatches == 0;
      stats.audits += finished->result.audits_run;
      stats.audit_violations += finished->result.audit_violations;
      ok ? ++stats.certified : ++stats.failed;
      std::printf(
          "round %llu: src=%llu threads=%zu audit-every=%llu chaos=[%s] "
          "crashes=%llu resumed=%llu certification=%s\n",
          static_cast<unsigned long long>(round),
          static_cast<unsigned long long>(finished->result.source), threads,
          static_cast<unsigned long long>(options.audit_every),
          chaos.c_str(), static_cast<unsigned long long>(round_crashes),
          static_cast<unsigned long long>(finished->resumed ? 1 : 0),
          ok ? "PASS" : "FAILED");
      if (!cert.certified)
        for (const verify::Violation& v : cert.samples)
          std::fprintf(stderr, "  violation: %s at v=%llu: %s\n",
                       verify::to_string(v.kind),
                       static_cast<unsigned long long>(v.vertex),
                       v.detail.c_str());
      if (mismatches != 0)
        std::fprintf(stderr, "  %zu distance mismatches vs Dijkstra\n",
                     mismatches);
    }
    std::remove(ckpt_path.c_str());
    std::remove((ckpt_path + ".tmp").c_str());

    // Batched leg (docs/SERVING.md, "Query coalescing"): survivors of a
    // batched multi-source run certify per lane, exactly like single
    // queries. A quarter of the rounds arm the batch.lane.flip_dist
    // drill; a drill round only passes when the corrupted lane is
    // CAUGHT (fails certification) while every other lane certifies.
    const auto batch_rounds =
        static_cast<std::uint64_t>(flags.get_int("batch-rounds"));
    for (std::uint64_t round = 0; round < batch_rounds; ++round) {
      std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL + 0xBA7C4ULL +
                          round + 1);
      const std::size_t lanes = 2 + rng() % 7;  // K in [2, 8]
      std::vector<graph::VertexId> sources;
      while (sources.size() < lanes) {
        auto s = static_cast<graph::VertexId>(rng() % n);
        for (int tries = 0; tries < 64 && g.out_degree(s) == 0; ++tries)
          s = static_cast<graph::VertexId>(rng() % n);
        sources.push_back(s);
      }
      const std::size_t threads = threads_list[rng() % threads_list.size()];
      util::ThreadPool::set_global_threads(threads);
      const algo::BatchStrategy strategy =
          rng() % 2 == 0 ? algo::BatchStrategy::kFused
                         : algo::BatchStrategy::kIndependent;
      const bool drill = rng() % 4 == 0;
      registry.disarm_all();
      if (drill) registry.arm("batch.lane.flip_dist");

      algo::BatchOptions boptions;
      boptions.strategy = strategy;
      const algo::BatchResult batch = algo::run_batch(g, sources, boptions);
      registry.disarm_all();

      verify::CertifyOptions copts;
      copts.strict = flags.get_bool("verify-strict");
      bool ok = true;
      std::size_t caught = 0;
      for (std::size_t l = 0; l < batch.lanes.size(); ++l) {
        const verify::Certificate cert =
            verify::certify(g, batch.lanes[l], copts);
        const bool lane_ok =
            cert.certified &&
            algo::count_distance_mismatches(
                batch.lanes[l].distances,
                algo::dijkstra_distances(g, sources[l])) == 0;
        if (drill && l == 0) {
          // The flip_dist drill corrupts lane 0 after parents are
          // derived; a certifier that lets it through is the failure.
          lane_ok ? ok = false : ++caught;
        } else if (!lane_ok) {
          ok = false;
        }
      }
      ++stats.rounds;
      ++stats.batch_rounds;
      stats.batch_lanes += batch.lanes.size();
      if (drill) {
        ++stats.batch_drills;
        stats.batch_drill_catches += caught;
      }
      ok ? ++stats.certified : ++stats.failed;
      std::printf(
          "batch round %llu: lanes=%zu strategy=%s threads=%zu drill=%s "
          "certification=%s\n",
          static_cast<unsigned long long>(round), lanes,
          algo::to_string(strategy), threads,
          drill ? (caught != 0 ? "caught" : "MISSED") : "off",
          ok ? "PASS" : "FAILED");
    }

    // Exhaustion leg (docs/ROBUSTNESS.md, "Resource budgets &
    // exhaustion"): every round arms a random subset of the resource
    // and disk failpoints over a checkpointed run. The contract under
    // test: the run either completes (degraded paths included) and its
    // result certifies, or it fails with a *structured* error
    // (res::ResourceError / util::DiskFullError) — an uncaught
    // std::bad_alloc or a leftover partial checkpoint file fails the
    // round.
    const auto exhaustion_rounds =
        static_cast<std::uint64_t>(flags.get_int("exhaustion-rounds"));
    if (exhaustion_rounds > 0) res::install_io_failpoints();
    for (std::uint64_t round = 0; round < exhaustion_rounds; ++round) {
      std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL + 0xE0A57ULL +
                          round + 1);
      auto source = static_cast<graph::VertexId>(rng() % n);
      for (int tries = 0; tries < 64 && g.out_degree(source) == 0; ++tries)
        source = static_cast<graph::VertexId>(rng() % n);
      const std::size_t threads = threads_list[rng() % threads_list.size()];
      util::ThreadPool::set_global_threads(threads);

      // Degrade drills fire probabilistically (the run should survive
      // them serial/split); the disk drills fire every Nth write (the
      // run should fail *cleanly*, or complete if no write fires).
      std::string armed;
      const auto add = [&armed](const std::string& spec) {
        if (!armed.empty()) armed += ';';
        armed += spec;
      };
      if (rng() % 2 == 0)
        add("res.engine.alloc=0.2," + std::to_string(rng() % 1000));
      const bool disk_drill = rng() % 2 == 0;
      if (disk_drill)
        add(std::string(rng() % 2 == 0 ? "io.write.enospc" : "io.write.short") +
            "=" + std::to_string(2 + rng() % 3));
      if (armed.empty())
        add("res.engine.alloc=0.2," + std::to_string(rng() % 1000));

      core::SelfTuningOptions options;
      options.set_point = set_point;
      ckpt::CheckpointPolicy policy;
      policy.path = ckpt_path;
      policy.every_iterations = 1 + rng() % 3;
      std::remove(ckpt_path.c_str());
      std::remove((ckpt_path + ".tmp").c_str());

      registry.disarm_all();
      registry.arm_list(armed);
      std::optional<ckpt::CheckpointedResult> finished;
      bool clean_failure = false;
      bool bad = false;
      std::string outcome;
      try {
        finished = ckpt::run_self_tuning_checkpointed(g, source, options,
                                                      policy, nullptr,
                                                      nullptr);
        outcome = "completed";
      } catch (const util::DiskFullError& e) {
        clean_failure = true;
        ++stats.exhaustion_disk_full;
        outcome = std::string("disk-full (") + e.what() + ")";
      } catch (const res::ResourceError& e) {
        clean_failure = true;
        outcome = std::string("resource (") + e.what() + ")";
      } catch (const std::bad_alloc&) {
        bad = true;
        outcome = "UNCAUGHT bad_alloc";
      }
      registry.disarm_all();

      // Partial-file rule: whatever happened, the checkpoint path holds
      // either a complete previous checkpoint or nothing — the tmp file
      // must never survive an ENOSPC/short-write failure.
      if (std::FILE* tmp = std::fopen((ckpt_path + ".tmp").c_str(), "rb")) {
        std::fclose(tmp);
        bad = true;
        outcome += " + LEFTOVER TMP FILE";
      }

      bool ok = !bad;
      if (ok && finished) {
        verify::CertifyOptions copts;
        copts.strict = flags.get_bool("verify-strict");
        const verify::Certificate cert =
            verify::certify(g, finished->result, copts);
        ok = cert.certified &&
             algo::count_distance_mismatches(
                 finished->result.distances,
                 algo::dijkstra_distances(g, source)) == 0;
        if (!ok) outcome += " but FAILED certification";
      }
      ++stats.rounds;
      ++stats.exhaustion_rounds;
      if (clean_failure) ++stats.exhaustion_clean_failures;
      ok ? ++stats.certified : ++stats.failed;
      std::printf(
          "exhaustion round %llu: src=%llu threads=%zu armed=[%s] -> %s "
          "(%s)\n",
          static_cast<unsigned long long>(round),
          static_cast<unsigned long long>(source), threads, armed.c_str(),
          outcome.c_str(), ok ? "PASS" : "FAILED");
    }
    if (exhaustion_rounds > 0) {
      std::remove(ckpt_path.c_str());
      std::remove((ckpt_path + ".tmp").c_str());
      std::printf(
          "exhaustion summary: %llu rounds, %llu clean structured "
          "failures (%llu disk-full), %llu resource rejections total\n",
          static_cast<unsigned long long>(stats.exhaustion_rounds),
          static_cast<unsigned long long>(stats.exhaustion_clean_failures),
          static_cast<unsigned long long>(stats.exhaustion_disk_full),
          static_cast<unsigned long long>(
              res::ResourceBudget::global().snapshot().rejections));
    }

    if (const auto fpath = flags.get_string("flight-out"); !fpath.empty()) {
      if (verify::FlightRecorder::global().save(
              fpath, stats.failed == 0 ? "soak-complete" : "soak-failed"))
        std::printf("wrote flight recorder dump to %s\n", fpath.c_str());
    }
    std::printf(
        "soak summary: %llu rounds, %llu certified, %llu failed, %llu "
        "injected crashes, %llu resumes, %llu rejected checkpoints, %llu "
        "scratch restarts, %llu audits (%llu violations)\n",
        static_cast<unsigned long long>(stats.rounds),
        static_cast<unsigned long long>(stats.certified),
        static_cast<unsigned long long>(stats.failed),
        static_cast<unsigned long long>(stats.crashes),
        static_cast<unsigned long long>(stats.resumes),
        static_cast<unsigned long long>(stats.rejected_checkpoints),
        static_cast<unsigned long long>(stats.scratch_restarts),
        static_cast<unsigned long long>(stats.audits),
        static_cast<unsigned long long>(stats.audit_violations));
    if (stats.batch_rounds != 0)
      std::printf(
          "batched summary: %llu rounds, %llu lanes, %llu drills (%llu "
          "caught)\n",
          static_cast<unsigned long long>(stats.batch_rounds),
          static_cast<unsigned long long>(stats.batch_lanes),
          static_cast<unsigned long long>(stats.batch_drills),
          static_cast<unsigned long long>(stats.batch_drill_catches));
    if (stats.failed != 0) return tools::kExitCertificationFailed;
  } catch (const graph::GraphIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::exit_code_for(e);
  } catch (const util::DiskFullError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitDiskFull;
  } catch (const res::ResourceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return tools::kExitResourceBudget;
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "error: out of memory\n");
    return tools::kExitResourceBudget;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
