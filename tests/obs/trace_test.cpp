#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"

namespace sssp::obs {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string to_json(const Tracer& tracer) {
  std::ostringstream out;
  tracer.write_json(out);
  return out.str();
}

// Restores the global gate on scope exit so tests cannot leak an
// enabled tracer into later suites.
class TraceGateGuard {
 public:
  TraceGateGuard() : saved_(trace_enabled()) {}
  ~TraceGateGuard() { set_trace_enabled(saved_); }

 private:
  bool saved_;
};

TEST(Tracer, EmptyTraceIsValidJson) {
  Tracer tracer;
  const std::string doc = to_json(tracer);
  EXPECT_EQ(doc,
            R"({"traceEvents":[],"displayTimeUnit":"ms","droppedEvents":0})");
  EXPECT_TRUE(json_valid(doc));
}

TEST(Tracer, CompleteEventCarriesDurationAndThread) {
  Tracer tracer;
  tracer.complete("advance", 10.0, 5.0);
  const std::string doc = to_json(tracer);
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_TRUE(contains(doc, R"("name":"advance")"));
  EXPECT_TRUE(contains(doc, R"("ph":"X")"));
  EXPECT_TRUE(contains(doc, R"("ts":10)"));
  EXPECT_TRUE(contains(doc, R"("dur":5)"));
  EXPECT_TRUE(contains(doc, R"("pid":1)"));
  EXPECT_TRUE(contains(doc, R"("cat":"sssp")"));
}

TEST(Tracer, CounterEventPinsTidZeroAndCarriesValue) {
  Tracer tracer;
  tracer.counter("X2", 3.0, 1234.0);
  const std::string doc = to_json(tracer);
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_TRUE(contains(doc, R"("ph":"C")"));
  EXPECT_TRUE(contains(doc, R"("tid":0)"));
  EXPECT_TRUE(contains(doc, R"("args":{"value":1234})"));
}

TEST(Tracer, InstantEventIsThreadScoped) {
  Tracer tracer;
  tracer.instant("forced_progress", 7.0);
  const std::string doc = to_json(tracer);
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_TRUE(contains(doc, R"("ph":"i")"));
  EXPECT_TRUE(contains(doc, R"("s":"t")"));
}

TEST(Tracer, ClearDropsEvents) {
  Tracer tracer;
  tracer.complete("advance", 0.0, 1.0);
  tracer.counter("X1", 0.0, 1.0);
  EXPECT_EQ(tracer.num_events(), 2u);
  tracer.clear();
  EXPECT_EQ(tracer.num_events(), 0u);
}

TEST(Tracer, NowIsMonotonic) {
  Tracer tracer;
  const double a = tracer.now_us();
  const double b = tracer.now_us();
  EXPECT_GE(b, a);
}

TEST(ScopedSpan, DisabledEmitsNothing) {
  TraceGateGuard guard;
  set_trace_enabled(false);
  const std::size_t before = Tracer::global().num_events();
  {
    SSSP_TRACE_SPAN("should_not_appear");
  }
  EXPECT_EQ(Tracer::global().num_events(), before);
}

TEST(ScopedSpan, EnabledEmitsOneCompleteEvent) {
  TraceGateGuard guard;
  set_trace_enabled(true);
  const std::size_t before = Tracer::global().num_events();
  {
    SSSP_TRACE_SPAN("trace_test_span");
  }
  set_trace_enabled(false);
  EXPECT_EQ(Tracer::global().num_events(), before + 1);
  const std::string doc = to_json(Tracer::global());
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_TRUE(contains(doc, R"("name":"trace_test_span")"));
}

TEST(Tracer, InMemoryCapDropsAndCounts) {
  Tracer tracer;
  tracer.set_max_events(3);
  for (int i = 0; i < 5; ++i)
    tracer.complete("e", static_cast<double>(i), 1.0);
  EXPECT_EQ(tracer.num_events(), 3u);
  EXPECT_EQ(tracer.dropped_events(), 2u);
  const std::string doc = to_json(tracer);
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_TRUE(contains(doc, R"("droppedEvents":2)"));
  tracer.clear();
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(Tracer, StreamingWritesBatchesAndValidDocument) {
  const std::string path = ::testing::TempDir() + "trace_stream.json";
  Tracer tracer;
  tracer.complete("pre_stream", 1.0, 1.0);  // buffered before opening
  tracer.open_stream(path, /*batch_size=*/2);
  EXPECT_TRUE(tracer.streaming());
  for (int i = 0; i < 5; ++i)
    tracer.complete("ev", static_cast<double>(i), 0.5);
  tracer.finish_stream();
  EXPECT_FALSE(tracer.streaming());

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_TRUE(contains(doc, R"("name":"pre_stream")"));
  EXPECT_TRUE(contains(doc, R"("name":"ev")"));
  EXPECT_TRUE(contains(doc, R"("droppedEvents":0)"));
  // All six events survived the batched flushes.
  EXPECT_EQ(tracer.num_events(), 6u);
}

TEST(Tracer, WriteJsonWhileStreamingThrows) {
  const std::string path = ::testing::TempDir() + "trace_stream2.json";
  Tracer tracer;
  tracer.open_stream(path);
  std::ostringstream out;
  EXPECT_THROW(tracer.write_json(out), std::logic_error);
  EXPECT_THROW(tracer.open_stream(path), std::logic_error);
  tracer.finish_stream();
}

TEST(ThreadOrdinal, StableAndPositive) {
  const std::uint32_t id = thread_ordinal();
  EXPECT_GE(id, 1u);
  EXPECT_EQ(thread_ordinal(), id);
}

}  // namespace
}  // namespace sssp::obs
