#include <gtest/gtest.h>

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace sssp::obs {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(JsonWriter, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonValid, AcceptsAndRejects) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid(R"({"a":[1,2.5,-3e2,"x",true,false,null]})"));
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid(R"({"a":})"));
  EXPECT_FALSE(json_valid(R"({"a":1} trailing)"));
  EXPECT_FALSE(json_valid("[1,]"));
  EXPECT_FALSE(json_valid("nan"));
}

TEST(MetricsJson, GoldenForCountersAndGauges) {
  MetricsRegistry registry;
  registry.counter("engine.advances").add(3);
  registry.counter("controller.plans").add(12);
  registry.gauge("far.partitions").set(2.0);
  // std::map ordering makes the export deterministic.
  EXPECT_EQ(registry.to_json(),
            R"({"counters":{"controller.plans":12,"engine.advances":3},)"
            R"("gauges":{"far.partitions":2},"histograms":{}})");
}

TEST(MetricsJson, HistogramBlockIsValidAndComplete) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("engine.frontier_size");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const std::string doc = registry.to_json();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_TRUE(contains(doc, R"("engine.frontier_size":{"count":100,)"));
  for (const char* field : {"\"sum\":", "\"mean\":", "\"max\":", "\"p50\":",
                            "\"p95\":", "\"p99\":"})
    EXPECT_TRUE(contains(doc, field)) << field << " missing in " << doc;
}

TEST(MetricsJson, EmptyRegistryIsValid) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.to_json(),
            R"({"counters":{},"gauges":{},"histograms":{}})");
  EXPECT_TRUE(json_valid(registry.to_json()));
}

TEST(MetricsPrometheus, GoldenForCountersAndGauges) {
  MetricsRegistry registry;
  registry.counter("engine.advances").add(3);
  registry.gauge("far.partitions").set(2.0);
  EXPECT_EQ(registry.to_prometheus(),
            "# TYPE sssp_engine_advances counter\n"
            "sssp_engine_advances 3\n"
            "# TYPE sssp_far_partitions gauge\n"
            "sssp_far_partitions 2\n");
}

TEST(MetricsPrometheus, HistogramExportsSummary) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("controller.seconds_per_iteration");
  h.record(0.001);
  h.record(0.002);
  const std::string text = registry.to_prometheus();
  EXPECT_TRUE(
      contains(text, "# TYPE sssp_controller_seconds_per_iteration summary"));
  EXPECT_TRUE(
      contains(text, "sssp_controller_seconds_per_iteration{quantile=\"0.5\"}"));
  EXPECT_TRUE(contains(text, "sssp_controller_seconds_per_iteration_sum "));
  EXPECT_TRUE(contains(text, "sssp_controller_seconds_per_iteration_count 2"));
  // Dots sanitized, sssp_ prefix applied, no raw name leaks through.
  EXPECT_FALSE(contains(text, "controller.seconds"));
}

}  // namespace
}  // namespace sssp::obs
