#include <gtest/gtest.h>

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace sssp::obs {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(JsonWriter, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonValid, AcceptsAndRejects) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid(R"({"a":[1,2.5,-3e2,"x",true,false,null]})"));
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid(R"({"a":})"));
  EXPECT_FALSE(json_valid(R"({"a":1} trailing)"));
  EXPECT_FALSE(json_valid("[1,]"));
  EXPECT_FALSE(json_valid("nan"));
}

TEST(MetricsJson, GoldenForCountersAndGauges) {
  MetricsRegistry registry;
  registry.counter("engine.advances").add(3);
  registry.counter("controller.plans").add(12);
  registry.gauge("far.partitions").set(2.0);
  // std::map ordering makes the export deterministic.
  EXPECT_EQ(registry.to_json(),
            R"({"counters":{"controller.plans":12,"engine.advances":3},)"
            R"("gauges":{"far.partitions":2},"histograms":{}})");
}

TEST(MetricsJson, HistogramBlockIsValidAndComplete) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("engine.frontier_size");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const std::string doc = registry.to_json();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_TRUE(contains(doc, R"("engine.frontier_size":{"count":100,)"));
  for (const char* field : {"\"sum\":", "\"mean\":", "\"max\":", "\"p50\":",
                            "\"p95\":", "\"p99\":"})
    EXPECT_TRUE(contains(doc, field)) << field << " missing in " << doc;
}

TEST(MetricsJson, EmptyRegistryIsValid) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.to_json(),
            R"({"counters":{},"gauges":{},"histograms":{}})");
  EXPECT_TRUE(json_valid(registry.to_json()));
}

TEST(MetricsPrometheus, GoldenForCountersAndGauges) {
  MetricsRegistry registry;
  registry.counter("engine.advances").add(3);
  registry.gauge("far.partitions").set(2.0);
  // Counters carry the conventional _total suffix; gauges do not.
  EXPECT_EQ(registry.to_prometheus(),
            "# TYPE sssp_engine_advances_total counter\n"
            "sssp_engine_advances_total 3\n"
            "# TYPE sssp_far_partitions gauge\n"
            "sssp_far_partitions 2\n");
}

TEST(MetricsPrometheus, CounterTotalSuffixIsNotDoubled) {
  MetricsRegistry registry;
  registry.counter("relaxations.total").add(7);
  const std::string text = registry.to_prometheus();
  EXPECT_TRUE(contains(text, "sssp_relaxations_total 7"));
  EXPECT_FALSE(contains(text, "_total_total"));
}

TEST(MetricsPrometheus, HistogramExportsNativeBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("controller.seconds_per_iteration");
  h.record(0.001);
  h.record(0.002);
  const std::string text = registry.to_prometheus();
  EXPECT_TRUE(
      contains(text, "# TYPE sssp_controller_seconds_per_iteration histogram"));
  EXPECT_TRUE(
      contains(text, "sssp_controller_seconds_per_iteration_bucket{le=\""));
  EXPECT_TRUE(contains(
      text, "sssp_controller_seconds_per_iteration_bucket{le=\"+Inf\"} 2"));
  EXPECT_TRUE(contains(text, "sssp_controller_seconds_per_iteration_sum "));
  EXPECT_TRUE(contains(text, "sssp_controller_seconds_per_iteration_count 2"));
  // Dots sanitized, sssp_ prefix applied, no raw name leaks through.
  EXPECT_FALSE(contains(text, "controller.seconds"));
}

TEST(MetricsPrometheus, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat");
  h.record(1.0);
  h.record(2.0);
  h.record(1000.0);
  const std::string text = registry.to_prometheus();
  // The last finite bucket's cumulative count must equal the total and
  // every le= bound parses as a number.
  std::size_t pos = 0;
  double last_le = 0.0;
  std::uint64_t last_count = 0;
  int buckets = 0;
  while ((pos = text.find("sssp_lat_bucket{le=\"", pos)) !=
         std::string::npos) {
    pos += std::string("sssp_lat_bucket{le=\"").size();
    if (text.compare(pos, 4, "+Inf") == 0) {
      last_count = std::stoull(text.substr(text.find("} ", pos) + 2));
      ++buckets;
      continue;
    }
    const double le = std::stod(text.substr(pos));
    EXPECT_GT(le, last_le) << "bucket bounds must ascend";
    last_le = le;
    ++buckets;
  }
  EXPECT_GE(buckets, 3);
  EXPECT_EQ(last_count, 3u);
}

}  // namespace
}  // namespace sssp::obs
