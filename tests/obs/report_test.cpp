#include "obs/run_report.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/self_tuning.hpp"
#include "obs/json.hpp"
#include "sim/device.hpp"
#include "sim/dvfs.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::obs {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1))
    ++n;
  return n;
}

// End-to-end: run the self-tuning solver on a small scale-free graph,
// emit the run report, and check the document against the in-memory
// IterationStats it was built from.
class RunReportRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto g = algo::testing::random_graph(3000, 6.0, 99, 7);
    core::SelfTuningOptions options;
    options.set_point = 400.0;
    result_ = core::self_tuning_sssp(g, 0, options);
    ASSERT_FALSE(result_.iterations.empty());

    meta_.tool = "report_test";
    meta_.algorithm = result_.algorithm;
    meta_.dataset = "random_graph(3000)";
    meta_.source = 0;
    meta_.set_point = options.set_point;
    meta_.num_vertices = 3000;
    meta_.reached = result_.reached_count();
    meta_.improving_relaxations = result_.improving_relaxations;
  }

  algo::SsspResult result_;
  RunReportMeta meta_;
};

TEST_F(RunReportRoundTrip, ValidJsonWithOneRecordPerIteration) {
  const std::string doc = run_report_json(meta_, result_.iterations);
  EXPECT_TRUE(json_valid(doc));
  EXPECT_TRUE(contains(doc, R"("schema":"tunesssp.run_report.v1")"));
  EXPECT_EQ(count_occurrences(doc, R"({"iter":)"),
            result_.iterations.size());
  // No device replay -> sim block is null.
  EXPECT_TRUE(contains(doc, R"("sim":null)"));
}

TEST_F(RunReportRoundTrip, RecordsMatchIterationStats) {
  const std::string doc = run_report_json(meta_, result_.iterations);
  // Spot-check that each record serializes its own stats: the x2
  // (edge relaxations) sequence is the engine's ground truth.
  for (std::size_t i = 0; i < result_.iterations.size(); ++i) {
    const auto& stats = result_.iterations[i];
    const std::string record = R"({"iter":)" + std::to_string(i) +
                               R"(,"x1":)" + std::to_string(stats.x1) +
                               R"(,"x2":)" + std::to_string(stats.x2);
    EXPECT_TRUE(contains(doc, record))
        << "iteration " << i << " not serialized faithfully: " << record;
  }
  // Controller internals ride along in every record.
  EXPECT_EQ(count_occurrences(doc, R"("delta":)"),
            result_.iterations.size());
  EXPECT_EQ(count_occurrences(doc, R"("degree_estimate":)"),
            result_.iterations.size());
  EXPECT_EQ(count_occurrences(doc, R"("alpha_estimate":)"),
            result_.iterations.size());
}

TEST_F(RunReportRoundTrip, SimReportMergesIterationAligned) {
  const auto device = sim::DeviceSpec::jetson_tk1();
  const sim::DefaultGovernor governor;
  const auto sim_report =
      sim::simulate_run(device, governor, result_.to_workload("test"),
                        {.keep_iteration_reports = true});
  const std::string doc =
      run_report_json(meta_, result_.iterations, &sim_report);
  EXPECT_TRUE(json_valid(doc));
  EXPECT_TRUE(contains(doc, R"("energy_joules":)"));
  EXPECT_TRUE(contains(doc, R"("average_power_w":)"));
  // Every iteration record gains a nested sim object.
  EXPECT_EQ(count_occurrences(doc, R"("sim":{"seconds":)"),
            result_.iterations.size());
}

TEST(RunReport, EmptyIterationsStillValid) {
  RunReportMeta meta;
  meta.tool = "report_test";
  meta.algorithm = "none";
  const std::string doc = run_report_json(meta, {});
  EXPECT_TRUE(json_valid(doc));
  EXPECT_TRUE(contains(doc, R"("iterations":[])"));
  // Unset device/dvfs serialize as null, not empty strings.
  EXPECT_TRUE(contains(doc, R"("device":null)"));
}

TEST(RunReport, MetaStringsAreEscaped) {
  RunReportMeta meta;
  meta.tool = "report_test";
  meta.dataset = "weird\"name\\with\nstuff";
  const std::string doc = run_report_json(meta, {});
  EXPECT_TRUE(json_valid(doc));
}

}  // namespace
}  // namespace sssp::obs
