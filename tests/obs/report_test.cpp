#include "obs/run_report.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/self_tuning.hpp"
#include "obs/json.hpp"
#include "sim/device.hpp"
#include "sim/dvfs.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::obs {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1))
    ++n;
  return n;
}

// End-to-end: run the self-tuning solver on a small scale-free graph,
// emit the run report, and check the document against the in-memory
// IterationStats it was built from.
class RunReportRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto g = algo::testing::random_graph(3000, 6.0, 99, 7);
    core::SelfTuningOptions options;
    options.set_point = 400.0;
    result_ = core::self_tuning_sssp(g, 0, options);
    ASSERT_FALSE(result_.iterations.empty());

    meta_.tool = "report_test";
    meta_.algorithm = result_.algorithm;
    meta_.dataset = "random_graph(3000)";
    meta_.source = 0;
    meta_.set_point = options.set_point;
    meta_.num_vertices = 3000;
    meta_.reached = result_.reached_count();
    meta_.improving_relaxations = result_.improving_relaxations;
  }

  algo::SsspResult result_;
  RunReportMeta meta_;
};

TEST_F(RunReportRoundTrip, ValidJsonWithOneRecordPerIteration) {
  const std::string doc = run_report_json(meta_, result_.iterations);
  EXPECT_TRUE(json_valid(doc));
  EXPECT_TRUE(contains(doc, R"("schema":"tunesssp.run_report.v1")"));
  EXPECT_EQ(count_occurrences(doc, R"({"iter":)"),
            result_.iterations.size());
  // No device replay -> sim block is null.
  EXPECT_TRUE(contains(doc, R"("sim":null)"));
}

TEST_F(RunReportRoundTrip, RecordsMatchIterationStats) {
  const std::string doc = run_report_json(meta_, result_.iterations);
  // Spot-check that each record serializes its own stats: the x2
  // (edge relaxations) sequence is the engine's ground truth.
  for (std::size_t i = 0; i < result_.iterations.size(); ++i) {
    const auto& stats = result_.iterations[i];
    const std::string record = R"({"iter":)" + std::to_string(i) +
                               R"(,"x1":)" + std::to_string(stats.x1) +
                               R"(,"x2":)" + std::to_string(stats.x2);
    EXPECT_TRUE(contains(doc, record))
        << "iteration " << i << " not serialized faithfully: " << record;
  }
  // Controller internals ride along in every record.
  EXPECT_EQ(count_occurrences(doc, R"("delta":)"),
            result_.iterations.size());
  EXPECT_EQ(count_occurrences(doc, R"("degree_estimate":)"),
            result_.iterations.size());
  EXPECT_EQ(count_occurrences(doc, R"("alpha_estimate":)"),
            result_.iterations.size());
}

TEST_F(RunReportRoundTrip, SimReportMergesIterationAligned) {
  const auto device = sim::DeviceSpec::jetson_tk1();
  const sim::DefaultGovernor governor;
  const auto sim_report =
      sim::simulate_run(device, governor, result_.to_workload("test"),
                        {.keep_iteration_reports = true});
  const std::string doc =
      run_report_json(meta_, result_.iterations, &sim_report);
  EXPECT_TRUE(json_valid(doc));
  EXPECT_TRUE(contains(doc, R"("energy_joules":)"));
  EXPECT_TRUE(contains(doc, R"("average_power_w":)"));
  // Every iteration record gains a nested sim object.
  EXPECT_EQ(count_occurrences(doc, R"("sim":{"seconds":)"),
            result_.iterations.size());
}

TEST_F(RunReportRoundTrip, ProfileBlocksRoundTripThroughParser) {
  prof::RunProfile profile;
  profile.counter_backend = prof::CounterBackend::kWallClock;
  profile.counter_backend_detail = "perf_event_open: EACCES";
  profile.wall_seconds = 1.25;
  profile.totals.task_seconds = 1.2;
  profile.totals.cycles = 4'000'000'000ull;
  profile.totals.instructions = 6'000'000'000ull;
  profile.totals.llc_misses = 12'000'000;
  profile.energy.backend = prof::EnergyBackend::kModel;
  profile.energy.backend_detail = "model 9.31 W (no powercap tree)";
  profile.energy.joules = 11.5;
  profile.energy.package_joules = 11.5;
  profile.energy.seconds = 1.25;
  profile.energy.average_watts = 9.2;
  profile.energy.energy_delay_product = 11.5 * 1.25;
  prof::PhaseProfile advance;
  advance.seconds = 0.8;
  advance.joules = 7.4;
  advance.entries = 42;
  advance.counters.instructions = 5'000'000'000ull;
  profile.phases["advance"] = advance;
  prof::IterationSample sample;
  sample.iteration = 3;
  sample.seconds = 0.01;
  sample.joules = 0.09;
  profile.iterations.push_back(sample);

  const std::string doc =
      run_report_json(meta_, result_.iterations, nullptr, &profile);
  EXPECT_TRUE(json_valid(doc));
  // The profile iteration records must not collide with the top-level
  // per-iteration records (counted by the '{"iter":' key).
  EXPECT_EQ(count_occurrences(doc, R"({"iter":)"),
            result_.iterations.size());

  JsonValue root;
  ASSERT_TRUE(parse_json(doc, root));
  const JsonValue* energy = root.find("energy");
  ASSERT_NE(energy, nullptr);
  EXPECT_EQ(energy->string_or("backend", ""), "model");
  EXPECT_DOUBLE_EQ(energy->number_or("joules", 0.0), 11.5);
  EXPECT_DOUBLE_EQ(energy->number_or("energy_delay_product", 0.0),
                   11.5 * 1.25);
  // joules_per_relaxation is derived from the run's meta at write time.
  EXPECT_NEAR(energy->number_or("joules_per_relaxation", 0.0),
              11.5 / static_cast<double>(meta_.improving_relaxations),
              1e-12);

  const JsonValue* prof_block = root.find("profile");
  ASSERT_NE(prof_block, nullptr);
  EXPECT_EQ(prof_block->string_or("counter_backend", ""), "wall_clock");
  const JsonValue* totals = prof_block->find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_DOUBLE_EQ(totals->number_or("cycles", 0.0), 4e9);
  EXPECT_DOUBLE_EQ(totals->number_or("ipc", 0.0), 1.5);
  const JsonValue* phases = prof_block->find("phases");
  ASSERT_NE(phases, nullptr);
  const JsonValue* advance_phase = phases->find("advance");
  ASSERT_NE(advance_phase, nullptr);
  EXPECT_DOUBLE_EQ(advance_phase->number_or("seconds", 0.0), 0.8);
  EXPECT_DOUBLE_EQ(advance_phase->number_or("entries", 0.0), 42.0);
  const JsonValue* samples = prof_block->find("iterations");
  ASSERT_NE(samples, nullptr);
  ASSERT_TRUE(samples->is_array());
  ASSERT_EQ(samples->array.size(), 1u);
  EXPECT_DOUBLE_EQ(samples->array[0].number_or("iteration", -1.0), 3.0);
}

TEST_F(RunReportRoundTrip, ProfileBlocksOmittedWhenProfilingOff) {
  const std::string doc = run_report_json(meta_, result_.iterations);
  EXPECT_FALSE(contains(doc, R"("energy":)"));
  EXPECT_FALSE(contains(doc, R"("profile":)"));
}

TEST(JsonParse, RoundTripsTypesAndNesting) {
  JsonValue v;
  ASSERT_TRUE(parse_json(
      R"({"a":1.5,"b":"x","c":[1,2,{"d":true}],"e":null,"f":-3e2})", v));
  EXPECT_DOUBLE_EQ(v.number_or("a", 0.0), 1.5);
  EXPECT_EQ(v.string_or("b", ""), "x");
  const JsonValue* c = v.find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(c->is_array());
  ASSERT_EQ(c->array.size(), 3u);
  EXPECT_TRUE(c->array[2].find("d")->boolean);
  EXPECT_TRUE(v.find("e")->is_null());
  EXPECT_DOUBLE_EQ(v.number_or("f", 0.0), -300.0);
}

TEST(JsonParse, RejectsMalformedInput) {
  JsonValue v;
  EXPECT_FALSE(parse_json("", v));
  EXPECT_FALSE(parse_json("{", v));
  EXPECT_FALSE(parse_json(R"({"a":1} extra)", v));
  EXPECT_FALSE(parse_json("[1,]", v));
}

TEST(JsonParse, DecodesEscapes) {
  JsonValue v;
  ASSERT_TRUE(parse_json(R"({"s":"a\"b\\c\ndA"})", v));
  EXPECT_EQ(v.string_or("s", ""), "a\"b\\c\ndA");
}

TEST(RunReport, EmptyIterationsStillValid) {
  RunReportMeta meta;
  meta.tool = "report_test";
  meta.algorithm = "none";
  const std::string doc = run_report_json(meta, {});
  EXPECT_TRUE(json_valid(doc));
  EXPECT_TRUE(contains(doc, R"("iterations":[])"));
  // Unset device/dvfs serialize as null, not empty strings.
  EXPECT_TRUE(contains(doc, R"("device":null)"));
}

TEST(RunReport, MetaStringsAreEscaped) {
  RunReportMeta meta;
  meta.tool = "report_test";
  meta.dataset = "weird\"name\\with\nstuff";
  const std::string doc = run_report_json(meta, {});
  EXPECT_TRUE(json_valid(doc));
}

}  // namespace
}  // namespace sssp::obs
