#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "util/thread_pool.hpp"

namespace sssp::obs {
namespace {

// Log-bucketed histograms quantize to quarter-powers-of-two; the
// geometric bucket midpoint is at most a factor of 2^(1/8) ~ 1.09 off
// the true value. Tests allow 10% to leave headroom for the midpoint
// rounding.
constexpr double kRelTol = 0.10;

void expect_near_rel(double actual, double expected) {
  EXPECT_NEAR(actual, expected, std::abs(expected) * kRelTol)
      << "expected ~" << expected << ", got " << actual;
}

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetOverwrites) {
  Gauge g;
  g.set(2.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Histogram, EmptyPercentilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleValuePercentiles) {
  Histogram h;
  h.record(1000.0);
  expect_near_rel(h.percentile(50), 1000.0);
  expect_near_rel(h.percentile(99), 1000.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 1000.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(Histogram, UniformRangePercentiles) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.record(static_cast<double>(v));
  expect_near_rel(h.percentile(50), 500.0);
  expect_near_rel(h.percentile(95), 950.0);
  expect_near_rel(h.percentile(99), 990.0);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), 1000.0 * 1001.0 / 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(Histogram, SkewedDistribution) {
  // 99 fast events and 1 slow one: p50 tracks the bulk, the extreme
  // tail tracks the outlier.
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(1.0);
  h.record(1e6);
  expect_near_rel(h.percentile(50), 1.0);
  expect_near_rel(h.percentile(99.9), 1e6);
}

TEST(Histogram, ZeroAndNegativeGoToUnderflowBucket) {
  Histogram h;
  h.record(0.0);
  h.record(-5.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(Histogram, TinyAndHugeValuesClampWithoutCrashing) {
  Histogram h;
  h.record(1e-30);  // below bucket range -> clamped to smallest bucket
  h.record(1e30);   // above bucket range -> clamped to largest bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.percentile(99), 1e10);
  EXPECT_GT(h.percentile(1), 0.0);
}

TEST(Histogram, BucketIndexRoundTripsWithinTolerance) {
  for (double v : {1.5e-4, 0.02, 1.0, 3.7, 1024.0, 9.9e9}) {
    const int index = Histogram::bucket_index(v);
    const double mid = Histogram::bucket_value(index);
    EXPECT_NEAR(mid, v, v * kRelTol) << "v=" << v << " index=" << index;
  }
}

TEST(MetricsRegistry, FindOrCreateReturnsStableRefs) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  // Creating more instruments must not invalidate earlier refs
  // (engine code caches them in function-local statics).
  for (int i = 0; i < 100; ++i)
    registry.counter("c" + std::to_string(i));
  a.add(7);
  EXPECT_EQ(registry.counter("x").value(), 7u);
}

TEST(MetricsRegistry, ResetZeroesButKeepsInstruments) {
  MetricsRegistry registry;
  Counter& c = registry.counter("n");
  Histogram& h = registry.histogram("t");
  c.add(5);
  h.record(3.0);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&registry.counter("n"), &c);
}

TEST(MetricsRegistry, ConcurrentIncrementsUnderThreadPool) {
  MetricsRegistry registry;
  Counter& c = registry.counter("hits");
  Histogram& h = registry.histogram("latency");
  constexpr std::size_t kItems = 100000;
  util::ThreadPool pool(8);
  pool.parallel_for(kItems, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      c.add(1);
      h.record(static_cast<double>(i % 1000) + 1.0);
    }
  });
  EXPECT_EQ(c.value(), kItems);
  EXPECT_EQ(h.count(), kItems);
}

TEST(MetricsRegistry, ConcurrentFindOrCreateIsSafe) {
  MetricsRegistry registry;
  util::ThreadPool pool(8);
  pool.parallel_for(1000, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      registry.counter("shared").add(1);
      registry.counter("k" + std::to_string(i % 16)).add(1);
    }
  });
  EXPECT_EQ(registry.counter("shared").value(), 1000u);
}

TEST(MetricsGate, TogglesAndRestores) {
  // The gate is process-global; tests must leave it as found.
  const bool was = metrics_enabled();
  set_metrics_enabled(true);
  EXPECT_TRUE(metrics_enabled());
  set_metrics_enabled(false);
  EXPECT_FALSE(metrics_enabled());
  set_metrics_enabled(was);
}

}  // namespace
}  // namespace sssp::obs
