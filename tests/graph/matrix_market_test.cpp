#include "graph/matrix_market.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sssp::graph {
namespace {

TEST(MatrixMarket, ParsesIntegerGeneral) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "% comment\n"
      "3 3 2\n"
      "1 2 10\n"
      "3 1 20\n");
  const CsrGraph g = load_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.weights_of(0)[0], 10u);
  EXPECT_EQ(g.neighbors(2)[0], 0u);
}

TEST(MatrixMarket, SymmetricDuplicatesOffDiagonal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer symmetric\n"
      "3 3 2\n"
      "2 1 5\n"
      "3 3 9\n");  // diagonal entry; self-loop removed by the builder
  const CsrGraph g = load_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 2u);  // 2->1 and 1->2
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(1)[0], 0u);
}

TEST(MatrixMarket, PatternGetsRandomWeightsInRange) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "4 4 3\n"
      "1 2\n"
      "2 3\n"
      "3 4\n");
  MatrixMarketOptions opts;
  opts.pattern_min_weight = 1;
  opts.pattern_max_weight = 99;
  const CsrGraph g = load_matrix_market(in, opts);
  EXPECT_EQ(g.num_edges(), 3u);
  for (const Weight w : g.weights()) {
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, 99u);
  }
}

TEST(MatrixMarket, PatternWeightsAreDeterministicPerSeed) {
  const std::string text =
      "%%MatrixMarket matrix coordinate pattern general\n"
      "4 4 2\n"
      "1 2\n"
      "3 4\n";
  MatrixMarketOptions opts;
  opts.weight_seed = 77;
  std::istringstream a(text), b(text);
  const CsrGraph ga = load_matrix_market(a, opts);
  const CsrGraph gb = load_matrix_market(b, opts);
  for (std::size_t i = 0; i < ga.num_edges(); ++i)
    EXPECT_EQ(ga.weights()[i], gb.weights()[i]);
}

TEST(MatrixMarket, RealValuesAreRoundedAndClamped) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 2 2.7\n"
      "2 1 0.001\n");
  const CsrGraph g = load_matrix_market(in);
  EXPECT_EQ(g.weights_of(0)[0], 3u);   // rounded
  EXPECT_EQ(g.weights_of(1)[0], 1u);   // clamped up to 1
}

TEST(MatrixMarket, RectangularUsesMaxDimension) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 5 1\n"
      "1 5 3\n");
  const CsrGraph g = load_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 5u);
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::istringstream in("3 3 0\n");
  EXPECT_THROW(load_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsUnsupportedField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n3 3 0\n");
  EXPECT_THROW(load_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "3 3 2\n"
      "1 2 10\n");
  EXPECT_THROW(load_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsOutOfRangeIndex) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "3 3 1\n"
      "4 1 10\n");
  EXPECT_THROW(load_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(load_matrix_market_file("/nonexistent/x.mtx"),
               std::runtime_error);
}

}  // namespace
}  // namespace sssp::graph
