#include "graph/components.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/rmat.hpp"

namespace sssp::graph {
namespace {

TEST(Components, SingleComponentRing) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 10; ++v) edges.push_back({v, (v + 1) % 10, 1});
  const CsrGraph g = build_csr(10, std::move(edges));
  const ComponentLabeling labeling = weakly_connected_components(g);
  EXPECT_EQ(labeling.num_components(), 1u);
  EXPECT_EQ(labeling.sizes[0], 10u);
  EXPECT_EQ(labeling.largest_component(), 0u);
}

TEST(Components, DirectionIgnoredForWeakConnectivity) {
  // 0 -> 1 and 2 -> 1: weakly one component despite no directed path
  // from 0 to 2.
  const CsrGraph g = build_csr(3, {{0, 1, 1}, {2, 1, 1}});
  const ComponentLabeling labeling = weakly_connected_components(g);
  EXPECT_EQ(labeling.num_components(), 1u);
}

TEST(Components, IsolatedVerticesAreOwnComponents) {
  const CsrGraph g = build_csr(4, {{0, 1, 1}});
  const ComponentLabeling labeling = weakly_connected_components(g);
  EXPECT_EQ(labeling.num_components(), 3u);  // {0,1}, {2}, {3}
  EXPECT_EQ(labeling.sizes[labeling.largest_component()], 2u);
}

TEST(Components, EmptyGraph) {
  const CsrGraph g(std::vector<EdgeIndex>{0}, {}, {});
  const ComponentLabeling labeling = weakly_connected_components(g);
  EXPECT_EQ(labeling.num_components(), 0u);
  EXPECT_THROW(labeling.largest_component(), std::logic_error);
}

TEST(Components, SizesSumToVertexCount) {
  RmatOptions options;
  options.scale = 10;
  options.num_edges = 1 << 11;  // sparse: many components
  const CsrGraph g = generate_rmat(options);
  const ComponentLabeling labeling = weakly_connected_components(g);
  std::size_t total = 0;
  for (const std::size_t s : labeling.sizes) total += s;
  EXPECT_EQ(total, g.num_vertices());
  // Every label valid.
  for (const std::uint32_t l : labeling.label)
    EXPECT_LT(l, labeling.num_components());
}

TEST(ExtractComponent, PreservesEdgesAndWeights) {
  // Two components: triangle {0,1,2} and edge {3,4}.
  const CsrGraph g = build_csr(
      5, {{0, 1, 5}, {1, 2, 6}, {2, 0, 7}, {3, 4, 9}});
  const ComponentLabeling labeling = weakly_connected_components(g);
  const ExtractedComponent triangle =
      extract_component(g, labeling, labeling.label[0]);
  EXPECT_EQ(triangle.graph.num_vertices(), 3u);
  EXPECT_EQ(triangle.graph.num_edges(), 3u);
  triangle.graph.validate();
  // Round-trip the vertex maps.
  for (VertexId nv = 0; nv < 3; ++nv) {
    EXPECT_EQ(triangle.old_to_new[triangle.new_to_old[nv]], nv);
  }
  // Vertices 3 and 4 are not mapped.
  EXPECT_EQ(triangle.old_to_new[3], kInvalidVertex);
  EXPECT_EQ(triangle.old_to_new[4], kInvalidVertex);

  const ExtractedComponent pair =
      extract_component(g, labeling, labeling.label[3]);
  EXPECT_EQ(pair.graph.num_vertices(), 2u);
  EXPECT_EQ(pair.graph.num_edges(), 1u);
  EXPECT_EQ(pair.graph.weights()[0], 9u);
}

TEST(ExtractComponent, RejectsBadArguments) {
  const CsrGraph g = build_csr(2, {{0, 1, 1}});
  const ComponentLabeling labeling = weakly_connected_components(g);
  EXPECT_THROW(extract_component(g, labeling, 99), std::invalid_argument);
  ComponentLabeling wrong = labeling;
  wrong.label.pop_back();
  EXPECT_THROW(extract_component(g, wrong, 0), std::invalid_argument);
}

TEST(LargestComponent, PicksTheBigOne) {
  const CsrGraph g = build_csr(
      6, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {4, 5, 1}});
  const ExtractedComponent big = largest_component(g);
  EXPECT_EQ(big.graph.num_vertices(), 4u);
  EXPECT_EQ(big.graph.num_edges(), 3u);
}

}  // namespace
}  // namespace sssp::graph
