#include "graph/binary_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "fault/failpoint.hpp"
#include "graph/io_error.hpp"
#include "graph/rmat.hpp"

namespace sssp::graph {
namespace {

TEST(BinaryIo, RoundTripSmallGraph) {
  const CsrGraph g({0, 2, 3, 3}, {1, 2, 2}, {5, 3, 1});
  std::stringstream buffer;
  save_binary(g, buffer);
  const CsrGraph loaded = load_binary(buffer);
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(loaded.targets()[i], g.targets()[i]);
    EXPECT_EQ(loaded.weights()[i], g.weights()[i]);
  }
}

TEST(BinaryIo, RoundTripGeneratedGraph) {
  RmatOptions options;
  options.scale = 11;
  options.num_edges = 1 << 13;
  const CsrGraph g = generate_rmat(options);
  std::stringstream buffer;
  save_binary(g, buffer);
  const CsrGraph loaded = load_binary(buffer);
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_EQ(loaded.offsets().back(), g.offsets().back());
  for (std::size_t i = 0; i < g.num_edges(); i += 97)
    EXPECT_EQ(loaded.targets()[i], g.targets()[i]);
}

TEST(BinaryIo, RoundTripEmptyGraph) {
  const CsrGraph g(std::vector<EdgeIndex>{0}, {}, {});
  std::stringstream buffer;
  save_binary(g, buffer);
  const CsrGraph loaded = load_binary(buffer);
  EXPECT_EQ(loaded.num_vertices(), 0u);
  EXPECT_EQ(loaded.num_edges(), 0u);
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOTAGRAPHFILE................";
  EXPECT_THROW(load_binary(buffer), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncatedPayload) {
  const CsrGraph g({0, 2, 3, 3}, {1, 2, 2}, {5, 3, 1});
  std::stringstream buffer;
  save_binary(g, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 4));
  EXPECT_THROW(load_binary(truncated), std::runtime_error);
}

TEST(BinaryIo, RejectsImplausibleHeader) {
  std::stringstream buffer;
  buffer.write("TSSSPGR1", 8);
  const std::uint64_t absurd = ~0ull;
  buffer.write(reinterpret_cast<const char*>(&absurd), 8);
  buffer.write(reinterpret_cast<const char*>(&absurd), 8);
  EXPECT_THROW(load_binary(buffer), std::runtime_error);
}

TEST(BinaryIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "graph_cache.bin";
  const CsrGraph g({0, 1, 1}, {1}, {7});
  save_binary_file(g, path);
  const CsrGraph loaded = load_binary_file(path);
  EXPECT_EQ(loaded.num_edges(), 1u);
  EXPECT_EQ(loaded.weights()[0], 7u);
  std::remove(path.c_str());
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(load_binary_file("/nonexistent/g.bin"), std::runtime_error);
}

TEST(BinaryIo, MissingFileReportsOpenClass) {
  try {
    load_binary_file("/nonexistent/g.bin");
    FAIL() << "expected GraphIoError";
  } catch (const GraphIoError& e) {
    EXPECT_EQ(e.error_class(), IoErrorClass::kOpen);
    EXPECT_EQ(e.format(), "binary graph");
  }
}

TEST(BinaryIo, ChecksumMismatchReportsSectionOffset) {
  const CsrGraph g({0, 2, 3, 3}, {1, 2, 2}, {5, 3, 1});
  std::stringstream buffer;
  save_binary(g, buffer);
  std::string bytes = buffer.str();
  // Corrupt one byte in the offsets section (just past magic + header
  // body + header checksum).
  const std::size_t offsets_start = 8 + 24 + 8;
  bytes[offsets_start] ^= 0xFF;
  std::stringstream corrupted(bytes);
  try {
    load_binary(corrupted);
    FAIL() << "expected GraphIoError";
  } catch (const GraphIoError& e) {
    EXPECT_EQ(e.error_class(), IoErrorClass::kChecksum);
    ASSERT_TRUE(e.has_byte_offset());
    EXPECT_EQ(e.byte_offset(), offsets_start);
  }
}

TEST(BinaryIo, UnsupportedVersionRejected) {
  const CsrGraph g({0, 1, 1}, {1}, {7});
  std::stringstream buffer;
  save_binary(g, buffer);
  std::string bytes = buffer.str();
  // Bump the version field (first u32 of the header body) and re-seal
  // the header checksum so only the version check can object.
  bytes[8] = 99;
  const std::uint64_t sum = fnv1a64(bytes.data() + 8, 24);
  bytes.replace(32, 8, reinterpret_cast<const char*>(&sum), 8);
  std::stringstream patched(bytes);
  try {
    load_binary(patched);
    FAIL() << "expected GraphIoError";
  } catch (const GraphIoError& e) {
    EXPECT_EQ(e.error_class(), IoErrorClass::kVersion);
  }
}

TEST(BinaryIo, V1LegacyCacheStillLoads) {
  // Hand-built v1 stream: magic + plain u64 sizes + raw sections, no
  // checksums. The reader must keep accepting old caches byte-for-byte.
  const CsrGraph g({0, 2, 3, 3}, {1, 2, 2}, {5, 3, 1});
  std::stringstream buffer;
  buffer.write("TSSSPGR1", 8);
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  buffer.write(reinterpret_cast<const char*>(&n), 8);
  buffer.write(reinterpret_cast<const char*>(&m), 8);
  buffer.write(reinterpret_cast<const char*>(g.offsets().data()),
               static_cast<std::streamsize>(g.offsets().size() *
                                            sizeof(EdgeIndex)));
  buffer.write(reinterpret_cast<const char*>(g.targets().data()),
               static_cast<std::streamsize>(g.targets().size() *
                                            sizeof(VertexId)));
  buffer.write(reinterpret_cast<const char*>(g.weights().data()),
               static_cast<std::streamsize>(g.weights().size() *
                                            sizeof(Weight)));
  const CsrGraph loaded = load_binary(buffer);
  ASSERT_EQ(loaded.num_vertices(), g.num_vertices());
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(loaded.targets()[i], g.targets()[i]);
    EXPECT_EQ(loaded.weights()[i], g.weights()[i]);
  }
}

TEST(BinaryIo, InconsistentCsrStructureReportsParseClass) {
  // Sections that read cleanly (v1 has no checksums) but describe an
  // impossible CSR — non-monotone offsets, or an edge target outside
  // the vertex range — must surface as a structured kParse error, not
  // as a raw std::invalid_argument from the graph layer (tools map the
  // class to the corrupt-input exit code).
  struct Case {
    const char* name;
    std::vector<EdgeIndex> offsets;
    std::vector<VertexId> targets;
    std::vector<Weight> weights;
  };
  const std::vector<Case> cases = {
      {"non-monotone offsets", {0, 2, 1, 3}, {1, 2, 2}, {5, 3, 1}},
      {"target out of range", {0, 2, 3, 3}, {1, 9, 2}, {5, 3, 1}},
      {"offset past edge count", {0, 2, 3, 7}, {1, 2, 2}, {5, 3, 1}},
  };
  for (const Case& c : cases) {
    std::stringstream buffer;
    buffer.write("TSSSPGR1", 8);
    const std::uint64_t n = c.offsets.size() - 1;
    const std::uint64_t m = c.targets.size();
    buffer.write(reinterpret_cast<const char*>(&n), 8);
    buffer.write(reinterpret_cast<const char*>(&m), 8);
    buffer.write(reinterpret_cast<const char*>(c.offsets.data()),
                 static_cast<std::streamsize>(c.offsets.size() *
                                              sizeof(EdgeIndex)));
    buffer.write(reinterpret_cast<const char*>(c.targets.data()),
                 static_cast<std::streamsize>(c.targets.size() *
                                              sizeof(VertexId)));
    buffer.write(reinterpret_cast<const char*>(c.weights.data()),
                 static_cast<std::streamsize>(c.weights.size() *
                                              sizeof(Weight)));
    try {
      load_binary(buffer);
      FAIL() << c.name << " was accepted";
    } catch (const GraphIoError& e) {
      EXPECT_EQ(e.error_class(), IoErrorClass::kParse) << c.name;
    }
  }
}

// Corpus sweep: every possible truncation of a valid cache must produce
// a structured truncation error — never a crash, never a bogus graph.
TEST(BinaryIoCorpus, EveryTruncationIsAStructuredError) {
  const CsrGraph g({0, 2, 3, 3}, {1, 2, 2}, {5, 3, 1});
  std::stringstream buffer;
  save_binary(g, buffer);
  const std::string full = buffer.str();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream truncated(full.substr(0, cut));
    try {
      load_binary(truncated);
      FAIL() << "truncation at byte " << cut << " loaded successfully";
    } catch (const GraphIoError& e) {
      EXPECT_EQ(e.error_class(), IoErrorClass::kTruncated)
          << "cut=" << cut << ": " << e.what();
      EXPECT_TRUE(e.has_byte_offset()) << "cut=" << cut;
      EXPECT_LE(e.byte_offset(), cut) << "cut=" << cut;
    }
  }
}

// Corpus sweep: every single-bit flip must be caught by the magic check
// or a checksum — never a crash, never a silently corrupted graph.
TEST(BinaryIoCorpus, EveryBitFlipIsAStructuredError) {
  const CsrGraph g({0, 2, 3, 3}, {1, 2, 2}, {5, 3, 1});
  std::stringstream buffer;
  save_binary(g, buffer);
  const std::string full = buffer.str();
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = full;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      std::stringstream corrupted(flipped);
      try {
        load_binary(corrupted);
        FAIL() << "bit flip at byte " << byte << " bit " << bit
               << " loaded successfully";
      } catch (const GraphIoError& e) {
        EXPECT_TRUE(e.error_class() == IoErrorClass::kVersion ||
                    e.error_class() == IoErrorClass::kChecksum ||
                    e.error_class() == IoErrorClass::kLimit)
            << "byte=" << byte << " bit=" << bit << ": " << e.what();
      }
    }
  }
}

// The injected loader faults themselves surface as structured errors.
TEST(BinaryIoCorpus, ShortReadFailpointReportsTruncation) {
  const CsrGraph g({0, 2, 3, 3}, {1, 2, 2}, {5, 3, 1});
  std::stringstream buffer;
  save_binary(g, buffer);
  fault::FailpointRegistry::global().arm("graph.binary.short_read=3");
  try {
    load_binary(buffer);
    fault::FailpointRegistry::global().disarm_all();
    FAIL() << "expected GraphIoError";
  } catch (const GraphIoError& e) {
    fault::FailpointRegistry::global().disarm_all();
    EXPECT_EQ(e.error_class(), IoErrorClass::kTruncated);
  }
}

TEST(BinaryIoCorpus, BitFlipFailpointCaughtByChecksum) {
  const CsrGraph g({0, 2, 3, 3}, {1, 2, 2}, {5, 3, 1});
  std::stringstream buffer;
  save_binary(g, buffer);
  // Fire on the 4th read: past magic and header, inside the sections.
  fault::FailpointRegistry::global().arm("graph.binary.bit_flip=4");
  try {
    load_binary(buffer);
    fault::FailpointRegistry::global().disarm_all();
    FAIL() << "expected GraphIoError";
  } catch (const GraphIoError& e) {
    fault::FailpointRegistry::global().disarm_all();
    EXPECT_EQ(e.error_class(), IoErrorClass::kChecksum);
  }
}

}  // namespace
}  // namespace sssp::graph
