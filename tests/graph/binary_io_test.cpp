#include "graph/binary_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/rmat.hpp"

namespace sssp::graph {
namespace {

TEST(BinaryIo, RoundTripSmallGraph) {
  const CsrGraph g({0, 2, 3, 3}, {1, 2, 2}, {5, 3, 1});
  std::stringstream buffer;
  save_binary(g, buffer);
  const CsrGraph loaded = load_binary(buffer);
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(loaded.targets()[i], g.targets()[i]);
    EXPECT_EQ(loaded.weights()[i], g.weights()[i]);
  }
}

TEST(BinaryIo, RoundTripGeneratedGraph) {
  RmatOptions options;
  options.scale = 11;
  options.num_edges = 1 << 13;
  const CsrGraph g = generate_rmat(options);
  std::stringstream buffer;
  save_binary(g, buffer);
  const CsrGraph loaded = load_binary(buffer);
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_EQ(loaded.offsets().back(), g.offsets().back());
  for (std::size_t i = 0; i < g.num_edges(); i += 97)
    EXPECT_EQ(loaded.targets()[i], g.targets()[i]);
}

TEST(BinaryIo, RoundTripEmptyGraph) {
  const CsrGraph g(std::vector<EdgeIndex>{0}, {}, {});
  std::stringstream buffer;
  save_binary(g, buffer);
  const CsrGraph loaded = load_binary(buffer);
  EXPECT_EQ(loaded.num_vertices(), 0u);
  EXPECT_EQ(loaded.num_edges(), 0u);
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOTAGRAPHFILE................";
  EXPECT_THROW(load_binary(buffer), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncatedPayload) {
  const CsrGraph g({0, 2, 3, 3}, {1, 2, 2}, {5, 3, 1});
  std::stringstream buffer;
  save_binary(g, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 4));
  EXPECT_THROW(load_binary(truncated), std::runtime_error);
}

TEST(BinaryIo, RejectsImplausibleHeader) {
  std::stringstream buffer;
  buffer.write("TSSSPGR1", 8);
  const std::uint64_t absurd = ~0ull;
  buffer.write(reinterpret_cast<const char*>(&absurd), 8);
  buffer.write(reinterpret_cast<const char*>(&absurd), 8);
  EXPECT_THROW(load_binary(buffer), std::runtime_error);
}

TEST(BinaryIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "graph_cache.bin";
  const CsrGraph g({0, 1, 1}, {1}, {7});
  save_binary_file(g, path);
  const CsrGraph loaded = load_binary_file(path);
  EXPECT_EQ(loaded.num_edges(), 1u);
  EXPECT_EQ(loaded.weights()[0], 7u);
  std::remove(path.c_str());
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(load_binary_file("/nonexistent/g.bin"), std::runtime_error);
}

}  // namespace
}  // namespace sssp::graph
