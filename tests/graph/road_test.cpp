#include "graph/road.hpp"

#include <gtest/gtest.h>

#include "graph/degree_stats.hpp"

namespace sssp::graph {
namespace {

RoadOptions small_options() {
  RoadOptions o;
  o.rows = 64;
  o.cols = 64;
  o.seed = 9;
  return o;
}

TEST(Road, GraphIsValid) {
  const CsrGraph g = generate_road(small_options());
  g.validate();
  EXPECT_EQ(g.num_vertices(), 64u * 64u);
  EXPECT_GT(g.num_edges(), 0u);
}

TEST(Road, LowDegreeNotScaleFree) {
  const CsrGraph g = generate_road(small_options());
  const DegreeStats s = compute_degree_stats(g);
  EXPECT_LE(s.max_degree, 16u);  // grid + a few ramps
  EXPECT_FALSE(looks_scale_free(s)) << to_string(s);
  EXPECT_LT(s.mean_degree, 6.0);
  EXPECT_GT(s.mean_degree, 1.0);
}

TEST(Road, AllEdgesBidirectionalWithEqualWeight) {
  const CsrGraph g = generate_road(small_options());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights_of(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      // Find the reverse edge.
      bool found = false;
      const auto back = g.neighbors(v);
      const auto back_w = g.weights_of(v);
      for (std::size_t j = 0; j < back.size(); ++j) {
        if (back[j] == u && back_w[j] == ws[i]) {
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << "missing reverse of " << u << "->" << v;
    }
  }
}

TEST(Road, DeterministicPerSeed) {
  const auto a = generate_road_edges(small_options());
  const auto b = generate_road_edges(small_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Road, MostVerticesConnectedAtDefaultDensity) {
  const CsrGraph g = generate_road(small_options());
  const std::size_t reachable =
      count_reachable(g, static_cast<VertexId>(g.num_vertices() / 2));
  EXPECT_GT(reachable, g.num_vertices() * 9 / 10);
}

TEST(Road, FullDensityGridHasExpectedEdgeCount) {
  RoadOptions o;
  o.rows = 8;
  o.cols = 8;
  o.street_density = 1.0;
  o.ramps_per_1000_vertices = 0.0;
  const auto edges = generate_road_edges(o);
  // 2 * (rows*(cols-1) + (rows-1)*cols) directed edges.
  EXPECT_EQ(edges.size(), 2u * (8 * 7 + 7 * 8));
}

TEST(Road, WeightsArePositive) {
  for (const Edge& e : generate_road_edges(small_options()))
    EXPECT_GE(e.weight, 1u);
}

TEST(Road, RejectsBadOptions) {
  RoadOptions o;
  o.rows = 0;
  EXPECT_THROW(generate_road_edges(o), std::invalid_argument);
  o = RoadOptions{};
  o.street_density = 1.5;
  EXPECT_THROW(generate_road_edges(o), std::invalid_argument);
  o = RoadOptions{};
  o.weight_spread = 0.5;
  EXPECT_THROW(generate_road_edges(o), std::invalid_argument);
}

}  // namespace
}  // namespace sssp::graph
