#include "graph/datasets.hpp"

#include <gtest/gtest.h>

#include "graph/degree_stats.hpp"

namespace sssp::graph {
namespace {

TEST(Datasets, NamesAndParsing) {
  EXPECT_EQ(dataset_name(Dataset::kCal), "Cal");
  EXPECT_EQ(dataset_name(Dataset::kWiki), "Wiki");
  EXPECT_EQ(parse_dataset("cal"), Dataset::kCal);
  EXPECT_EQ(parse_dataset("WIKI"), Dataset::kWiki);
  EXPECT_EQ(parse_dataset("road"), Dataset::kCal);
  EXPECT_THROW(parse_dataset("facebook"), std::invalid_argument);
}

TEST(Datasets, RejectsBadScale) {
  EXPECT_THROW(make_dataset(Dataset::kCal, {.scale = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(make_dataset(Dataset::kCal, {.scale = 2.0}),
               std::invalid_argument);
}

TEST(Datasets, CalLikeShapeAtSmallScale) {
  const CsrGraph g = make_dataset(Dataset::kCal, {.scale = 1.0 / 128.0});
  g.validate();
  const DegreeStats s = compute_degree_stats(g);
  // Cal: ~2.45 directed edges per node, low max degree, not scale-free.
  EXPECT_NEAR(s.mean_degree, 2.45, 0.8) << to_string(s);
  EXPECT_FALSE(looks_scale_free(s));
  // Node count within 20% of the scaled target.
  const double target = 1890815.0 / 128.0;
  EXPECT_NEAR(static_cast<double>(s.num_vertices), target, target * 0.2);
}

TEST(Datasets, WikiLikeShapeAtSmallScale) {
  const CsrGraph g = make_dataset(Dataset::kWiki, {.scale = 1.0 / 128.0});
  g.validate();
  const DegreeStats s = compute_degree_stats(g);
  EXPECT_TRUE(looks_scale_free(s)) << to_string(s);
  // Edge count within 15% of the scaled target (self-loops removed).
  const double target = 19735890.0 / 128.0;
  EXPECT_NEAR(static_cast<double>(s.num_edges), target, target * 0.15);
  // Weights follow the paper's U[1, 99].
  for (std::size_t i = 0; i < std::min<std::size_t>(g.num_edges(), 5000); ++i) {
    EXPECT_GE(g.weights()[i], 1u);
    EXPECT_LE(g.weights()[i], 99u);
  }
}

TEST(Datasets, DefaultSourceIsConnectedHub) {
  const CsrGraph wiki = make_dataset(Dataset::kWiki, {.scale = 1.0 / 256.0});
  const VertexId src = default_source(Dataset::kWiki, wiki);
  EXPECT_GT(wiki.out_degree(src), 0u);
  // Wiki source is the max-degree vertex.
  EXPECT_EQ(src, max_degree_vertex(wiki));

  const CsrGraph cal = make_dataset(Dataset::kCal, {.scale = 1.0 / 256.0});
  const VertexId cal_src = default_source(Dataset::kCal, cal);
  EXPECT_LT(cal_src, cal.num_vertices());
}

TEST(Datasets, PaperTable1RowsMatchPaper) {
  const auto cal = paper_table1_row(Dataset::kCal);
  EXPECT_EQ(cal.nodes, 1890815u);
  EXPECT_EQ(cal.edges, 4630444u);
  const auto wiki = paper_table1_row(Dataset::kWiki);
  EXPECT_EQ(wiki.nodes, 1634989u);
  EXPECT_EQ(wiki.edges, 19735890u);
  EXPECT_EQ(wiki.max_degree, 4970u);
}

TEST(Datasets, DeterministicPerSeed) {
  const CsrGraph a = make_dataset(Dataset::kWiki, {.scale = 1.0 / 512.0, .seed = 3});
  const CsrGraph b = make_dataset(Dataset::kWiki, {.scale = 1.0 / 512.0, .seed = 3});
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.targets()[i], b.targets()[i]);
    EXPECT_EQ(a.weights()[i], b.weights()[i]);
  }
}

}  // namespace
}  // namespace sssp::graph
