#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace sssp::graph {
namespace {

CsrGraph make_triangle() {
  // 0->1 (w=5), 0->2 (w=3), 1->2 (w=1)
  return CsrGraph({0, 2, 3, 3}, {1, 2, 2}, {5, 3, 1});
}

TEST(CsrGraph, EmptyGraph) {
  CsrGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.mean_edge_weight(), 0.0);
}

TEST(CsrGraph, BasicAccessors) {
  const CsrGraph g = make_triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_degree(2), 0u);

  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  const auto w0 = g.weights_of(0);
  EXPECT_EQ(w0[0], 5u);
  EXPECT_EQ(w0[1], 3u);
}

TEST(CsrGraph, EdgeIndexAccessors) {
  const CsrGraph g = make_triangle();
  EXPECT_EQ(g.edge_begin(1), 2u);
  EXPECT_EQ(g.edge_end(1), 3u);
  EXPECT_EQ(g.edge_target(2), 2u);
  EXPECT_EQ(g.edge_weight(2), 1u);
}

TEST(CsrGraph, MeanEdgeWeight) {
  const CsrGraph g = make_triangle();
  EXPECT_DOUBLE_EQ(g.mean_edge_weight(), 3.0);
}

TEST(CsrGraph, ValidatePasses) {
  EXPECT_NO_THROW(make_triangle().validate());
}

TEST(CsrGraph, ConstructorRejectsMismatchedSizes) {
  EXPECT_THROW(CsrGraph({0, 1}, {0, 0}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(CsrGraph({0, 2}, {0, 0}, {1}), std::invalid_argument);
  EXPECT_THROW(CsrGraph({}, {}, {}), std::invalid_argument);
}

TEST(CsrGraph, ValidateCatchesOutOfRangeTarget) {
  const CsrGraph g({0, 1}, {5}, {1});  // vertex 5 doesn't exist
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(CsrGraph, MemoryBytesNonzero) {
  EXPECT_GT(make_triangle().memory_bytes(), 0u);
}

// View mode: the accessor path over external storage (how the mmap
// cache exposes a file-backed graph without copying it).
TEST(CsrGraphView, AliasesExternalStorageWithoutOwningIt) {
  const std::vector<EdgeIndex> offsets = {0, 2, 3, 3};
  const std::vector<VertexId> targets = {1, 2, 2};
  const std::vector<Weight> weights = {5, 3, 1};
  const CsrGraph v = CsrGraph::view(offsets, targets, weights);
  EXPECT_FALSE(v.owns_storage());
  EXPECT_EQ(v.memory_bytes(), 0u);  // the bytes belong to the vectors
  EXPECT_EQ(v.num_vertices(), 3u);
  EXPECT_EQ(v.num_edges(), 3u);
  EXPECT_EQ(v.targets().data(), targets.data());  // zero-copy
  EXPECT_EQ(v.neighbors(0).size(), 2u);
  EXPECT_EQ(v.edge_weight(2), 1u);
}

TEST(CsrGraphView, RejectsMalformedShape) {
  const std::vector<EdgeIndex> offsets = {0, 2};  // declares 2 edges
  const std::vector<VertexId> targets = {1};
  const std::vector<Weight> weights = {5};
  EXPECT_THROW(CsrGraph::view(offsets, targets, weights),
               std::invalid_argument);
}

TEST(CsrGraphView, CopyOfAViewAliasesTheSameStorage) {
  // Documented contract: copies of a view stay views — the external
  // storage must outlive all of them (true by construction for the
  // mmap cache, whose MmapGraph owns both mapping and view).
  const std::vector<EdgeIndex> offsets = {0, 1, 1};
  const std::vector<VertexId> targets = {1};
  const std::vector<Weight> weights = {7};
  const CsrGraph v = CsrGraph::view(offsets, targets, weights);
  const CsrGraph copy = v;
  EXPECT_FALSE(copy.owns_storage());
  EXPECT_EQ(copy.targets().data(), targets.data());
  EXPECT_EQ(copy.memory_bytes(), 0u);
}

TEST(CsrGraphView, MovedFromOwnerRebindsSpansToTheNewHome) {
  CsrGraph owner = make_triangle();
  const VertexId first_target = owner.edge_target(0);
  const CsrGraph moved = std::move(owner);
  // The access spans must alias the vectors at their *new* address —
  // a stale span into the moved-from object would be a use-after-move.
  EXPECT_TRUE(moved.owns_storage());
  EXPECT_EQ(moved.num_edges(), 3u);
  EXPECT_EQ(moved.edge_target(0), first_target);
  EXPECT_NO_THROW(moved.validate());
}

}  // namespace
}  // namespace sssp::graph
