#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sssp::graph {
namespace {

CsrGraph make_triangle() {
  // 0->1 (w=5), 0->2 (w=3), 1->2 (w=1)
  return CsrGraph({0, 2, 3, 3}, {1, 2, 2}, {5, 3, 1});
}

TEST(CsrGraph, EmptyGraph) {
  CsrGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.mean_edge_weight(), 0.0);
}

TEST(CsrGraph, BasicAccessors) {
  const CsrGraph g = make_triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_degree(2), 0u);

  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  const auto w0 = g.weights_of(0);
  EXPECT_EQ(w0[0], 5u);
  EXPECT_EQ(w0[1], 3u);
}

TEST(CsrGraph, EdgeIndexAccessors) {
  const CsrGraph g = make_triangle();
  EXPECT_EQ(g.edge_begin(1), 2u);
  EXPECT_EQ(g.edge_end(1), 3u);
  EXPECT_EQ(g.edge_target(2), 2u);
  EXPECT_EQ(g.edge_weight(2), 1u);
}

TEST(CsrGraph, MeanEdgeWeight) {
  const CsrGraph g = make_triangle();
  EXPECT_DOUBLE_EQ(g.mean_edge_weight(), 3.0);
}

TEST(CsrGraph, ValidatePasses) {
  EXPECT_NO_THROW(make_triangle().validate());
}

TEST(CsrGraph, ConstructorRejectsMismatchedSizes) {
  EXPECT_THROW(CsrGraph({0, 1}, {0, 0}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(CsrGraph({0, 2}, {0, 0}, {1}), std::invalid_argument);
  EXPECT_THROW(CsrGraph({}, {}, {}), std::invalid_argument);
}

TEST(CsrGraph, ValidateCatchesOutOfRangeTarget) {
  const CsrGraph g({0, 1}, {5}, {1});  // vertex 5 doesn't exist
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(CsrGraph, MemoryBytesNonzero) {
  EXPECT_GT(make_triangle().memory_bytes(), 0u);
}

}  // namespace
}  // namespace sssp::graph
