#include "graph/rmat.hpp"

#include <gtest/gtest.h>

#include "graph/degree_stats.hpp"

namespace sssp::graph {
namespace {

RmatOptions small_options() {
  RmatOptions o;
  o.scale = 12;           // 4096 vertices
  o.num_edges = 1 << 16;  // 65536 edges
  o.seed = 123;
  return o;
}

TEST(Rmat, EdgeCountMatchesRequest) {
  const auto edges = generate_rmat_edges(small_options());
  EXPECT_EQ(edges.size(), std::size_t{1} << 16);
}

TEST(Rmat, VerticesWithinRange) {
  const auto o = small_options();
  for (const Edge& e : generate_rmat_edges(o)) {
    EXPECT_LT(e.src, 1u << o.scale);
    EXPECT_LT(e.dst, 1u << o.scale);
  }
}

TEST(Rmat, WeightsWithinRange) {
  auto o = small_options();
  o.min_weight = 10;
  o.max_weight = 20;
  for (const Edge& e : generate_rmat_edges(o)) {
    EXPECT_GE(e.weight, 10u);
    EXPECT_LE(e.weight, 20u);
  }
}

TEST(Rmat, DeterministicPerSeed) {
  const auto a = generate_rmat_edges(small_options());
  const auto b = generate_rmat_edges(small_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Rmat, DifferentSeedsDiffer) {
  auto o1 = small_options();
  auto o2 = small_options();
  o2.seed = o1.seed + 1;
  const auto a = generate_rmat_edges(o1);
  const auto b = generate_rmat_edges(o2);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i] == b[i])) ++differing;
  EXPECT_GT(differing, a.size() / 2);
}

TEST(Rmat, CsrGraphIsValidAndScaleFree) {
  const CsrGraph g = generate_rmat(small_options());
  g.validate();
  EXPECT_EQ(g.num_vertices(), std::size_t{1} << 12);
  const DegreeStats s = compute_degree_stats(g);
  // The Graph500 parameters must generate a pronounced degree tail.
  EXPECT_TRUE(looks_scale_free(s)) << to_string(s);
  EXPECT_GT(s.max_degree, 50u * static_cast<std::size_t>(s.mean_degree));
}

TEST(Rmat, RejectsBadScale) {
  auto o = small_options();
  o.scale = 0;
  EXPECT_THROW(generate_rmat_edges(o), std::invalid_argument);
  o.scale = 40;
  EXPECT_THROW(generate_rmat_edges(o), std::invalid_argument);
}

TEST(Rmat, RejectsBadProbabilities) {
  auto o = small_options();
  o.a = 0.9;  // sum > 1
  EXPECT_THROW(generate_rmat_edges(o), std::invalid_argument);
  o = small_options();
  o.d = -0.05;
  EXPECT_THROW(generate_rmat_edges(o), std::invalid_argument);
}

TEST(Rmat, RejectsBadWeights) {
  auto o = small_options();
  o.min_weight = 50;
  o.max_weight = 10;
  EXPECT_THROW(generate_rmat_edges(o), std::invalid_argument);
}

}  // namespace
}  // namespace sssp::graph
