// MmapGraph (graph/mmap_cache.hpp): the zero-copy mmap backend for the
// v2 binary cache must agree byte-for-byte with the heap loader, and
// must surface every corruption class the heap loader does — on the
// *mapped* bytes, before any query ever touches them.
#include "graph/mmap_cache.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/failpoint.hpp"
#include "graph/binary_io.hpp"
#include "graph/io_error.hpp"
#include "graph/rmat.hpp"

namespace sssp::graph {
namespace {

std::string temp_cache_path(const std::string& tag) {
  return ::testing::TempDir() + "mmap_cache_" + tag + ".bin";
}

CsrGraph make_generated_graph() {
  RmatOptions options;
  options.scale = 10;
  options.num_edges = 1 << 12;
  return generate_rmat(options);
}

// Reads the whole file, applies `mutate`, writes it back.
void rewrite_file(const std::string& path,
                  const std::function<void(std::string&)>& mutate) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  mutate(bytes);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

IoErrorClass open_error_class(const std::string& path) {
  try {
    (void)MmapGraph::open(path);
  } catch (const GraphIoError& e) {
    return e.error_class();
  }
  ADD_FAILURE() << "open unexpectedly succeeded for " << path;
  return IoErrorClass::kOpen;
}

TEST(MmapCache, ViewMatchesHeapLoaderExactly) {
  const std::string path = temp_cache_path("roundtrip");
  const CsrGraph g = make_generated_graph();
  save_binary_file(g, path);

  const CsrGraph heap = load_binary_file(path);
  const MmapGraph mapped = MmapGraph::open(path);
  ASSERT_TRUE(mapped.valid());
  const CsrGraph& view = mapped.graph();

  ASSERT_EQ(view.num_vertices(), heap.num_vertices());
  ASSERT_EQ(view.num_edges(), heap.num_edges());
  for (std::size_t v = 0; v <= heap.num_vertices(); ++v)
    ASSERT_EQ(view.offsets()[v], heap.offsets()[v]) << "offset " << v;
  for (std::size_t e = 0; e < heap.num_edges(); ++e) {
    ASSERT_EQ(view.targets()[e], heap.targets()[e]) << "target " << e;
    ASSERT_EQ(view.weights()[e], heap.weights()[e]) << "weight " << e;
  }
  // The view aliases the mapping: it owns no heap storage of its own.
  EXPECT_EQ(view.memory_bytes(), 0u);
  EXPECT_GT(mapped.mapped_bytes(), 0u);
  std::remove(path.c_str());
}

TEST(MmapCache, OddEdgeCountLeavesTrailersUnaligned) {
  // 3 edges: the u64 checksum trailer after the u32 targets array is
  // only 4-aligned — open() must still verify it (via memcpy, not a
  // misaligned load, which UBSan would flag).
  const std::string path = temp_cache_path("odd");
  const CsrGraph g({0, 2, 3, 3}, {1, 2, 2}, {5, 3, 1});
  save_binary_file(g, path);
  const MmapGraph mapped = MmapGraph::open(path);
  EXPECT_EQ(mapped.graph().num_edges(), 3u);
  EXPECT_EQ(mapped.graph().weights()[2], 1u);
  std::remove(path.c_str());
}

TEST(MmapCache, EmptyGraphMaps) {
  const std::string path = temp_cache_path("empty");
  save_binary_file(CsrGraph(std::vector<EdgeIndex>{0}, {}, {}), path);
  const MmapGraph mapped = MmapGraph::open(path);
  EXPECT_EQ(mapped.graph().num_vertices(), 0u);
  EXPECT_EQ(mapped.graph().num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(MmapCache, FlippedPayloadByteReportsChecksum) {
  const std::string path = temp_cache_path("corrupt");
  save_binary_file(make_generated_graph(), path);
  // Flip one byte well inside the offsets array (past the 48-byte
  // header + its checksum).
  rewrite_file(path, [](std::string& bytes) { bytes[100] ^= 0x40; });
  EXPECT_EQ(open_error_class(path), IoErrorClass::kChecksum);
  std::remove(path.c_str());
}

TEST(MmapCache, FlippedHeaderByteReportsChecksum) {
  const std::string path = temp_cache_path("hdr");
  save_binary_file(make_generated_graph(), path);
  rewrite_file(path, [](std::string& bytes) { bytes[12] ^= 0x01; });
  EXPECT_EQ(open_error_class(path), IoErrorClass::kChecksum);
  std::remove(path.c_str());
}

TEST(MmapCache, TruncatedFileReportsTruncated) {
  const std::string path = temp_cache_path("trunc");
  save_binary_file(make_generated_graph(), path);
  rewrite_file(path, [](std::string& bytes) {
    bytes.resize(bytes.size() / 2);
  });
  EXPECT_EQ(open_error_class(path), IoErrorClass::kTruncated);
  std::remove(path.c_str());
}

TEST(MmapCache, BadMagicReportsVersionForHeapFallback) {
  // kVersion is the contract the loader ladder keys on: "not a v2
  // cache, fall back to the heap loader" (tools/tool_common.hpp).
  const std::string path = temp_cache_path("magic");
  save_binary_file(make_generated_graph(), path);
  rewrite_file(path, [](std::string& bytes) {
    bytes.replace(0, 8, "TSSSPGR1");  // v1 magic: valid format, no mmap
  });
  EXPECT_FALSE(is_mappable_cache(path));
  EXPECT_EQ(open_error_class(path), IoErrorClass::kVersion);
  std::remove(path.c_str());
}

TEST(MmapCache, MissingFileReportsOpen) {
  EXPECT_FALSE(is_mappable_cache("/nonexistent/cache.bin"));
  EXPECT_EQ(open_error_class("/nonexistent/cache.bin"), IoErrorClass::kOpen);
}

TEST(MmapCache, IsMappableRecognizesV2) {
  const std::string path = temp_cache_path("mappable");
  save_binary_file(CsrGraph({0, 1, 1}, {1}, {7}), path);
  EXPECT_TRUE(is_mappable_cache(path));
  std::remove(path.c_str());
}

// Flips one byte of the file in place (no truncation), so the change
// is visible through the MAP_SHARED mapping of an already-open
// MmapGraph — the "media rotted under a long-lived server" scenario.
void flip_in_place(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
}

TEST(MmapCache, ScrubPassesOnIntactMapping) {
  const std::string path = temp_cache_path("scrub_ok");
  save_binary_file(make_generated_graph(), path);
  const MmapGraph mapped = MmapGraph::open(path);
  const MmapGraph::ScrubResult result = mapped.scrub();
  EXPECT_TRUE(result.ok) << result.reason;
  std::remove(path.c_str());
}

TEST(MmapCache, ScrubDetectsRotUnderTheMapping) {
  const std::string path = temp_cache_path("scrub_rot");
  save_binary_file(make_generated_graph(), path);
  const MmapGraph mapped = MmapGraph::open(path);
  ASSERT_TRUE(mapped.scrub().ok);
  // Corrupt a payload byte *after* open verified the file: only a
  // periodic re-scrub can catch this.
  flip_in_place(path, 100);
  const MmapGraph::ScrubResult result = mapped.scrub();
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.reason.empty());
  std::remove(path.c_str());
}

TEST(MmapCache, ScrubSurvivesTruncationWithSigbus) {
  const std::string path = temp_cache_path("scrub_trunc");
  save_binary_file(make_generated_graph(), path);
  const MmapGraph mapped = MmapGraph::open(path);
  // Shrinking the file under a live mapping makes reads past the new
  // EOF fault with SIGBUS; the scoped guard must turn that into a
  // failed scrub, not a dead process.
  ASSERT_EQ(::truncate(path.c_str(), 4096), 0);
  const MmapGraph::ScrubResult result = mapped.scrub();
  EXPECT_FALSE(result.ok);
  std::remove(path.c_str());
}

TEST(MmapCache, InjectedSigbusAtOpenBecomesStructuredError) {
  const std::string path = temp_cache_path("sigbus_open");
  save_binary_file(make_generated_graph(), path);
  fault::FailpointRegistry::global().arm("io.mmap.sigbus");
  try {
    (void)MmapGraph::open(path);
    ADD_FAILURE() << "injected SIGBUS did not surface as an error";
  } catch (const GraphIoError& e) {
    EXPECT_EQ(e.error_class(), IoErrorClass::kTruncated);
  }
  fault::FailpointRegistry::global().disarm_all();
  // With the drill disarmed the same file opens fine — the handler
  // must have fully unwound.
  EXPECT_TRUE(MmapGraph::open(path).valid());
  std::remove(path.c_str());
}

TEST(MmapCache, ScrubberQuarantinesACorruptedCache) {
  const std::string path = temp_cache_path("scrubber");
  save_binary_file(make_generated_graph(), path);
  MmapGraph mapped = MmapGraph::open(path);

  std::mutex mu;
  std::condition_variable cv;
  std::string reason;
  bool fired = false;
  CacheScrubber scrubber(mapped, 5, [&](const std::string& why) {
    std::lock_guard<std::mutex> lock(mu);
    reason = why;
    fired = true;
    cv.notify_all();
  });

  // Let at least one clean pass land, then rot the file.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (scrubber.passes() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GT(scrubber.passes(), 0u);
  EXPECT_FALSE(scrubber.failed());

  flip_in_place(path, 100);
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return fired; }));
  }
  scrubber.stop();
  EXPECT_TRUE(scrubber.failed());
  EXPECT_FALSE(reason.empty());
  // The damaged file was moved aside so no restart can remap it.
  EXPECT_FALSE(std::ifstream(path).good());
  EXPECT_TRUE(std::ifstream(path + ".quarantined").good());
  std::remove((path + ".quarantined").c_str());
}

TEST(MmapCache, MoveTransfersTheMapping) {
  const std::string path = temp_cache_path("move");
  const CsrGraph g({0, 2, 3, 3}, {1, 2, 2}, {5, 3, 1});
  save_binary_file(g, path);
  MmapGraph a = MmapGraph::open(path);
  const MmapGraph b = std::move(a);
  EXPECT_FALSE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_EQ(b.graph().num_edges(), 3u);
  EXPECT_EQ(b.graph().targets()[0], 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sssp::graph
