// Parameterized property sweeps over the dataset generators: structural
// validity, shape invariants, and seed determinism across scales.
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "graph/binary_io.hpp"
#include "graph/datasets.hpp"
#include "graph/degree_stats.hpp"

namespace sssp::graph {
namespace {

using Case = std::tuple<Dataset, double /*scale*/, std::uint64_t /*seed*/>;

class GeneratorProperty : public ::testing::TestWithParam<Case> {
 protected:
  CsrGraph make() const {
    const auto [dataset, scale, seed] = GetParam();
    return make_dataset(dataset, {.scale = scale, .seed = seed});
  }
};

TEST_P(GeneratorProperty, StructurallyValid) {
  const CsrGraph g = make();
  EXPECT_NO_THROW(g.validate());
  EXPECT_GT(g.num_vertices(), 0u);
  EXPECT_GT(g.num_edges(), 0u);
}

TEST_P(GeneratorProperty, ShapeMatchesDatasetClass) {
  const auto [dataset, scale, seed] = GetParam();
  const DegreeStats stats = compute_degree_stats(make());
  if (dataset == Dataset::kCal) {
    EXPECT_FALSE(looks_scale_free(stats)) << to_string(stats);
    EXPECT_LT(stats.max_degree, 32u);
    EXPECT_NEAR(stats.mean_degree, 2.45, 1.0);
  } else {
    EXPECT_TRUE(looks_scale_free(stats)) << to_string(stats);
    EXPECT_GT(stats.max_degree, 50u);
  }
}

TEST_P(GeneratorProperty, WeightsInPaperRange) {
  const auto [dataset, scale, seed] = GetParam();
  const CsrGraph g = make();
  Weight lo = ~Weight{0}, hi = 0;
  for (const Weight w : g.weights()) {
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  EXPECT_GE(lo, 1u);
  if (dataset == Dataset::kWiki) {
    EXPECT_LE(hi, 99u);  // paper's U[1, 99]
  }
}

TEST_P(GeneratorProperty, BitDeterministicPerSeed) {
  const CsrGraph a = make();
  const CsrGraph b = make();
  std::stringstream sa, sb;
  save_binary(a, sa);
  save_binary(b, sb);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST_P(GeneratorProperty, DefaultSourceHasWork) {
  const auto [dataset, scale, seed] = GetParam();
  const CsrGraph g = make();
  const VertexId source = default_source(dataset, g);
  ASSERT_LT(source, g.num_vertices());
  // The chosen source must reach a meaningful share of the graph.
  EXPECT_GT(count_reachable(g, source), g.num_vertices() / 10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorProperty,
    ::testing::Combine(::testing::Values(Dataset::kCal, Dataset::kWiki),
                       ::testing::Values(1.0 / 512.0, 1.0 / 128.0),
                       ::testing::Values<std::uint64_t>(1, 42, 1234567)),
    [](const ::testing::TestParamInfo<Case>& tpi) {
      return dataset_name(std::get<0>(tpi.param)) + "_inv" +
             std::to_string(static_cast<int>(1.0 / std::get<1>(tpi.param))) +
             "_seed" + std::to_string(std::get<2>(tpi.param));
    });

}  // namespace
}  // namespace sssp::graph
