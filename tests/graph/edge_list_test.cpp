#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/io_error.hpp"

namespace sssp::graph {
namespace {

TEST(EdgeList, ParsesWeightedLines) {
  std::istringstream in(
      "# comment\n"
      "0 1 10\n"
      "1 2 20\n"
      "% another comment\n"
      "\n"
      "0 2 30\n");
  const CsrGraph g = load_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.weights_of(0)[0], 10u);
}

TEST(EdgeList, MissingWeightsDrawnFromRange) {
  std::istringstream in("0 1\n1 2\n2 3\n");
  EdgeListOptions options;
  options.default_min_weight = 5;
  options.default_max_weight = 9;
  const CsrGraph g = load_edge_list(in, options);
  for (const Weight w : g.weights()) {
    EXPECT_GE(w, 5u);
    EXPECT_LE(w, 9u);
  }
}

TEST(EdgeList, RandomWeightsDeterministicPerSeed) {
  const std::string text = "0 1\n1 2\n";
  EdgeListOptions options;
  options.weight_seed = 33;
  std::istringstream a(text), b(text);
  const CsrGraph ga = load_edge_list(a, options);
  const CsrGraph gb = load_edge_list(b, options);
  for (std::size_t i = 0; i < ga.num_edges(); ++i)
    EXPECT_EQ(ga.weights()[i], gb.weights()[i]);
}

TEST(EdgeList, UndirectedOptionAddsReverses) {
  std::istringstream in("0 1 3\n");
  EdgeListOptions options;
  options.make_undirected = true;
  const CsrGraph g = load_edge_list(in, options);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.neighbors(1)[0], 0u);
}

TEST(EdgeList, SelfLoopsRemoved) {
  std::istringstream in("0 0 1\n0 1 2\n");
  const CsrGraph g = load_edge_list(in);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(EdgeList, VertexCountFromMaxId) {
  std::istringstream in("0 7 1\n");
  const CsrGraph g = load_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 8u);
}

TEST(EdgeList, EmptyInputGivesEmptyGraph) {
  std::istringstream in("# nothing\n");
  const CsrGraph g = load_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(EdgeList, RejectsMalformedLine) {
  std::istringstream in("0\n");
  EXPECT_THROW(load_edge_list(in), std::runtime_error);
}

TEST(EdgeList, RejectsHugeVertexIds) {
  std::istringstream in("0 99999999999 1\n");
  EXPECT_THROW(load_edge_list(in), std::runtime_error);
}

TEST(EdgeList, RejectsBadWeightOptions) {
  std::istringstream in("0 1\n");
  EdgeListOptions options;
  options.default_min_weight = 10;
  options.default_max_weight = 1;
  EXPECT_THROW(load_edge_list(in, options), std::invalid_argument);
}

TEST(EdgeList, MissingFileThrows) {
  EXPECT_THROW(load_edge_list_file("/nonexistent/x.txt"), std::runtime_error);
}

TEST(EdgeList, OversizedWeightClamped) {
  std::istringstream in("0 1 99999999999\n");
  const CsrGraph g = load_edge_list(in);
  EXPECT_EQ(g.weights()[0], 0xFFFFFFFFu);
}

TEST(EdgeList, RejectsNegativeWeight) {
  // istream's unsigned extraction would wrap "-5" modulo 2^64 into a
  // huge positive weight; the loader must reject it as a parse error
  // instead of silently corrupting the graph.
  std::istringstream in("0 1 -5\n");
  try {
    load_edge_list(in);
    FAIL() << "negative weight accepted";
  } catch (const GraphIoError& e) {
    EXPECT_EQ(e.error_class(), IoErrorClass::kParse);
    EXPECT_NE(std::string(e.what()).find("negative weight"),
              std::string::npos);
  }
}

TEST(EdgeList, RejectsNonNumericWeight) {
  for (const char* line : {"0 1 nan\n", "0 1 3.5\n", "0 1 12abc\n"}) {
    std::istringstream in(line);
    try {
      load_edge_list(in);
      FAIL() << "malformed weight accepted: " << line;
    } catch (const GraphIoError& e) {
      EXPECT_EQ(e.error_class(), IoErrorClass::kParse) << line;
    }
  }
}

}  // namespace
}  // namespace sssp::graph
