#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace sssp::graph {
namespace {

TEST(BuildCsr, BasicDirected) {
  std::vector<Edge> edges{{0, 1, 10}, {1, 2, 20}, {0, 2, 30}};
  const CsrGraph g = build_csr(3, edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  g.validate();
}

TEST(BuildCsr, RejectsOutOfRangeVertices) {
  std::vector<Edge> edges{{0, 7, 1}};
  EXPECT_THROW(build_csr(3, std::move(edges)), std::invalid_argument);
}

TEST(BuildCsr, RemovesSelfLoopsByDefault) {
  std::vector<Edge> edges{{0, 0, 1}, {0, 1, 2}};
  const CsrGraph g = build_csr(2, std::move(edges));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
}

TEST(BuildCsr, KeepsSelfLoopsWhenAsked) {
  std::vector<Edge> edges{{0, 0, 1}};
  BuildOptions opts;
  opts.remove_self_loops = false;
  const CsrGraph g = build_csr(1, std::move(edges), opts);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(BuildCsr, MakeUndirectedAddsReverseEdges) {
  std::vector<Edge> edges{{0, 1, 5}};
  BuildOptions opts;
  opts.make_undirected = true;
  const CsrGraph g = build_csr(2, std::move(edges), opts);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.neighbors(1)[0], 0u);
  EXPECT_EQ(g.weights_of(1)[0], 5u);
}

TEST(BuildCsr, DedupeKeepsMinimumWeight) {
  std::vector<Edge> edges{{0, 1, 9}, {0, 1, 3}, {0, 1, 7}};
  BuildOptions opts;
  opts.dedupe_parallel_edges = true;
  const CsrGraph g = build_csr(2, std::move(edges), opts);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weights_of(0)[0], 3u);
}

TEST(BuildCsr, SortNeighborsProducesSortedAdjacency) {
  std::vector<Edge> edges{{0, 3, 1}, {0, 1, 1}, {0, 2, 1}};
  const CsrGraph g = build_csr(4, std::move(edges));
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(BuildCsr, UnsortedModePreservesAllEdges) {
  std::vector<Edge> edges{{0, 3, 1}, {0, 1, 2}, {1, 0, 3}};
  BuildOptions opts;
  opts.sort_neighbors = false;
  const CsrGraph g = build_csr(4, std::move(edges), opts);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 1u);
  g.validate();
}

TEST(BuildCsr, EmptyEdgeList) {
  const CsrGraph g = build_csr(5, {});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.out_degree(v), 0u);
}

TEST(Reverse, ReversesEveryEdge) {
  std::vector<Edge> edges{{0, 1, 10}, {1, 2, 20}, {0, 2, 30}};
  const CsrGraph g = build_csr(3, edges);
  const CsrGraph r = reverse(g);
  EXPECT_EQ(r.num_edges(), g.num_edges());
  EXPECT_EQ(r.out_degree(0), 0u);
  EXPECT_EQ(r.out_degree(1), 1u);
  EXPECT_EQ(r.out_degree(2), 2u);
  EXPECT_EQ(r.neighbors(1)[0], 0u);
  EXPECT_EQ(r.weights_of(1)[0], 10u);
}

TEST(Reverse, DoubleReverseIsIdentityOnSortedGraphs) {
  std::vector<Edge> edges{{0, 1, 1}, {1, 2, 2}, {2, 0, 3}, {0, 2, 4}};
  const CsrGraph g = build_csr(3, edges);
  const CsrGraph rr = reverse(reverse(g));
  ASSERT_EQ(rr.num_edges(), g.num_edges());
  for (VertexId v = 0; v < 3; ++v) {
    const auto a = g.neighbors(v);
    const auto b = rr.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

}  // namespace
}  // namespace sssp::graph
