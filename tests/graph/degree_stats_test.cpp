#include "graph/degree_stats.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace sssp::graph {
namespace {

TEST(DegreeStats, StarGraph) {
  // Vertex 0 points to 1..9.
  std::vector<Edge> edges;
  for (VertexId v = 1; v < 10; ++v) edges.push_back({0, v, 1});
  const CsrGraph g = build_csr(10, std::move(edges));
  const DegreeStats s = compute_degree_stats(g);
  EXPECT_EQ(s.num_vertices, 10u);
  EXPECT_EQ(s.num_edges, 9u);
  EXPECT_EQ(s.max_degree, 9u);
  EXPECT_EQ(s.min_degree, 0u);
  EXPECT_EQ(s.isolated_vertices, 9u);
  EXPECT_DOUBLE_EQ(s.mean_degree, 0.9);
  EXPECT_EQ(s.median_degree, 0u);
}

TEST(DegreeStats, EmptyGraph) {
  const DegreeStats s = compute_degree_stats(CsrGraph({0}, {}, {}));
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.max_degree, 0u);
}

TEST(DegreeStats, ToStringMentionsCounts) {
  std::vector<Edge> edges{{0, 1, 1}};
  const CsrGraph g = build_csr(2, std::move(edges));
  const std::string s = to_string(compute_degree_stats(g));
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("m=1"), std::string::npos);
}

TEST(LooksScaleFree, RejectsRegularGraph) {
  // Ring: every vertex has degree 1.
  std::vector<Edge> edges;
  const VertexId n = 1000;
  for (VertexId v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n, 1});
  const CsrGraph g = build_csr(n, std::move(edges));
  EXPECT_FALSE(looks_scale_free(compute_degree_stats(g)));
}

TEST(LooksScaleFree, AcceptsHubbyGraph) {
  // 10000 vertices, most degree ~1, 15 hubs (top 0.15%) of degree ~500 so
  // the p999 order statistic lands inside the hub set.
  std::vector<Edge> edges;
  const VertexId n = 10000;
  for (VertexId v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n, 1});
  for (VertexId hub = 0; hub < 15; ++hub)
    for (VertexId i = 0; i < 500; ++i)
      edges.push_back({hub, (hub * 97 + i * 13) % n, 1});
  const CsrGraph g = build_csr(n, std::move(edges));
  EXPECT_TRUE(looks_scale_free(compute_degree_stats(g)));
}

TEST(CountReachable, LineGraph) {
  std::vector<Edge> edges{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}};
  const CsrGraph g = build_csr(5, std::move(edges));  // vertex 4 disconnected
  EXPECT_EQ(count_reachable(g, 0), 4u);
  EXPECT_EQ(count_reachable(g, 2), 2u);
  EXPECT_EQ(count_reachable(g, 4), 1u);
  EXPECT_EQ(count_reachable(g, 99), 0u);  // out of range
}

TEST(MaxDegreeVertex, FindsHub) {
  std::vector<Edge> edges{{3, 0, 1}, {3, 1, 1}, {3, 2, 1}, {0, 1, 1}};
  const CsrGraph g = build_csr(4, std::move(edges));
  EXPECT_EQ(max_degree_vertex(g), 3u);
}

}  // namespace
}  // namespace sssp::graph
