#include "graph/dimacs.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/io_error.hpp"

namespace sssp::graph {
namespace {

TEST(Dimacs, ParsesWellFormedInput) {
  std::istringstream in(
      "c sample graph\n"
      "p sp 3 3\n"
      "a 1 2 10\n"
      "a 2 3 20\n"
      "a 1 3 99\n");
  const CsrGraph g = load_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.weights_of(1)[0], 20u);
}

TEST(Dimacs, SkipsBlankLinesAndComments) {
  std::istringstream in(
      "c one\n"
      "\n"
      "p sp 2 1\n"
      "c two\n"
      "a 1 2 7\n");
  const CsrGraph g = load_dimacs(in);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Dimacs, RejectsArcBeforeProblemLine) {
  std::istringstream in("a 1 2 3\n");
  EXPECT_THROW(load_dimacs(in), std::runtime_error);
}

TEST(Dimacs, RejectsMissingProblemLine) {
  std::istringstream in("c only comments\n");
  EXPECT_THROW(load_dimacs(in), std::runtime_error);
}

TEST(Dimacs, RejectsWrongProblemKind) {
  std::istringstream in("p max 3 3\n");
  EXPECT_THROW(load_dimacs(in), std::runtime_error);
}

TEST(Dimacs, RejectsOutOfRangeVertex) {
  std::istringstream in("p sp 2 1\na 1 5 1\n");
  EXPECT_THROW(load_dimacs(in), std::runtime_error);
}

TEST(Dimacs, RejectsZeroVertexId) {
  std::istringstream in("p sp 2 1\na 0 1 1\n");
  EXPECT_THROW(load_dimacs(in), std::runtime_error);
}

TEST(Dimacs, RejectsUnknownRecordType) {
  std::istringstream in("p sp 1 0\nz 1 1 1\n");
  EXPECT_THROW(load_dimacs(in), std::runtime_error);
}

TEST(Dimacs, RoundTripThroughSaveAndLoad) {
  std::istringstream in(
      "p sp 4 4\n"
      "a 1 2 5\n"
      "a 2 3 6\n"
      "a 3 4 7\n"
      "a 4 1 8\n");
  const CsrGraph g = load_dimacs(in);
  std::ostringstream out;
  save_dimacs(g, out, "round trip");
  std::istringstream in2(out.str());
  const CsrGraph g2 = load_dimacs(in2);
  ASSERT_EQ(g2.num_vertices(), g.num_vertices());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = g2.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]);
      EXPECT_EQ(g.weights_of(v)[i], g2.weights_of(v)[i]);
    }
  }
}

TEST(Dimacs, MissingFileThrows) {
  EXPECT_THROW(load_dimacs_file("/nonexistent/file.gr"), std::runtime_error);
}

TEST(Dimacs, RejectsNegativeWeight) {
  // Unsigned extraction would wrap "-7" into a huge positive weight;
  // the loader must surface it as a structured parse error.
  std::istringstream in("p sp 2 1\na 1 2 -7\n");
  try {
    load_dimacs(in);
    FAIL() << "negative weight accepted";
  } catch (const GraphIoError& e) {
    EXPECT_EQ(e.error_class(), IoErrorClass::kParse);
    EXPECT_NE(std::string(e.what()).find("negative weight"),
              std::string::npos);
  }
}

TEST(Dimacs, RejectsMalformedWeight) {
  for (const char* arc : {"a 1 2 nan\n", "a 1 2 1.5\n", "a 1 2 9x\n"}) {
    std::istringstream in(std::string("p sp 2 1\n") + arc);
    try {
      load_dimacs(in);
      FAIL() << "malformed weight accepted: " << arc;
    } catch (const GraphIoError& e) {
      EXPECT_EQ(e.error_class(), IoErrorClass::kParse) << arc;
    }
  }
}

TEST(Dimacs, RejectsWeightAbove32Bits) {
  // Weights are 32-bit on disk and in CSR; silently truncating a
  // 33-bit weight would change shortest paths, so the loader refuses
  // with the kLimit class instead.
  std::istringstream in("p sp 2 1\na 1 2 4294967296\n");
  try {
    load_dimacs(in);
    FAIL() << "33-bit weight accepted";
  } catch (const GraphIoError& e) {
    EXPECT_EQ(e.error_class(), IoErrorClass::kLimit);
  }
}

}  // namespace
}  // namespace sssp::graph
