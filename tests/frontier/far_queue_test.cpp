#include "frontier/far_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sssp::frontier {
namespace {

using graph::Distance;
using graph::kInfiniteDistance;
using graph::VertexId;

TEST(FarQueue, StartsEmpty) {
  FarQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(FarQueue, DrainMovesEntriesBelowThreshold) {
  FarQueue q;
  std::vector<Distance> dist{5, 10, 20};
  q.push(0, 5);
  q.push(1, 10);
  q.push(2, 20);
  std::vector<VertexId> frontier;
  const std::uint64_t scanned = q.drain_below(15, dist, frontier);
  EXPECT_EQ(scanned, 3u);
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier[0], 0u);
  EXPECT_EQ(frontier[1], 1u);
  EXPECT_EQ(q.size(), 1u);  // vertex 2 retained
}

TEST(FarQueue, DropsStaleEntries) {
  FarQueue q;
  std::vector<Distance> dist{3};  // improved since insertion
  q.push(0, 7);
  std::vector<VertexId> frontier;
  q.drain_below(100, dist, frontier);
  EXPECT_TRUE(frontier.empty());
  EXPECT_TRUE(q.empty());
}

TEST(FarQueue, RetainedEntriesSurviveMultipleDrains) {
  FarQueue q;
  std::vector<Distance> dist{50};
  q.push(0, 50);
  std::vector<VertexId> frontier;
  q.drain_below(10, dist, frontier);
  EXPECT_TRUE(frontier.empty());
  EXPECT_EQ(q.size(), 1u);
  q.drain_below(60, dist, frontier);
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0], 0u);
  EXPECT_TRUE(q.empty());
}

TEST(FarQueue, MinLiveDistanceSkipsStale) {
  FarQueue q;
  std::vector<Distance> dist{3, 10, 20};
  q.push(0, 7);   // stale (dist is 3)
  q.push(1, 10);  // live
  q.push(2, 20);  // live
  EXPECT_EQ(q.min_live_distance(dist), 10u);
}

TEST(FarQueue, MinLiveDistanceAllStaleIsInfinite) {
  FarQueue q;
  std::vector<Distance> dist{1};
  q.push(0, 9);
  EXPECT_EQ(q.min_live_distance(dist), kInfiniteDistance);
}

TEST(FarQueue, MinLiveDistanceEmptyIsInfinite) {
  FarQueue q;
  std::vector<Distance> dist;
  EXPECT_EQ(q.min_live_distance(dist), kInfiniteDistance);
}

TEST(FarQueue, DuplicateCopiesOnlyNewestIsLive) {
  FarQueue q;
  std::vector<Distance> dist{8};
  q.push(0, 12);  // older copy, now stale
  q.push(0, 8);   // current copy
  std::vector<VertexId> frontier;
  q.drain_below(100, dist, frontier);
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier[0], 0u);
}

TEST(FarQueue, ClearEmptiesQueue) {
  FarQueue q;
  q.push(0, 1);
  q.clear();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace sssp::frontier
