// Parallel-advance correctness: the thread-pool execution must produce
// exact final distances at any thread count and any parallel threshold.
// Per-iteration statistics are NOT asserted equal to serial — when the
// frontier contains intra-frontier edges, same-iteration improvement
// visibility is schedule-dependent (see NearFarEngine::Options) — so
// the assertions here are the schedule-independent ones: distances,
// X2-as-set-property, and frontier dedup.
#include <gtest/gtest.h>

#include <algorithm>

#include "frontier/engine.hpp"
#include "graph/types.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::frontier {
namespace {

using graph::kInfiniteDistance;

// Runs a Bellman-Ford-style sweep (bisect keeps everything) and returns
// per-iteration (x1, x2, x3) plus the distances.
struct SweepTrace {
  std::vector<std::array<std::uint64_t, 3>> iterations;
  std::vector<graph::Distance> distances;
};

SweepTrace run_sweep(const graph::CsrGraph& g, graph::VertexId source,
                     const NearFarEngine::Options& options) {
  NearFarEngine engine(g, source, options);
  SweepTrace trace;
  while (!engine.frontier_empty()) {
    const auto advance = engine.advance_and_filter();
    trace.iterations.push_back({advance.x1, advance.x2, advance.x3});
    engine.bisect(kInfiniteDistance);
  }
  trace.distances = engine.distances();
  return trace;
}

class ParallelEngineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelEngineTest, ParallelSweepDistancesExact) {
  const std::uint64_t seed = GetParam();
  const auto g = algo::testing::random_graph(3000, 6.0, 99, seed);

  const SweepTrace serial = run_sweep(g, 0, {.parallel = false});
  // Threshold 1: every advance takes the parallel path.
  const SweepTrace parallel =
      run_sweep(g, 0, {.parallel = true, .parallel_threshold = 1});

  EXPECT_EQ(parallel.distances, serial.distances);
  // The first iteration starts from an identical frontier ({source}), so
  // its X1/X2 are schedule-independent set properties.
  ASSERT_FALSE(parallel.iterations.empty());
  EXPECT_EQ(parallel.iterations.front()[0], serial.iterations.front()[0]);
  EXPECT_EQ(parallel.iterations.front()[1], serial.iterations.front()[1]);
  // Filter dedup bounds hold in every iteration.
  for (const auto& it : parallel.iterations) {
    EXPECT_LE(it[2], it[1]);  // x3 <= x2
  }
}

TEST_P(ParallelEngineTest, MixedModeDistancesExact) {
  const std::uint64_t seed = GetParam();
  const auto g = algo::testing::random_graph(3000, 6.0, 99, seed ^ 0xF00);
  const SweepTrace serial = run_sweep(g, 5, {.parallel = false});
  // Mid threshold: small frontiers run serial, large ones parallel.
  const SweepTrace mixed =
      run_sweep(g, 5, {.parallel = true, .parallel_threshold = 512});
  EXPECT_EQ(mixed.distances, serial.distances);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEngineTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ParallelEngine, ParentsInvalidOnlyAfterParallelAdvance) {
  const auto g = algo::testing::random_graph(6000, 5.0, 99, 8);
  NearFarEngine serial_engine(g, 0, {.parallel = false});
  EXPECT_TRUE(serial_engine.parents_valid());

  NearFarEngine parallel_engine(g, 0,
                                {.parallel = true, .parallel_threshold = 1});
  EXPECT_TRUE(parallel_engine.parents_valid());  // nothing ran yet
  parallel_engine.advance_and_filter();
  EXPECT_FALSE(parallel_engine.parents_valid());
}

TEST(ParallelEngine, UpdatedFrontierIsDuplicateFree) {
  const auto g = algo::testing::random_graph(4000, 8.0, 9, 3);
  NearFarEngine engine(g, 0, {.parallel = true, .parallel_threshold = 1});
  while (!engine.frontier_empty()) {
    engine.advance_and_filter();
    engine.bisect(kInfiniteDistance);
    std::vector<graph::VertexId> frontier(engine.frontier().begin(),
                                          engine.frontier().end());
    std::sort(frontier.begin(), frontier.end());
    EXPECT_EQ(std::adjacent_find(frontier.begin(), frontier.end()),
              frontier.end());
  }
}

}  // namespace
}  // namespace sssp::frontier
