// Parallel-advance determinism and correctness: the pipeline relaxes
// from an iteration-start snapshot and merges with count → exclusive-
// prefix-sum → write over canonical edge ranks, so the updated
// frontier's ORDERING, the per-iteration X1/X2/X3 statistics, the
// parent tree, and the distances are all bit-identical at any thread
// count, any chunking mode, and any schedule — not merely "distances
// exact". These tests pin that contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "fault/failpoint.hpp"
#include "frontier/engine.hpp"
#include "graph/types.hpp"
#include "tests/sssp/test_graphs.hpp"
#include "util/thread_pool.hpp"

namespace sssp::frontier {
namespace {

using graph::kInfiniteDistance;

// Runs a Bellman-Ford-style sweep (bisect keeps everything) and records
// everything the determinism contract covers.
struct SweepTrace {
  std::vector<std::array<std::uint64_t, 4>> stats;  // x1, x2, x3, improving
  std::vector<std::vector<graph::VertexId>> frontiers;  // ordering included
  std::vector<graph::Distance> distances;
  std::vector<graph::VertexId> parents;

  bool operator==(const SweepTrace&) const = default;
};

SweepTrace run_sweep(const graph::CsrGraph& g, graph::VertexId source,
                     const NearFarEngine::Options& options) {
  NearFarEngine engine(g, source, options);
  SweepTrace trace;
  while (!engine.frontier_empty()) {
    const auto advance = engine.advance_and_filter();
    trace.stats.push_back(
        {advance.x1, advance.x2, advance.x3, advance.improving_relaxations});
    engine.bisect(kInfiniteDistance);
    trace.frontiers.emplace_back(engine.frontier().begin(),
                                 engine.frontier().end());
  }
  trace.distances = engine.distances();
  trace.parents = engine.parents();
  return trace;
}

// Parent tree exactness: every reached vertex's parent edge achieves
// its distance, the source is its own parent, unreached have none.
void expect_parents_exact(const graph::CsrGraph& g, graph::VertexId source,
                          const SweepTrace& trace) {
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (trace.distances[v] == kInfiniteDistance) {
      EXPECT_EQ(trace.parents[v], graph::kInvalidVertex) << "vertex " << v;
      continue;
    }
    if (v == source) {
      EXPECT_EQ(trace.parents[v], source);
      continue;
    }
    const graph::VertexId p = trace.parents[v];
    ASSERT_NE(p, graph::kInvalidVertex) << "vertex " << v;
    const auto neighbors = g.neighbors(p);
    const auto weights = g.weights_of(p);
    bool achieves = false;
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (neighbors[i] == v &&
          trace.distances[p] + weights[i] == trace.distances[v]) {
        achieves = true;
        break;
      }
    }
    EXPECT_TRUE(achieves) << "parent edge " << p << "->" << v
                          << " does not achieve dist[" << v << "]";
  }
}

class ParallelEngineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelEngineTest, ParallelSweepBitIdenticalAcrossThreadCounts) {
  const std::uint64_t seed = GetParam();
  const auto g = algo::testing::random_graph(3000, 6.0, 99, seed);

  util::ThreadPool::set_global_threads(1);
  const SweepTrace reference =
      run_sweep(g, 0, {.parallel = true, .parallel_threshold = 1});
  for (const std::size_t threads : {2, 4, 8}) {
    util::ThreadPool::set_global_threads(threads);
    const SweepTrace trace =
        run_sweep(g, 0, {.parallel = true, .parallel_threshold = 1});
    EXPECT_EQ(trace, reference) << "threads=" << threads;
  }
  util::ThreadPool::set_global_threads(0);
}

TEST_P(ParallelEngineTest, PartitionModeDoesNotChangeResults) {
  const std::uint64_t seed = GetParam();
  const auto g = algo::testing::random_graph(3000, 6.0, 99, seed ^ 0xABC);
  util::ThreadPool::set_global_threads(4);
  NearFarEngine::Options options{.parallel = true, .parallel_threshold = 1};
  options.partition = NearFarEngine::Options::Partition::kEdgeBalanced;
  const SweepTrace edge_balanced = run_sweep(g, 0, options);
  options.partition = NearFarEngine::Options::Partition::kVertexBalanced;
  const SweepTrace vertex_balanced = run_sweep(g, 0, options);
  // Chunk grain changes results... never. Only wall-clock.
  options.min_chunk_edges = 1;
  options.partition = NearFarEngine::Options::Partition::kEdgeBalanced;
  const SweepTrace fine_grained = run_sweep(g, 0, options);
  EXPECT_EQ(vertex_balanced, edge_balanced);
  EXPECT_EQ(fine_grained, edge_balanced);
  util::ThreadPool::set_global_threads(0);
}

TEST_P(ParallelEngineTest, ParallelSweepDistancesExact) {
  const std::uint64_t seed = GetParam();
  const auto g = algo::testing::random_graph(3000, 6.0, 99, seed);

  const SweepTrace serial = run_sweep(g, 0, {.parallel = false});
  // Threshold 1: every advance takes the parallel path.
  const SweepTrace parallel =
      run_sweep(g, 0, {.parallel = true, .parallel_threshold = 1});

  EXPECT_EQ(parallel.distances, serial.distances);
  expect_parents_exact(g, 0, serial);
  expect_parents_exact(g, 0, parallel);
  // The first iteration starts from an identical frontier ({source}), so
  // its X1/X2 are schedule-independent set properties.
  ASSERT_FALSE(parallel.stats.empty());
  EXPECT_EQ(parallel.stats.front()[0], serial.stats.front()[0]);
  EXPECT_EQ(parallel.stats.front()[1], serial.stats.front()[1]);
  // Filter dedup bounds hold in every iteration.
  for (const auto& it : parallel.stats) {
    EXPECT_LE(it[2], it[1]);  // x3 <= x2
  }
}

TEST_P(ParallelEngineTest, MixedModeDistancesExact) {
  const std::uint64_t seed = GetParam();
  const auto g = algo::testing::random_graph(3000, 6.0, 99, seed ^ 0xF00);
  const SweepTrace serial = run_sweep(g, 5, {.parallel = false});
  // Mid threshold: small frontiers run serial, large ones parallel.
  const SweepTrace mixed =
      run_sweep(g, 5, {.parallel = true, .parallel_threshold = 512});
  EXPECT_EQ(mixed.distances, serial.distances);
  expect_parents_exact(g, 5, mixed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEngineTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ParallelEngine, ParentsStayValidInEveryMode) {
  const auto g = algo::testing::random_graph(6000, 5.0, 99, 8);
  NearFarEngine serial_engine(g, 0, {.parallel = false});
  EXPECT_TRUE(serial_engine.parents_valid());

  NearFarEngine parallel_engine(g, 0,
                                {.parallel = true, .parallel_threshold = 1});
  EXPECT_TRUE(parallel_engine.parents_valid());
  parallel_engine.advance_and_filter();
  // The deterministic pipeline maintains parents during the advance —
  // the historical "re-derive after parallel runs" caveat is gone.
  EXPECT_TRUE(parallel_engine.parents_valid());
}

TEST(ParallelEngine, UpdatedFrontierIsDuplicateFree) {
  const auto g = algo::testing::random_graph(4000, 8.0, 9, 3);
  NearFarEngine engine(g, 0, {.parallel = true, .parallel_threshold = 1});
  while (!engine.frontier_empty()) {
    engine.advance_and_filter();
    engine.bisect(kInfiniteDistance);
    std::vector<graph::VertexId> frontier(engine.frontier().begin(),
                                          engine.frontier().end());
    std::sort(frontier.begin(), frontier.end());
    EXPECT_EQ(std::adjacent_find(frontier.begin(), frontier.end()),
              frontier.end());
  }
}

TEST(ParallelEngine, UpdatedFrontierOrderIsWinningEdgeRankOrder) {
  // The merge contract: the updated frontier is ordered by each
  // vertex's winning edge rank (frontier position × adjacency order).
  // Recompute the expected order from first principles for one step.
  const auto g = algo::testing::random_graph(2000, 7.0, 50, 11);
  util::ThreadPool::set_global_threads(4);

  NearFarEngine engine(g, 0, {.parallel = true, .parallel_threshold = 1});
  // A couple of warm-up iterations so the frontier is interesting.
  for (int i = 0; i < 2 && !engine.frontier_empty(); ++i) {
    engine.advance_and_filter();
    engine.bisect(kInfiniteDistance);
  }
  if (engine.frontier_empty()) GTEST_SKIP() << "graph too small";

  const std::vector<graph::VertexId> frontier(engine.frontier().begin(),
                                              engine.frontier().end());
  const std::vector<graph::Distance> dist_before = engine.distances();
  engine.advance_and_filter();
  const auto& dist_after = engine.distances();

  // Expected order: walk frontier × adjacency in rank order; a vertex is
  // emitted at the first edge achieving its final (improved) distance.
  std::vector<graph::VertexId> expected;
  std::vector<char> emitted(g.num_vertices(), 0);
  for (const graph::VertexId u : frontier) {
    const auto neighbors = g.neighbors(u);
    const auto weights = g.weights_of(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const graph::VertexId v = neighbors[i];
      if (emitted[v] || dist_after[v] >= dist_before[v]) continue;
      if (dist_before[u] + weights[i] == dist_after[v]) {
        emitted[v] = 1;
        expected.push_back(v);
      }
    }
  }
  engine.bisect(kInfiniteDistance);
  const std::vector<graph::VertexId> actual(engine.frontier().begin(),
                                            engine.frontier().end());
  EXPECT_EQ(actual, expected);
  util::ThreadPool::set_global_threads(0);
}

// Memory-budget degrade (docs/ROBUSTNESS.md, "Resource budgets &
// exhaustion"): when the parallel scratch preflight is refused, the
// engine falls back to the serial advance *before* mutating anything —
// the sweep completes with exact distances and a valid parent tree
// (the serial advance breaks parent ties differently, so parents are
// exact but not byte-identical to the parallel run's).
TEST(ParallelEngine, BudgetRefusalDegradesToSerialWithIdenticalResults) {
  const auto g = algo::testing::random_graph(3000, 6.0, 99, 5);
  util::ThreadPool::set_global_threads(4);
  const NearFarEngine::Options options{.parallel = true,
                                       .parallel_threshold = 1};
  const SweepTrace reference = run_sweep(g, 0, options);

  fault::FailpointRegistry::global().arm("res.engine.alloc");
  const SweepTrace degraded = run_sweep(g, 0, options);
  fault::FailpointRegistry::global().disarm_all();

  EXPECT_EQ(degraded.distances, reference.distances);
  expect_parents_exact(g, 0, degraded);
  util::ThreadPool::set_global_threads(0);
}

}  // namespace
}  // namespace sssp::frontier
