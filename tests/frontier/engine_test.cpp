#include "frontier/engine.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace sssp::frontier {
namespace {

using graph::CsrGraph;
using graph::Edge;
using graph::kInfiniteDistance;
using graph::VertexId;

// 0 -5-> 1 -1-> 2, 0 -3-> 2, 2 -2-> 3
CsrGraph diamond() {
  return graph::build_csr(
      4, {{0, 1, 5}, {1, 2, 1}, {0, 2, 3}, {2, 3, 2}});
}

TEST(NearFarEngine, InitialState) {
  const CsrGraph g = diamond();
  NearFarEngine engine(g, 0);
  EXPECT_EQ(engine.frontier_size(), 1u);
  EXPECT_EQ(engine.frontier()[0], 0u);
  EXPECT_EQ(engine.distance(0), 0u);
  EXPECT_EQ(engine.distance(3), kInfiniteDistance);
  EXPECT_EQ(engine.source(), 0u);
}

TEST(NearFarEngine, RejectsOutOfRangeSource) {
  const CsrGraph g = diamond();
  EXPECT_THROW(NearFarEngine(g, 7), std::invalid_argument);
}

TEST(NearFarEngine, AdvanceRelaxesAllFrontierEdges) {
  const CsrGraph g = diamond();
  NearFarEngine engine(g, 0);
  const auto result = engine.advance_and_filter();
  EXPECT_EQ(result.x1, 1u);
  EXPECT_EQ(result.x2, 2u);  // edges 0->1, 0->2
  EXPECT_EQ(result.improving_relaxations, 2u);
  EXPECT_EQ(result.x3, 2u);
  EXPECT_EQ(engine.distance(1), 5u);
  EXPECT_EQ(engine.distance(2), 3u);
  EXPECT_TRUE(engine.frontier_empty());  // consumed; awaiting bisect
}

TEST(NearFarEngine, FilterDeduplicatesUpdatedFrontier) {
  // Two paths into vertex 2 from one frontier: both improve, one entry.
  const CsrGraph g = graph::build_csr(3, {{0, 1, 1}, {0, 2, 10}, {1, 2, 1}});
  NearFarEngine engine(g, 0);
  engine.advance_and_filter();                // frontier {1, 2}
  engine.bisect(kInfiniteDistance);
  const auto result = engine.advance_and_filter();  // 1->2 improves again
  EXPECT_EQ(result.x3, 1u);
  EXPECT_EQ(engine.distance(2), 2u);
}

TEST(NearFarEngine, BisectSplitsByThreshold) {
  const CsrGraph g = diamond();
  NearFarEngine engine(g, 0);
  engine.advance_and_filter();  // dist: 1->5, 2->3
  const std::uint64_t x4 = engine.bisect(4);
  EXPECT_EQ(x4, 1u);  // only vertex 2 (dist 3) is near
  ASSERT_EQ(engine.spill().size(), 1u);
  EXPECT_EQ(engine.spill()[0], 1u);  // vertex 1 (dist 5) spilled
  EXPECT_EQ(engine.frontier()[0], 2u);
}

TEST(NearFarEngine, BisectInfiniteThresholdKeepsAll) {
  const CsrGraph g = diamond();
  NearFarEngine engine(g, 0);
  engine.advance_and_filter();
  EXPECT_EQ(engine.bisect(kInfiniteDistance), 2u);
  EXPECT_TRUE(engine.spill().empty());
}

TEST(NearFarEngine, DemoteMovesHighDistanceVertices) {
  const CsrGraph g = diamond();
  NearFarEngine engine(g, 0);
  engine.advance_and_filter();
  engine.bisect(kInfiniteDistance);  // frontier {1, 2}
  const std::uint64_t scanned = engine.demote(4);
  EXPECT_EQ(scanned, 2u);
  EXPECT_EQ(engine.frontier_size(), 1u);  // vertex 2 kept (dist 3)
  ASSERT_EQ(engine.spill().size(), 1u);
  EXPECT_EQ(engine.spill()[0], 1u);
}

TEST(NearFarEngine, InjectAppendsToFrontier) {
  const CsrGraph g = diamond();
  NearFarEngine engine(g, 0);
  engine.advance_and_filter();
  engine.bisect(4);  // frontier {2}
  const std::vector<VertexId> extra{1};
  engine.inject(extra);
  EXPECT_EQ(engine.frontier_size(), 2u);
}

TEST(NearFarEngine, ClearSpillResetsBuffer) {
  const CsrGraph g = diamond();
  NearFarEngine engine(g, 0);
  engine.advance_and_filter();
  engine.bisect(4);
  EXPECT_FALSE(engine.spill().empty());
  engine.clear_spill();
  EXPECT_TRUE(engine.spill().empty());
}

TEST(NearFarEngine, DemoteExcessSpillsSurplusByCount) {
  const CsrGraph g = diamond();
  NearFarEngine engine(g, 0);
  engine.advance_and_filter();
  engine.bisect(kInfiniteDistance);  // frontier {1, 2}
  EXPECT_EQ(engine.demote_excess(1), 1u);
  EXPECT_EQ(engine.frontier_size(), 1u);
  EXPECT_EQ(engine.spill().size(), 1u);
  // Max distance refreshed over the kept prefix.
  EXPECT_EQ(engine.frontier_max_distance(),
            engine.distance(engine.frontier()[0]));
  // No-op when already at or below the keep count.
  engine.clear_spill();
  EXPECT_EQ(engine.demote_excess(5), 0u);
  EXPECT_TRUE(engine.spill().empty());
}

TEST(NearFarEngine, RunToCompletionMatchesHandComputedDistances) {
  const CsrGraph g = diamond();
  NearFarEngine engine(g, 0);
  while (!engine.frontier_empty()) {
    engine.advance_and_filter();
    engine.bisect(kInfiniteDistance);  // Bellman-Ford-style: keep all
  }
  EXPECT_EQ(engine.distance(0), 0u);
  EXPECT_EQ(engine.distance(1), 5u);
  EXPECT_EQ(engine.distance(2), 3u);
  EXPECT_EQ(engine.distance(3), 5u);
  // Work-optimal here: each reachable non-source vertex improved once,
  // except vertex 2's... path 0->2 (3) is already best; 4 improvements:
  // 1:5, 2:3, 3:5(via 2); plus none redundant => 3 total? the engine
  // counts every successful relaxation:
  EXPECT_GE(engine.total_improving_relaxations(), 3u);
}

TEST(NearFarEngine, ReAdvancingImprovedVertexPropagates) {
  // Re-relaxation across a lowered threshold: 0 -10-> 1 -1-> 3,
  // 0 -1-> 2 -1-> 1. Vertex 1 improves from 10 to 2, and 3 from 11 to 3.
  const CsrGraph g = graph::build_csr(
      4, {{0, 1, 10}, {1, 3, 1}, {0, 2, 1}, {2, 1, 1}});
  NearFarEngine engine(g, 0);
  while (!engine.frontier_empty()) {
    engine.advance_and_filter();
    engine.bisect(kInfiniteDistance);
  }
  EXPECT_EQ(engine.distance(1), 2u);
  EXPECT_EQ(engine.distance(3), 3u);
}

}  // namespace
}  // namespace sssp::frontier
