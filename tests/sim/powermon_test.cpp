#include "sim/powermon.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace sssp::sim {
namespace {

TEST(PowerTrace, EmptyTrace) {
  PowerTrace trace;
  EXPECT_DOUBLE_EQ(trace.duration_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(trace.energy_joules(), 0.0);
  EXPECT_DOUBLE_EQ(trace.average_power_w(), 0.0);
  EXPECT_DOUBLE_EQ(trace.peak_power_w(), 0.0);
}

TEST(PowerTrace, EnergyIsExactIntegral) {
  PowerTrace trace;
  trace.add_segment(2.0, 5.0);   // 10 J
  trace.add_segment(0.5, 10.0);  // 5 J
  EXPECT_DOUBLE_EQ(trace.duration_seconds(), 2.5);
  EXPECT_DOUBLE_EQ(trace.energy_joules(), 15.0);
  EXPECT_DOUBLE_EQ(trace.average_power_w(), 6.0);
  EXPECT_DOUBLE_EQ(trace.peak_power_w(), 10.0);
}

TEST(PowerTrace, ZeroDurationSegmentsDropped) {
  PowerTrace trace;
  trace.add_segment(0.0, 100.0);
  EXPECT_EQ(trace.num_segments(), 0u);
  EXPECT_DOUBLE_EQ(trace.peak_power_w(), 0.0);
}

TEST(PowerTrace, NegativeDurationThrows) {
  PowerTrace trace;
  EXPECT_THROW(trace.add_segment(-1.0, 5.0), std::invalid_argument);
}

TEST(PowerTrace, AdjacentEqualPowerSegmentsMerge) {
  PowerTrace trace;
  trace.add_segment(1.0, 5.0);
  trace.add_segment(2.0, 5.0);
  trace.add_segment(1.0, 7.0);
  EXPECT_EQ(trace.num_segments(), 2u);
  EXPECT_DOUBLE_EQ(trace.duration_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(trace.energy_joules(), 22.0);
}

TEST(PowerTrace, PowerAtWalksSegments) {
  PowerTrace trace;
  trace.add_segment(1.0, 5.0);
  trace.add_segment(1.0, 8.0);
  EXPECT_DOUBLE_EQ(trace.power_at(0.5), 5.0);
  EXPECT_DOUBLE_EQ(trace.power_at(1.5), 8.0);
  EXPECT_DOUBLE_EQ(trace.power_at(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(trace.power_at(2.5), 0.0);
}

TEST(PowerTrace, SamplerMatchesSegments) {
  PowerTrace trace;
  trace.add_segment(0.010, 4.0);
  trace.add_segment(0.010, 6.0);
  const auto samples = trace.sample(1000.0);  // PowerMon's 1 kHz
  ASSERT_EQ(samples.size(), 20u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(samples[i], 4.0) << i;
  for (std::size_t i = 10; i < 20; ++i) EXPECT_DOUBLE_EQ(samples[i], 6.0) << i;
}

TEST(PowerTrace, SampledMeanApproximatesExactMean) {
  PowerTrace trace;
  for (int i = 0; i < 100; ++i)
    trace.add_segment(0.001 * (1 + i % 3), 3.0 + (i % 7));
  const auto samples = trace.sample(1000.0);
  double mean = 0.0;
  for (double s : samples) mean += s;
  mean /= static_cast<double>(samples.size());
  EXPECT_NEAR(mean, trace.average_power_w(), 0.25);
}

TEST(PowerTrace, SampleRejectsBadRate) {
  PowerTrace trace;
  trace.add_segment(1.0, 1.0);
  EXPECT_THROW(trace.sample(0.0), std::invalid_argument);
  EXPECT_THROW(trace.sample(-5.0), std::invalid_argument);
}

TEST(PowerTrace, RejectsNonFiniteSegments) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  PowerTrace trace;
  trace.add_segment(1.0, 5.0);
  EXPECT_THROW(trace.add_segment(nan, 5.0), std::invalid_argument);
  EXPECT_THROW(trace.add_segment(1.0, nan), std::invalid_argument);
  EXPECT_THROW(trace.add_segment(inf, 5.0), std::invalid_argument);
  EXPECT_THROW(trace.add_segment(1.0, -inf), std::invalid_argument);
  // The trace is untouched by the rejected segments.
  EXPECT_EQ(trace.num_segments(), 1u);
  EXPECT_DOUBLE_EQ(trace.duration_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(trace.energy_joules(), 5.0);
}

TEST(PowerTrace, EnergySeriesBridgeIsExact) {
  // The shared prof::EnergySeries bridge must reproduce the trace's
  // own integral exactly: each step segment becomes a bracket pair, so
  // the trapezoid rule degenerates to watts x dt per segment.
  PowerTrace trace;
  trace.add_segment(1.0, 5.0);
  trace.add_segment(0.5, 20.0);
  trace.add_segment(2.0, 3.0);

  const prof::EnergySeries series = trace.to_energy_series();
  EXPECT_DOUBLE_EQ(series.energy_joules(), trace.energy_joules());
  EXPECT_DOUBLE_EQ(series.duration_seconds(), trace.duration_seconds());
  EXPECT_DOUBLE_EQ(series.peak_power_w(), trace.peak_power_w());
  EXPECT_DOUBLE_EQ(series.average_power_w(), trace.average_power_w());

  // A non-zero start offset shifts timestamps without changing energy.
  const prof::EnergySeries offset = trace.to_energy_series(100.0);
  EXPECT_DOUBLE_EQ(offset.energy_joules(), trace.energy_joules());
  EXPECT_DOUBLE_EQ(offset.samples().front().seconds, 100.0);
}

}  // namespace
}  // namespace sssp::sim
