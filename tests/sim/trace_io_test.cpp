#include "sim/trace_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

namespace sssp::sim {
namespace {

PowerTrace two_segment_trace() {
  PowerTrace trace;
  trace.add_segment(0.010, 4.0);
  trace.add_segment(0.005, 6.0);
  return trace;
}

TEST(TraceIo, PowerSamplesCsvHasHeaderAndRows) {
  std::ostringstream out;
  write_power_samples_csv(two_segment_trace(), 1000.0, out);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("time_s,watts\n", 0), 0u);
  // 15 ms at 1 kHz -> 15 samples + header = 16 lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 16);
  EXPECT_NE(text.find(",4\n"), std::string::npos);
  EXPECT_NE(text.find(",6\n"), std::string::npos);
}

TEST(TraceIo, PowerSegmentsCsvRoundTripsStructure) {
  std::ostringstream out;
  write_power_segments_csv(two_segment_trace(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("start_s,duration_s,watts"), std::string::npos);
  EXPECT_NE(text.find("0,0.01,4"), std::string::npos);
  EXPECT_NE(text.find("0.01,0.005,6"), std::string::npos);
}

TEST(TraceIo, RunReportCsv) {
  RunReport report;
  report.iterations.push_back({0.001, 5.0, 0.8, 0.3, {852, 924}});
  report.iterations.push_back({0.002, 4.0, 0.1, 0.9, {324, 600}});
  std::ostringstream out;
  write_run_report_csv(report, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("iteration,seconds"), std::string::npos);
  EXPECT_NE(text.find("0,0.001,5,0.8,0.3,852,924"), std::string::npos);
  EXPECT_NE(text.find("1,0.002,4,0.1,0.9,324,600"), std::string::npos);
}

TEST(TraceIo, FileVariantsWriteAndFail) {
  const std::string path = ::testing::TempDir() + "trace.csv";
  write_power_samples_csv_file(two_segment_trace(), 1000.0, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
  EXPECT_THROW(
      write_power_samples_csv_file(two_segment_trace(), 1e3, "/nope/x.csv"),
      std::runtime_error);
  RunReport report;
  EXPECT_THROW(write_run_report_csv_file(report, "/nope/x.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace sssp::sim
