#include "sim/energy_metrics.hpp"

#include <gtest/gtest.h>

#include "sim/powermon.hpp"

namespace sssp::sim {
namespace {

RunReport make_report(double seconds, double watts) {
  RunReport report;
  report.total_seconds = seconds;
  report.average_power_w = watts;
  report.energy_joules = seconds * watts;
  report.peak_power_w = watts;
  return report;
}

TEST(EnergyMetrics, ComputesProducts) {
  const EnergyMetrics m = compute_energy_metrics(make_report(2.0, 5.0));
  EXPECT_DOUBLE_EQ(m.energy_joules, 10.0);
  EXPECT_DOUBLE_EQ(m.edp, 20.0);
  EXPECT_DOUBLE_EQ(m.ed2p, 40.0);
  EXPECT_DOUBLE_EQ(m.average_power_w, 5.0);
}

TEST(RaceToHalt, FastRunWithLowIdleWins) {
  // 1 s at 10 W vs stretched to 4 s: idle 1 W.
  const RaceToHalt r = race_to_halt(make_report(1.0, 10.0), 1.0, 4.0);
  // Run: 10 J + 3 s * 1 W = 13 J.
  EXPECT_DOUBLE_EQ(r.run_energy_j, 13.0);
  // Stretched: 4 s * 1 W + (9 W / 64) * 4 s = 4 + 0.5625 = 4.5625 J.
  EXPECT_NEAR(r.stretched_energy_j, 4.5625, 1e-9);
  // Cubic DVFS scaling makes stretching win here — race-to-halt only
  // wins when idle power dominates.
  EXPECT_FALSE(r.race_wins);
}

TEST(RaceToHalt, HighIdlePowerFavorsRacing) {
  // Same run, but the board idles at 9 W (no deep sleep states — the
  // TK1-era reality the paper cites).
  const RaceToHalt r = race_to_halt(make_report(1.0, 10.0), 9.0, 4.0);
  // Run: 10 J + 3 s * 9 W = 37 J.
  EXPECT_DOUBLE_EQ(r.run_energy_j, 37.0);
  // Stretched: 4 * 9 + (1 / 64) * 4 = 36.0625 J -> still close; racing
  // loses narrowly only because slack dynamic power is tiny.
  EXPECT_NEAR(r.stretched_energy_j, 36.0625, 1e-9);
  EXPECT_FALSE(r.race_wins);
  // With zero deadline slack the run trivially "wins" (equal work, no
  // idle tail, stretched == run at s == 1).
  const RaceToHalt tight = race_to_halt(make_report(1.0, 10.0), 9.0, 1.0);
  EXPECT_DOUBLE_EQ(tight.run_energy_j, 10.0);
  EXPECT_DOUBLE_EQ(tight.stretched_energy_j, 10.0);
  EXPECT_FALSE(tight.race_wins);  // strict inequality
}

TEST(RaceToHalt, RejectsBadArguments) {
  EXPECT_THROW(race_to_halt(make_report(1.0, 5.0), -1.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW(race_to_halt(make_report(2.0, 5.0), 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(race_to_halt(make_report(0.0, 5.0), 1.0, 1.0),
               std::invalid_argument);
}

TEST(RaceToHalt, IdleAbovePowerClampsDynamicToZero) {
  const RaceToHalt r = race_to_halt(make_report(1.0, 5.0), 8.0, 2.0);
  // Dynamic share clamped: stretched = 2 s * 8 W = 16 J.
  EXPECT_DOUBLE_EQ(r.stretched_energy_j, 16.0);
  EXPECT_DOUBLE_EQ(r.run_energy_j, 5.0 + 8.0);
  EXPECT_TRUE(r.race_wins);
}

TEST(EnergyMetrics, FromRawJoulesAndSeconds) {
  const EnergyMetrics m = compute_energy_metrics(10.0, 2.0);
  EXPECT_DOUBLE_EQ(m.energy_joules, 10.0);
  EXPECT_DOUBLE_EQ(m.seconds, 2.0);
  EXPECT_DOUBLE_EQ(m.average_power_w, 5.0);
  EXPECT_DOUBLE_EQ(m.edp, 20.0);
  EXPECT_DOUBLE_EQ(m.ed2p, 40.0);
}

TEST(EnergyMetrics, SimTraceAndHostSeriesAgree) {
  // The same physical run described two ways — a simulator PowerTrace
  // and the host profiler's EnergySeries — must produce identical
  // metrics through the shared integration path.
  PowerTrace trace;
  trace.add_segment(2.0, 5.0);
  trace.add_segment(1.0, 8.0);
  const EnergyMetrics from_series =
      compute_energy_metrics(trace.to_energy_series());
  const EnergyMetrics from_raw =
      compute_energy_metrics(trace.energy_joules(), trace.duration_seconds());
  EXPECT_DOUBLE_EQ(from_series.energy_joules, from_raw.energy_joules);
  EXPECT_DOUBLE_EQ(from_series.seconds, from_raw.seconds);
  EXPECT_DOUBLE_EQ(from_series.edp, from_raw.edp);
  EXPECT_DOUBLE_EQ(from_series.ed2p, from_raw.ed2p);
  EXPECT_DOUBLE_EQ(from_series.energy_joules, 18.0);
  EXPECT_DOUBLE_EQ(from_series.edp, 54.0);
}

}  // namespace
}  // namespace sssp::sim
