#include "sim/device_config.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sssp::sim {
namespace {

TEST(DeviceConfig, ParsesMinimalConfig) {
  std::istringstream in(
      "name Test Board\n"
      "core_freq_menu_mhz 100,200,300\n"
      "mem_freq_menu_mhz 400,800\n");
  const DeviceSpec spec = load_device_config(in);
  EXPECT_EQ(spec.name, "Test Board");
  EXPECT_EQ(spec.max_core_mhz(), 300u);
  EXPECT_EQ(spec.max_mem_mhz(), 800u);
  // Unspecified keys keep defaults.
  EXPECT_GT(spec.cuda_cores, 0u);
}

TEST(DeviceConfig, ParsesFullConfigWithComments) {
  std::istringstream in(
      "# hypothetical board\n"
      "name Nano\n"
      "cuda_cores 128\n"
      "items_per_core_cycle 0.00390625\n"
      "kernel_launch_seconds 7e-6\n"
      "peak_mem_bandwidth_bytes 25.6e9\n"
      "bytes_per_edge 20   # lighter edges\n"
      "bytes_per_vertex 8\n"
      "core_freq_menu_mhz 76,153,230\n"
      "mem_freq_menu_mhz 408,1600\n"
      "static_power_w 2.0\n"
      "gpu_dynamic_power_w 4.5\n"
      "mem_dynamic_power_w 1.8\n"
      "idle_core_fraction 0.10\n"
      "core_v_min 0.80\n"
      "core_v_max 1.05\n");
  const DeviceSpec spec = load_device_config(in);
  EXPECT_EQ(spec.cuda_cores, 128u);
  EXPECT_DOUBLE_EQ(spec.bytes_per_edge, 20.0);
  EXPECT_DOUBLE_EQ(spec.static_power_w, 2.0);
  EXPECT_DOUBLE_EQ(spec.idle_core_fraction, 0.10);
  EXPECT_NO_THROW(spec.validate());
}

TEST(DeviceConfig, RoundTripsThroughSave) {
  const DeviceSpec original = DeviceSpec::jetson_tx1();
  std::stringstream buffer;
  save_device_config(original, buffer);
  const DeviceSpec loaded = load_device_config(buffer);
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.cuda_cores, original.cuda_cores);
  EXPECT_EQ(loaded.core_freq_menu_mhz, original.core_freq_menu_mhz);
  EXPECT_EQ(loaded.mem_freq_menu_mhz, original.mem_freq_menu_mhz);
  EXPECT_DOUBLE_EQ(loaded.gpu_dynamic_power_w, original.gpu_dynamic_power_w);
  EXPECT_DOUBLE_EQ(loaded.core_v_max, original.core_v_max);
}

TEST(DeviceConfig, RejectsUnknownKey) {
  std::istringstream in(
      "core_freq_menu_mhz 100\nmem_freq_menu_mhz 100\nwattage 5\n");
  EXPECT_THROW(load_device_config(in), std::runtime_error);
}

TEST(DeviceConfig, RejectsMissingMenus) {
  std::istringstream in("name X\n");
  EXPECT_THROW(load_device_config(in), std::runtime_error);
}

TEST(DeviceConfig, RejectsBadNumber) {
  std::istringstream in(
      "cuda_cores twelve\ncore_freq_menu_mhz 100\nmem_freq_menu_mhz 100\n");
  EXPECT_THROW(load_device_config(in), std::runtime_error);
}

TEST(DeviceConfig, RejectsBadMenuEntry) {
  std::istringstream in(
      "core_freq_menu_mhz 100,abc\nmem_freq_menu_mhz 100\n");
  EXPECT_THROW(load_device_config(in), std::runtime_error);
}

TEST(DeviceConfig, RejectsUnsortedMenuViaValidate) {
  std::istringstream in(
      "core_freq_menu_mhz 300,100\nmem_freq_menu_mhz 100\n");
  EXPECT_THROW(load_device_config(in), std::invalid_argument);
}

TEST(DeviceConfig, MissingValueIsError) {
  std::istringstream in("name\n");
  EXPECT_THROW(load_device_config(in), std::runtime_error);
}

TEST(DeviceConfig, MissingFileThrows) {
  EXPECT_THROW(load_device_config_file("/nonexistent/device.cfg"),
               std::runtime_error);
}

}  // namespace
}  // namespace sssp::sim
