#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

#include "sim/device.hpp"

namespace sssp::sim {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  DeviceSpec device_ = DeviceSpec::jetson_tk1();
  FrequencyPair max_ = device_.max_frequencies();
};

TEST_F(CostModelTest, ZeroItemsCostNothing) {
  const StageTiming t = time_stage(device_, max_, 0, 0.0);
  EXPECT_DOUBLE_EQ(t.seconds, 0.0);
  EXPECT_DOUBLE_EQ(t.core_utilization, 0.0);
}

TEST_F(CostModelTest, TinyKernelDominatedByLaunchOverhead) {
  const StageTiming t = time_stage(device_, max_, 1, 24.0);
  EXPECT_GT(t.seconds, device_.kernel_launch_seconds);
  EXPECT_LT(t.seconds, device_.kernel_launch_seconds * 1.5);
  // One item on a 192-core device: utilization near zero.
  EXPECT_LT(t.core_utilization, 0.01);
}

TEST_F(CostModelTest, LargeKernelAmortizesLaunch) {
  const std::uint64_t items = 10'000'000;
  const StageTiming t = time_stage(device_, max_, items, 0.0);
  EXPECT_GT(t.seconds, 100 * device_.kernel_launch_seconds);
  EXPECT_GT(t.core_utilization, 0.9);
}

TEST_F(CostModelTest, TimeScalesInverselyWithCoreFrequency) {
  const std::uint64_t items = 1'000'000;
  const StageTiming fast = time_stage(device_, {852, 924}, items, 0.0);
  const StageTiming slow = time_stage(device_, {324, 924}, items, 0.0);
  // Remove the identical launch overhead, then ratio ~ 852/324.
  const double busy_fast = fast.seconds - device_.kernel_launch_seconds;
  const double busy_slow = slow.seconds - device_.kernel_launch_seconds;
  EXPECT_NEAR(busy_slow / busy_fast, 852.0 / 324.0, 0.01);
}

TEST_F(CostModelTest, MemoryBoundKernelScalesWithMemFrequency) {
  // Huge bytes, tiny compute -> memory bound.
  const double bytes = 1e9;
  const StageTiming fast = time_stage(device_, {852, 924}, 10, bytes);
  const StageTiming slow = time_stage(device_, {852, 396}, 10, bytes);
  const double busy_fast = fast.seconds - device_.kernel_launch_seconds;
  const double busy_slow = slow.seconds - device_.kernel_launch_seconds;
  EXPECT_NEAR(busy_slow / busy_fast, 924.0 / 396.0, 0.01);
  EXPECT_GT(fast.mem_utilization, 0.9);
}

TEST_F(CostModelTest, RooflineTakesMaxOfComputeAndMemory) {
  // Compare a compute-only and memory-only kernel to the combined one.
  const std::uint64_t items = 1'000'000;
  const double bytes = 1e9;
  const StageTiming compute_only = time_stage(device_, max_, items, 0.0);
  const StageTiming mem_only = time_stage(device_, max_, 1, bytes);
  const StageTiming both = time_stage(device_, max_, items, bytes);
  EXPECT_GE(both.seconds + 1e-12,
            std::max(compute_only.seconds, mem_only.seconds));
  EXPECT_LE(both.seconds,
            compute_only.seconds + mem_only.seconds);
}

TEST_F(CostModelTest, UtilizationBoundedByOne) {
  for (std::uint64_t items : {1ull, 100ull, 100000ull, 100000000ull}) {
    const StageTiming t = time_stage(device_, max_, items, 1e8);
    EXPECT_GE(t.core_utilization, 0.0);
    EXPECT_LE(t.core_utilization, 1.0);
    EXPECT_GE(t.mem_utilization, 0.0);
    EXPECT_LE(t.mem_utilization, 1.0);
  }
}

TEST_F(CostModelTest, PartialWaveHasProportionalUtilization) {
  // 96 items on 192 cores: half the cores busy during the busy period.
  const StageTiming t = time_stage(device_, max_, 96, 0.0);
  // Launch overhead dilutes utilization; busy-period utilization is 0.5.
  const double busy = t.seconds - device_.kernel_launch_seconds;
  const double busy_util = t.core_utilization * t.seconds / busy;
  EXPECT_NEAR(busy_util, 0.5, 0.01);
}

TEST(IterationTiming, TimeWeightedAverages) {
  IterationTiming it;
  it.accumulate({1.0, 1.0, 0.0});
  it.accumulate({3.0, 0.0, 1.0});
  it.finalize();
  EXPECT_DOUBLE_EQ(it.seconds, 4.0);
  EXPECT_DOUBLE_EQ(it.core_utilization, 0.25);
  EXPECT_DOUBLE_EQ(it.mem_utilization, 0.75);
}

TEST(IterationTiming, EmptyIterationFinalizesToZero) {
  IterationTiming it;
  it.finalize();
  EXPECT_DOUBLE_EQ(it.seconds, 0.0);
  EXPECT_DOUBLE_EQ(it.core_utilization, 0.0);
}

}  // namespace
}  // namespace sssp::sim
