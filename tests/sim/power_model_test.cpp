#include "sim/power_model.hpp"

#include <gtest/gtest.h>

namespace sssp::sim {
namespace {

class PowerModelTest : public ::testing::Test {
 protected:
  DeviceSpec device_ = DeviceSpec::jetson_tk1();
};

TEST_F(PowerModelTest, VoltageInterpolatesAcrossMenu) {
  EXPECT_DOUBLE_EQ(core_voltage(device_, device_.min_core_mhz()),
                   device_.core_v_min);
  EXPECT_DOUBLE_EQ(core_voltage(device_, device_.max_core_mhz()),
                   device_.core_v_max);
  const double mid = core_voltage(device_, 462);  // midpoint of 72..852
  EXPECT_GT(mid, device_.core_v_min);
  EXPECT_LT(mid, device_.core_v_max);
}

TEST_F(PowerModelTest, VoltageClampsOutsideMenu) {
  EXPECT_DOUBLE_EQ(core_voltage(device_, 1), device_.core_v_min);
  EXPECT_DOUBLE_EQ(core_voltage(device_, 5000), device_.core_v_max);
}

TEST_F(PowerModelTest, FullUtilizationAtMaxFreqHitsEnvelope) {
  const double p =
      board_power(device_, device_.max_frequencies(), 1.0, 1.0);
  EXPECT_NEAR(p, device_.static_power_w + device_.gpu_dynamic_power_w +
                     device_.mem_dynamic_power_w,
              1e-9);
}

TEST_F(PowerModelTest, IdleIncludesStaticAndLeakage) {
  const double p = idle_power(device_, device_.max_frequencies());
  EXPECT_GT(p, device_.static_power_w);
  EXPECT_LT(p, device_.static_power_w + device_.gpu_dynamic_power_w);
}

TEST_F(PowerModelTest, PowerMonotoneInUtilization) {
  const FrequencyPair f = device_.max_frequencies();
  double prev = -1.0;
  for (double u = 0.0; u <= 1.0; u += 0.1) {
    const double p = board_power(device_, f, u, u);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST_F(PowerModelTest, PowerMonotoneInCoreFrequency) {
  double prev = -1.0;
  for (const std::uint32_t mhz : device_.core_freq_menu_mhz) {
    const double p =
        board_power(device_, {mhz, device_.max_mem_mhz()}, 0.8, 0.3);
    EXPECT_GT(p, prev) << mhz;
    prev = p;
  }
}

TEST_F(PowerModelTest, PowerMonotoneInMemFrequency) {
  double prev = -1.0;
  for (const std::uint32_t mhz : device_.mem_freq_menu_mhz) {
    const double p =
        board_power(device_, {device_.max_core_mhz(), mhz}, 0.5, 0.8);
    EXPECT_GT(p, prev) << mhz;
    prev = p;
  }
}

TEST_F(PowerModelTest, UtilizationClamped) {
  const FrequencyPair f = device_.max_frequencies();
  EXPECT_DOUBLE_EQ(board_power(device_, f, -0.5, -1.0),
                   board_power(device_, f, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(board_power(device_, f, 1.5, 2.0),
                   board_power(device_, f, 1.0, 1.0));
}

TEST_F(PowerModelTest, LowFrequencyCutsDynamicPowerSuperlinearly) {
  // f·V² scaling: halving frequency cuts active-core power by more than
  // half because voltage drops too.
  const double hi = board_power(device_, {852, 924}, 1.0, 0.0) -
                    board_power(device_, {852, 924}, 0.0, 0.0);
  const double lo = board_power(device_, {396, 924}, 1.0, 0.0) -
                    board_power(device_, {396, 924}, 0.0, 0.0);
  EXPECT_LT(lo / hi, 396.0 / 852.0);
}

}  // namespace
}  // namespace sssp::sim
