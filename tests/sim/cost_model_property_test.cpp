// Parameterized property sweeps over the stage cost model: the physical
// monotonicities every roofline model must satisfy, checked across work
// sizes, byte loads, devices, and the full frequency menus.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/cost_model.hpp"
#include "sim/device.hpp"

namespace sssp::sim {
namespace {

using Case = std::tuple<std::string /*device*/, std::uint64_t /*items*/,
                        double /*bytes_per_item*/>;

DeviceSpec device_by_name(const std::string& name) {
  return name == "tx1" ? DeviceSpec::jetson_tx1() : DeviceSpec::jetson_tk1();
}

class CostModelProperty : public ::testing::TestWithParam<Case> {};

TEST_P(CostModelProperty, TimeMonotoneInCoreFrequency) {
  const auto [device_name, items, bytes_per_item] = GetParam();
  const DeviceSpec device = device_by_name(device_name);
  const double bytes = static_cast<double>(items) * bytes_per_item;
  double previous = 1e300;
  for (const auto mhz : device.core_freq_menu_mhz) {
    const double t =
        time_stage(device, {mhz, device.max_mem_mhz()}, items, bytes).seconds;
    EXPECT_LE(t, previous + 1e-15) << mhz;
    previous = t;
  }
}

TEST_P(CostModelProperty, TimeMonotoneInMemFrequency) {
  const auto [device_name, items, bytes_per_item] = GetParam();
  const DeviceSpec device = device_by_name(device_name);
  const double bytes = static_cast<double>(items) * bytes_per_item;
  double previous = 1e300;
  for (const auto mhz : device.mem_freq_menu_mhz) {
    const double t =
        time_stage(device, {device.max_core_mhz(), mhz}, items, bytes).seconds;
    EXPECT_LE(t, previous + 1e-15) << mhz;
    previous = t;
  }
}

TEST_P(CostModelProperty, TimeMonotoneInWork) {
  const auto [device_name, items, bytes_per_item] = GetParam();
  const DeviceSpec device = device_by_name(device_name);
  const FrequencyPair f = device.max_frequencies();
  const double t1 =
      time_stage(device, f, items, static_cast<double>(items) * bytes_per_item)
          .seconds;
  const double t2 = time_stage(device, f, items * 2,
                               static_cast<double>(items * 2) * bytes_per_item)
                        .seconds;
  EXPECT_GE(t2 + 1e-15, t1);
}

TEST_P(CostModelProperty, UtilizationsInUnitInterval) {
  const auto [device_name, items, bytes_per_item] = GetParam();
  const DeviceSpec device = device_by_name(device_name);
  for (const auto core : device.core_freq_menu_mhz) {
    for (const auto mem : device.mem_freq_menu_mhz) {
      const StageTiming t =
          time_stage(device, {core, mem}, items,
                     static_cast<double>(items) * bytes_per_item);
      ASSERT_GE(t.core_utilization, 0.0);
      ASSERT_LE(t.core_utilization, 1.0);
      ASSERT_GE(t.mem_utilization, 0.0);
      ASSERT_LE(t.mem_utilization, 1.0);
      ASSERT_GE(t.seconds, device.kernel_launch_seconds);
    }
  }
}

TEST_P(CostModelProperty, SplittingWorkNeverBeatsOneLaunch) {
  // Two half-size launches pay the dispatch latency twice; the model
  // must never reward splitting (this is what punishes tiny deltas).
  const auto [device_name, items, bytes_per_item] = GetParam();
  if (items < 2) GTEST_SKIP();
  const DeviceSpec device = device_by_name(device_name);
  const FrequencyPair f = device.max_frequencies();
  const double whole =
      time_stage(device, f, items, static_cast<double>(items) * bytes_per_item)
          .seconds;
  const double half = time_stage(device, f, items / 2,
                                 static_cast<double>(items / 2) * bytes_per_item)
                          .seconds;
  EXPECT_GE(2.0 * half + 1e-15, whole);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CostModelProperty,
    ::testing::Combine(::testing::Values("tk1", "tx1"),
                       ::testing::Values<std::uint64_t>(1, 100, 10000,
                                                        5000000),
                       ::testing::Values(0.0, 12.0, 24.0, 200.0)),
    [](const ::testing::TestParamInfo<Case>& tpi) {
      return std::get<0>(tpi.param) + "_items" +
             std::to_string(std::get<1>(tpi.param)) + "_bpi" +
             std::to_string(static_cast<int>(std::get<2>(tpi.param)));
    });

}  // namespace
}  // namespace sssp::sim
