#include "sim/dvfs.hpp"

#include <gtest/gtest.h>

namespace sssp::sim {
namespace {

IterationTiming make_iteration(double core_util, double mem_util) {
  IterationTiming it;
  it.accumulate({1.0, core_util, mem_util});
  it.finalize();
  return it;
}

class DvfsTest : public ::testing::Test {
 protected:
  DeviceSpec device_ = DeviceSpec::jetson_tk1();
};

TEST_F(DvfsTest, PinnedStaysFixed) {
  PinnedDvfs policy({612, 600});
  EXPECT_EQ(policy.initial(device_), (FrequencyPair{612, 600}));
  EXPECT_EQ(policy.next(device_, make_iteration(1.0, 1.0)),
            (FrequencyPair{612, 600}));
  EXPECT_EQ(policy.next(device_, make_iteration(0.0, 0.0)),
            (FrequencyPair{612, 600}));
  EXPECT_EQ(policy.label(), "612/600");
}

TEST_F(DvfsTest, PinnedRejectsUnsupportedPair) {
  PinnedDvfs policy({613, 600});
  EXPECT_THROW(policy.initial(device_), std::invalid_argument);
}

TEST_F(DvfsTest, PinnedCloneIsIndependentAndEquivalent) {
  PinnedDvfs policy({852, 924});
  auto clone = policy.clone();
  EXPECT_EQ(clone->initial(device_), (FrequencyPair{852, 924}));
  EXPECT_EQ(clone->label(), "852/924");
}

TEST_F(DvfsTest, GovernorStartsMidMenu) {
  DefaultGovernor governor;
  const FrequencyPair start = governor.initial(device_);
  EXPECT_NE(start, device_.max_frequencies());
  EXPECT_NE(start, device_.min_frequencies());
  EXPECT_TRUE(device_.supports(start));
}

TEST_F(DvfsTest, GovernorRampsUpUnderSustainedLoad) {
  DefaultGovernor governor;
  FrequencyPair f = governor.initial(device_);
  for (int i = 0; i < 50; ++i) f = governor.next(device_, make_iteration(1.0, 1.0));
  EXPECT_EQ(f, device_.max_frequencies());
}

TEST_F(DvfsTest, GovernorRampsDownWhenIdle) {
  DefaultGovernor governor;
  FrequencyPair f = governor.initial(device_);
  for (int i = 0; i < 80; ++i) f = governor.next(device_, make_iteration(0.01, 0.01));
  EXPECT_EQ(f, device_.min_frequencies());
}

TEST_F(DvfsTest, GovernorBurstsToMaxOnSaturation) {
  DefaultGovernor governor;
  governor.initial(device_);
  const FrequencyPair f = governor.next(device_, make_iteration(0.99, 0.99));
  EXPECT_EQ(f, device_.max_frequencies());
}

TEST_F(DvfsTest, GovernorHoldsInDeadband) {
  DefaultGovernor governor;
  const FrequencyPair start = governor.initial(device_);
  FrequencyPair f = start;
  for (int i = 0; i < 20; ++i) f = governor.next(device_, make_iteration(0.5, 0.5));
  EXPECT_EQ(f, start);
}

TEST_F(DvfsTest, GovernorCloneResetsState) {
  DefaultGovernor governor;
  governor.initial(device_);
  for (int i = 0; i < 50; ++i) governor.next(device_, make_iteration(1.0, 1.0));
  auto fresh = governor.clone();
  // The clone starts over mid-menu rather than inheriting max frequency.
  const FrequencyPair start = fresh->initial(device_);
  EXPECT_NE(start, device_.max_frequencies());
}

TEST_F(DvfsTest, GovernorOnlyAdjustsLoadedDomain) {
  DefaultGovernor governor;
  const FrequencyPair start = governor.initial(device_);
  FrequencyPair f = start;
  // Core saturated, memory idle: core should rise, memory should fall.
  for (int i = 0; i < 80; ++i) f = governor.next(device_, make_iteration(0.9, 0.05));
  EXPECT_GT(f.core_mhz, start.core_mhz);
  EXPECT_LT(f.mem_mhz, start.mem_mhz);
}

}  // namespace
}  // namespace sssp::sim
