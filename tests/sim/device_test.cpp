#include "sim/device.hpp"

#include <gtest/gtest.h>

namespace sssp::sim {
namespace {

TEST(FrequencyPair, LabelFormat) {
  EXPECT_EQ((FrequencyPair{852, 924}).label(), "852/924");
}

TEST(DeviceSpec, Tk1PresetIsValid) {
  const DeviceSpec tk1 = DeviceSpec::jetson_tk1();
  EXPECT_EQ(tk1.cuda_cores, 192u);
  EXPECT_EQ(tk1.max_core_mhz(), 852u);
  EXPECT_EQ(tk1.max_mem_mhz(), 924u);
  EXPECT_NO_THROW(tk1.validate());
}

TEST(DeviceSpec, Tx1PresetIsValid) {
  const DeviceSpec tx1 = DeviceSpec::jetson_tx1();
  EXPECT_EQ(tx1.cuda_cores, 256u);
  EXPECT_EQ(tx1.max_core_mhz(), 998u);
  EXPECT_NO_THROW(tx1.validate());
  // TX1 should waste less idle power than TK1 (paper Section 5.2).
  EXPECT_LT(tx1.idle_core_fraction, DeviceSpec::jetson_tk1().idle_core_fraction);
}

TEST(DeviceSpec, SupportsChecksBothMenus) {
  const DeviceSpec tk1 = DeviceSpec::jetson_tk1();
  EXPECT_TRUE(tk1.supports({852, 924}));
  EXPECT_TRUE(tk1.supports({324, 600}));
  EXPECT_FALSE(tk1.supports({853, 924}));
  EXPECT_FALSE(tk1.supports({852, 925}));
}

TEST(DeviceSpec, MinMaxHelpers) {
  const DeviceSpec tk1 = DeviceSpec::jetson_tk1();
  EXPECT_EQ(tk1.max_frequencies(), (FrequencyPair{852, 924}));
  EXPECT_EQ(tk1.min_frequencies(), (FrequencyPair{72, 204}));
}

TEST(DeviceSpec, ValidateRejectsEmptyMenu) {
  DeviceSpec spec = DeviceSpec::jetson_tk1();
  spec.core_freq_menu_mhz.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(DeviceSpec, ValidateRejectsUnsortedMenu) {
  DeviceSpec spec = DeviceSpec::jetson_tk1();
  std::swap(spec.mem_freq_menu_mhz[0], spec.mem_freq_menu_mhz[1]);
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(DeviceSpec, ValidateRejectsZeroCores) {
  DeviceSpec spec = DeviceSpec::jetson_tk1();
  spec.cuda_cores = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(DeviceSpec, ValidateRejectsBadIdleFraction) {
  DeviceSpec spec = DeviceSpec::jetson_tk1();
  spec.idle_core_fraction = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(DeviceSpec, ValidateRejectsBadVoltages) {
  DeviceSpec spec = DeviceSpec::jetson_tk1();
  spec.core_v_max = spec.core_v_min - 0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace sssp::sim
