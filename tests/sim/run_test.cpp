#include "sim/run.hpp"

#include <gtest/gtest.h>

namespace sssp::sim {
namespace {

RunWorkload uniform_workload(std::size_t iterations, std::uint64_t frontier) {
  RunWorkload w;
  w.algorithm = "test";
  w.dataset = "synthetic";
  for (std::size_t i = 0; i < iterations; ++i) {
    IterationWork it;
    it.x1 = frontier;
    it.x2 = frontier * 4;
    it.x3 = frontier * 2;
    it.x4 = frontier;
    it.edges_relaxed = frontier * 4;
    it.far_queue_size = frontier;
    w.iterations.push_back(it);
  }
  return w;
}

class SimulateRunTest : public ::testing::Test {
 protected:
  DeviceSpec device_ = DeviceSpec::jetson_tk1();
};

TEST_F(SimulateRunTest, EmptyWorkloadProducesEmptyReport) {
  const RunReport r =
      simulate_run(device_, PinnedDvfs(device_.max_frequencies()), {});
  EXPECT_DOUBLE_EQ(r.total_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.energy_joules, 0.0);
  EXPECT_TRUE(r.iterations.empty());
}

TEST_F(SimulateRunTest, ReportInternallyConsistent) {
  const RunWorkload w = uniform_workload(50, 1000);
  const RunReport r =
      simulate_run(device_, PinnedDvfs(device_.max_frequencies()), w);
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_NEAR(r.energy_joules, r.average_power_w * r.total_seconds, 1e-9);
  EXPECT_GE(r.peak_power_w + 1e-9, r.average_power_w);
  ASSERT_EQ(r.iterations.size(), 50u);
  double sum = 0.0;
  for (const auto& it : r.iterations) sum += it.seconds;
  EXPECT_NEAR(sum, r.total_seconds, 1e-12);
}

TEST_F(SimulateRunTest, DeterministicAcrossCalls) {
  const RunWorkload w = uniform_workload(20, 777);
  const DefaultGovernor governor;
  const RunReport a = simulate_run(device_, governor, w);
  const RunReport b = simulate_run(device_, governor, w);
  EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
  EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
}

TEST_F(SimulateRunTest, LowerFrequencySlowerAndLowerPower) {
  const RunWorkload w = uniform_workload(100, 100000);
  const RunReport fast =
      simulate_run(device_, PinnedDvfs({852, 924}), w);
  const RunReport slow = simulate_run(device_, PinnedDvfs({324, 396}), w);
  EXPECT_GT(slow.total_seconds, fast.total_seconds);
  EXPECT_LT(slow.average_power_w, fast.average_power_w);
}

TEST_F(SimulateRunTest, FewerBiggerIterationsBeatManySmallOnes) {
  // Same total work split into 1000 tiny iterations vs 10 large ones:
  // launch overhead makes the former slower (the paper's small-delta
  // pathology).
  RunWorkload many = uniform_workload(1000, 100);
  RunWorkload few = uniform_workload(10, 10000);
  const PinnedDvfs policy({852, 924});
  const RunReport r_many = simulate_run(device_, policy, many);
  const RunReport r_few = simulate_run(device_, policy, few);
  EXPECT_GT(r_many.total_seconds, r_few.total_seconds);
}

TEST_F(SimulateRunTest, ControllerOverheadAppearsInTimeAndReport) {
  RunWorkload w = uniform_workload(10, 1000);
  for (auto& it : w.iterations) it.controller_seconds = 1e-4;
  const RunReport with = simulate_run(device_, PinnedDvfs({852, 924}), w);
  const RunReport without = simulate_run(
      device_, PinnedDvfs({852, 924}), uniform_workload(10, 1000));
  EXPECT_NEAR(with.controller_seconds, 1e-3, 1e-12);
  EXPECT_NEAR(with.total_seconds - without.total_seconds, 1e-3, 1e-9);
}

TEST_F(SimulateRunTest, GovernorTracksLoadAcrossRun) {
  // Saturating workload should end at higher frequency than it started.
  const RunWorkload w = uniform_workload(100, 5'000'000);
  const RunReport r = simulate_run(device_, DefaultGovernor(), w);
  ASSERT_FALSE(r.iterations.empty());
  EXPECT_GT(r.iterations.back().frequencies.core_mhz,
            r.iterations.front().frequencies.core_mhz);
}

TEST_F(SimulateRunTest, KeepIterationReportsFalseSavesMemory) {
  const RunWorkload w = uniform_workload(10, 100);
  SimulateOptions opts;
  opts.keep_iteration_reports = false;
  const RunReport r =
      simulate_run(device_, PinnedDvfs({852, 924}), w, opts);
  EXPECT_TRUE(r.iterations.empty());
  EXPECT_GT(r.total_seconds, 0.0);
}

TEST_F(SimulateRunTest, RelativeMetrics) {
  const RunWorkload w = uniform_workload(50, 100000);
  const RunReport fast = simulate_run(device_, PinnedDvfs({852, 924}), w);
  const RunReport slow = simulate_run(device_, PinnedDvfs({324, 396}), w);
  const RelativeMetrics m = relative_to(fast, slow);
  EXPECT_GT(m.speedup, 1.0);
  EXPECT_GT(m.relative_power, 1.0);
  const RelativeMetrics self = relative_to(fast, fast);
  EXPECT_DOUBLE_EQ(self.speedup, 1.0);
  EXPECT_DOUBLE_EQ(self.relative_power, 1.0);
  EXPECT_DOUBLE_EQ(self.relative_energy, 1.0);
}

TEST_F(SimulateRunTest, RelativeMetricsRejectEmptyRuns) {
  const RunReport empty;
  const RunWorkload w = uniform_workload(5, 10);
  const RunReport real = simulate_run(device_, PinnedDvfs({852, 924}), w);
  EXPECT_THROW(relative_to(real, empty), std::invalid_argument);
  EXPECT_THROW(relative_to(empty, real), std::invalid_argument);
}

TEST(WorkloadTest, TotalEdgesRelaxed) {
  RunWorkload w;
  IterationWork a, b;
  a.edges_relaxed = 10;
  b.edges_relaxed = 32;
  w.iterations = {a, b};
  EXPECT_EQ(w.total_edges_relaxed(), 42u);
}

}  // namespace
}  // namespace sssp::sim
