#include "sim/workload_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sssp::sim {
namespace {

RunWorkload sample_workload() {
  RunWorkload w;
  w.algorithm = "self-tuning";
  w.dataset = "Cal";
  for (std::uint64_t i = 1; i <= 5; ++i) {
    IterationWork it;
    it.x1 = i;
    it.x2 = 4 * i;
    it.x3 = 2 * i;
    it.x4 = i;
    it.edges_relaxed = 4 * i;
    it.rebalance_items = i / 2;
    it.far_queue_size = 10 * i;
    it.controller_seconds = 1e-6 * static_cast<double>(i);
    w.iterations.push_back(it);
  }
  return w;
}

TEST(WorkloadIo, RoundTrip) {
  const RunWorkload original = sample_workload();
  std::stringstream buffer;
  save_workload_csv(original, buffer);
  const RunWorkload loaded = load_workload_csv(buffer);
  EXPECT_EQ(loaded.algorithm, original.algorithm);
  EXPECT_EQ(loaded.dataset, original.dataset);
  ASSERT_EQ(loaded.iterations.size(), original.iterations.size());
  for (std::size_t i = 0; i < original.iterations.size(); ++i) {
    const auto& a = loaded.iterations[i];
    const auto& b = original.iterations[i];
    EXPECT_EQ(a.x1, b.x1);
    EXPECT_EQ(a.x2, b.x2);
    EXPECT_EQ(a.x3, b.x3);
    EXPECT_EQ(a.x4, b.x4);
    EXPECT_EQ(a.edges_relaxed, b.edges_relaxed);
    EXPECT_EQ(a.rebalance_items, b.rebalance_items);
    EXPECT_EQ(a.far_queue_size, b.far_queue_size);
    EXPECT_DOUBLE_EQ(a.controller_seconds, b.controller_seconds);
  }
  EXPECT_EQ(loaded.total_edges_relaxed(), original.total_edges_relaxed());
}

TEST(WorkloadIo, EmptyWorkloadRoundTrips) {
  RunWorkload w;
  w.algorithm = "x";
  w.dataset = "y";
  std::stringstream buffer;
  save_workload_csv(w, buffer);
  const RunWorkload loaded = load_workload_csv(buffer);
  EXPECT_TRUE(loaded.iterations.empty());
}

TEST(WorkloadIo, RejectsWrongHeader) {
  std::istringstream in("nope,nope\n1,2\n");
  EXPECT_THROW(load_workload_csv(in), std::runtime_error);
}

TEST(WorkloadIo, RejectsShortRow) {
  std::stringstream buffer;
  save_workload_csv(sample_workload(), buffer);
  std::string text = buffer.str();
  text += "self-tuning,Cal,1,2\n";  // truncated row appended
  std::istringstream in(text);
  EXPECT_THROW(load_workload_csv(in), std::runtime_error);
}

TEST(WorkloadIo, RejectsBadInteger) {
  std::stringstream buffer;
  save_workload_csv(RunWorkload{"a", "b", {}}, buffer);
  std::string text = buffer.str();
  text += "a,b,x,2,3,4,5,6,7,0.1\n";
  std::istringstream in(text);
  EXPECT_THROW(load_workload_csv(in), std::runtime_error);
}

TEST(WorkloadIo, MissingFileThrows) {
  EXPECT_THROW(load_workload_csv_file("/nonexistent/w.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace sssp::sim
