// ResourceBudget (res/budget.hpp): the process-wide memory/scratch/fd
// governor every large-allocation site consults. The contracts under
// test: charges are accounted and released exactly, refusals are
// structured (ResourceError with kind/site/requested/available), every
// charge site doubles as a failpoint, and the fd probe reads real
// /proc/self/fd state.
#include "res/budget.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <limits>

#include "fault/failpoint.hpp"

namespace sssp::res {
namespace {

class BudgetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResourceBudget::global().reset();
    fault::FailpointRegistry::global().disarm_all();
  }
  void TearDown() override {
    ResourceBudget::global().reset();
    fault::FailpointRegistry::global().disarm_all();
  }
};

TEST_F(BudgetTest, UnlimitedByDefault) {
  auto& budget = ResourceBudget::global();
  EXPECT_EQ(budget.memory_limit(), kUnlimited);
  EXPECT_TRUE(budget.try_charge_memory(1ULL << 40, "res.test"));
  EXPECT_EQ(budget.memory_used(), 1ULL << 40);
  budget.release_memory(1ULL << 40);
  EXPECT_EQ(budget.memory_used(), 0u);
}

TEST_F(BudgetTest, ChargeAndReleaseAccounting) {
  auto& budget = ResourceBudget::global();
  budget.set_memory_limit(1000);
  EXPECT_TRUE(budget.try_charge_memory(600, "res.test"));
  EXPECT_EQ(budget.memory_available(), 400u);
  EXPECT_FALSE(budget.try_charge_memory(401, "res.test"));
  EXPECT_TRUE(budget.try_charge_memory(400, "res.test"));
  EXPECT_EQ(budget.memory_available(), 0u);
  budget.release_memory(600);
  budget.release_memory(400);
  EXPECT_EQ(budget.memory_used(), 0u);
}

TEST_F(BudgetTest, ThrowingFormCarriesStructuredFields) {
  auto& budget = ResourceBudget::global();
  budget.set_memory_limit(100);
  try {
    budget.charge_memory(250, "res.test.site");
    FAIL() << "charge over budget did not throw";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.kind(), ResourceKind::kMemory);
    EXPECT_EQ(e.site(), "res.test.site");
    EXPECT_EQ(e.requested(), 250u);
    EXPECT_EQ(e.available(), 100u);
  }
  EXPECT_EQ(budget.memory_used(), 0u) << "failed charge must not stick";
}

TEST_F(BudgetTest, RequireMemoryChecksWithoutHoldingACharge) {
  auto& budget = ResourceBudget::global();
  budget.set_memory_limit(1000);
  EXPECT_NO_THROW(budget.require_memory(900, "res.test"));
  EXPECT_EQ(budget.memory_used(), 0u);
  EXPECT_THROW(budget.require_memory(1100, "res.test"), ResourceError);
  EXPECT_GE(budget.snapshot().memory_peak, 900u);
}

TEST_F(BudgetTest, CheckMemoryIsNonThrowingAndHoldsNothing) {
  auto& budget = ResourceBudget::global();
  budget.set_memory_limit(100);
  EXPECT_TRUE(budget.check_memory(50, "res.test"));
  EXPECT_FALSE(budget.check_memory(200, "res.test"));
  EXPECT_EQ(budget.memory_used(), 0u);
}

TEST_F(BudgetTest, SiteFailpointForcesRefusal) {
  auto& budget = ResourceBudget::global();
  // No limit set: only the armed failpoint can cause a refusal.
  fault::FailpointRegistry::global().arm("res.engine.alloc");
  EXPECT_FALSE(budget.try_charge_memory(1, "res.engine.alloc"));
  EXPECT_TRUE(budget.try_charge_memory(1, "res.other.site"));
  budget.release_memory(1);
  fault::FailpointRegistry::global().disarm_all();
}

TEST_F(BudgetTest, GenericFailpointForcesRefusalAtEverySite) {
  auto& budget = ResourceBudget::global();
  fault::FailpointRegistry::global().arm("res.alloc.fail");
  EXPECT_FALSE(budget.try_charge_memory(1, "res.engine.alloc"));
  EXPECT_FALSE(budget.check_memory(1, "res.batch.alloc"));
  EXPECT_THROW(budget.require_memory(1, "res.graph.alloc"), ResourceError);
  EXPECT_GE(budget.snapshot().rejections, 3u);
  fault::FailpointRegistry::global().disarm_all();
}

TEST_F(BudgetTest, ScratchBudgetIsIndependentOfMemory) {
  auto& budget = ResourceBudget::global();
  budget.set_memory_limit(10);
  budget.set_scratch_limit(1000);
  EXPECT_TRUE(budget.try_charge_scratch(800, "res.ckpt.scratch"));
  EXPECT_FALSE(budget.try_charge_scratch(300, "res.ckpt.scratch"));
  budget.release_scratch(800);
  EXPECT_EQ(budget.scratch_used(), 0u);
}

TEST_F(BudgetTest, OpenFdCountSeesNewDescriptors) {
  const int before = ResourceBudget::open_fd_count();
  ASSERT_GT(before, 0) << "/proc/self/fd should be readable on Linux";
  const int fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(ResourceBudget::open_fd_count(), before + 1);
  ::close(fd);
  EXPECT_EQ(ResourceBudget::open_fd_count(), before);
}

TEST_F(BudgetTest, FdRequireHonorsHeadroom) {
  auto& budget = ResourceBudget::global();
  const std::uint64_t limit = ResourceBudget::fd_limit();
  const int open = ResourceBudget::open_fd_count();
  ASSERT_GT(open, 0);
  // Demanding more fds than could possibly remain must refuse.
  EXPECT_FALSE(budget.try_require_fds(limit, "res.test.fds"));
  // A single fd within a generous limit must pass.
  budget.set_fd_headroom(1);
  EXPECT_TRUE(budget.try_require_fds(1, "res.test.fds"));
}

TEST_F(BudgetTest, MemoryReservationReleasesOnScopeExit) {
  auto& budget = ResourceBudget::global();
  budget.set_memory_limit(1000);
  {
    auto r = MemoryReservation::try_reserve(budget, 700, "res.test");
    EXPECT_TRUE(r.held());
    EXPECT_EQ(budget.memory_used(), 700u);
    auto refused = MemoryReservation::try_reserve(budget, 700, "res.test");
    EXPECT_FALSE(refused.held());
  }
  EXPECT_EQ(budget.memory_used(), 0u);
}

TEST_F(BudgetTest, MemoryReservationMoveTransfersOwnership) {
  auto& budget = ResourceBudget::global();
  auto a = MemoryReservation::try_reserve(budget, 64, "res.test");
  ASSERT_TRUE(a.held());
  MemoryReservation b = std::move(a);
  EXPECT_FALSE(a.held());
  EXPECT_TRUE(b.held());
  EXPECT_EQ(budget.memory_used(), 64u);
  b.release();
  EXPECT_EQ(budget.memory_used(), 0u);
}

TEST_F(BudgetTest, SnapshotTracksPeakAndRejections) {
  auto& budget = ResourceBudget::global();
  budget.set_memory_limit(100);
  EXPECT_TRUE(budget.try_charge_memory(90, "res.test"));
  EXPECT_FALSE(budget.try_charge_memory(90, "res.test"));
  budget.release_memory(90);
  const auto snap = budget.snapshot();
  EXPECT_EQ(snap.memory_limit, 100u);
  EXPECT_EQ(snap.memory_used, 0u);
  EXPECT_GE(snap.memory_peak, 90u);
  EXPECT_GE(snap.rejections, 1u);
}

}  // namespace
}  // namespace sssp::res
