#include "sssp/batch_engine.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "fault/failpoint.hpp"
#include "graph/rmat.hpp"
#include "graph/road.hpp"
#include "sssp/near_far.hpp"
#include "tests/sssp/test_graphs.hpp"
#include "util/thread_pool.hpp"
#include "verify/certifier.hpp"

namespace sssp::algo {
namespace {

graph::CsrGraph road_fixture() {
  graph::RoadOptions opts;
  opts.rows = 48;
  opts.cols = 48;
  opts.seed = 7;
  return graph::generate_road(opts);
}

graph::CsrGraph rmat_fixture() {
  graph::RmatOptions opts;
  opts.scale = 11;
  opts.num_edges = 1u << 14;
  opts.seed = 42;
  return graph::generate_rmat(opts);
}

std::vector<graph::VertexId> pick_sources(const graph::CsrGraph& g,
                                          std::size_t k) {
  // Spread sources across the id space; skip isolated vertices so every
  // lane does real work.
  std::vector<graph::VertexId> sources;
  const std::size_t n = g.num_vertices();
  for (std::size_t i = 0; sources.size() < k && i < n; ++i) {
    const auto v = static_cast<graph::VertexId>((i * n / k + i) % n);
    if (!g.neighbors(v).empty()) sources.push_back(v);
  }
  return sources;
}

// Restores the global pool width even when an assertion fails.
struct ThreadGuard {
  ~ThreadGuard() { util::ThreadPool::set_global_threads(0); }
};

// The acceptance bar: every lane's distances byte-match the
// single-source near-far run, for both strategies, at thread counts
// {1, 4, 8}, on a road-class and an R-MAT-class graph.
TEST(BatchEngine, LanesMatchSingleSourceAcrossThreadsAndStrategies) {
  ThreadGuard guard;
  for (const auto& g : {road_fixture(), rmat_fixture()}) {
    const auto sources = pick_sources(g, 6);
    ASSERT_EQ(sources.size(), 6u);

    std::vector<SsspResult> baseline;
    for (const auto source : sources)
      baseline.push_back(near_far(g, source, {}));

    for (const auto strategy :
         {BatchStrategy::kFused, BatchStrategy::kIndependent}) {
      for (const std::size_t threads : {1u, 4u, 8u}) {
        util::ThreadPool::set_global_threads(threads);
        BatchOptions options;
        options.strategy = strategy;
        // Exercise the parallel fused pipeline even on small frontiers.
        options.parallel_threshold = 2;
        const auto batch = run_batch(g, sources, options);
        ASSERT_EQ(batch.lanes.size(), sources.size());
        for (std::size_t l = 0; l < sources.size(); ++l) {
          const auto& lane = batch.lanes[l];
          ASSERT_EQ(lane.distances.size(), baseline[l].distances.size());
          EXPECT_EQ(0, std::memcmp(lane.distances.data(),
                                   baseline[l].distances.data(),
                                   lane.distances.size() *
                                       sizeof(graph::Distance)))
              << to_string(strategy) << " threads=" << threads
              << " lane=" << l << " source=" << sources[l];
        }
      }
    }
  }
}

// The fused shared trace — per-iteration stats included — must be
// bit-identical at any thread count (the PR 3 determinism bar extended
// to the batch).
TEST(BatchEngine, FusedTraceIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const auto g = rmat_fixture();
  const auto sources = pick_sources(g, 8);

  BatchOptions options;
  options.parallel_threshold = 2;
  std::vector<std::vector<frontier::IterationStats>> traces;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    util::ThreadPool::set_global_threads(threads);
    traces.push_back(run_batch(g, sources, options).batch_iterations);
  }
  for (std::size_t i = 1; i < traces.size(); ++i) {
    ASSERT_EQ(traces[i].size(), traces[0].size());
    for (std::size_t it = 0; it < traces[0].size(); ++it) {
      EXPECT_EQ(traces[i][it].x1, traces[0][it].x1) << "iteration " << it;
      EXPECT_EQ(traces[i][it].x2, traces[0][it].x2) << "iteration " << it;
      EXPECT_EQ(traces[i][it].x3, traces[0][it].x3) << "iteration " << it;
      EXPECT_EQ(traces[i][it].x4, traces[0][it].x4) << "iteration " << it;
      EXPECT_EQ(traces[i][it].improving_relaxations,
                traces[0][it].improving_relaxations)
          << "iteration " << it;
      EXPECT_EQ(traces[i][it].far_queue_size, traces[0][it].far_queue_size)
          << "iteration " << it;
    }
  }
}

// Parents are a canonical derivation from final distances, so they are
// identical under either strategy, and every lane certifies.
TEST(BatchEngine, ParentsCanonicalAndEveryLaneCertifies) {
  const auto g = road_fixture();
  const auto sources = pick_sources(g, 5);

  BatchOptions fused;
  fused.strategy = BatchStrategy::kFused;
  BatchOptions independent;
  independent.strategy = BatchStrategy::kIndependent;
  const auto a = run_batch(g, sources, fused);
  const auto b = run_batch(g, sources, independent);
  ASSERT_EQ(a.lanes.size(), b.lanes.size());
  for (std::size_t l = 0; l < a.lanes.size(); ++l) {
    EXPECT_EQ(a.lanes[l].parents, b.lanes[l].parents) << "lane " << l;
    const auto cert = verify::certify(g, a.lanes[l]);
    EXPECT_TRUE(cert.certified) << "lane " << l << ": " << cert.summary();
  }
}

// Fused amortization actually happens: the union run fetches fewer CSR
// edges than K independent runs traverse in total.
TEST(BatchEngine, FusedFetchesFewerEdgesThanIndependent) {
  const auto g = road_fixture();
  const auto sources = pick_sources(g, 8);

  BatchOptions fused;
  fused.strategy = BatchStrategy::kFused;
  BatchOptions independent;
  independent.strategy = BatchStrategy::kIndependent;
  const auto a = run_batch(g, sources, fused);
  const auto b = run_batch(g, sources, independent);
  EXPECT_GT(a.edges_fetched, 0u);
  EXPECT_LT(a.edges_fetched, b.edges_fetched);
  EXPECT_FALSE(a.batch_iterations.empty());
  EXPECT_TRUE(b.batch_iterations.empty());
}

// Failpoint drill: batch.lane.flip_dist corrupts exactly lane 0 after
// the run, so the per-lane certifier must fail that lane and pass the
// rest — the per-lane verdicts the soak harness depends on.
TEST(BatchEngine, FlipDistFailpointFailsExactlyLaneZero) {
  const auto g = road_fixture();
  const auto sources = pick_sources(g, 4);

  fault::FailpointRegistry::global().arm("batch.lane.flip_dist");
  const auto batch = run_batch(g, sources, {});
  fault::FailpointRegistry::global().disarm_all();

  ASSERT_EQ(batch.lanes.size(), 4u);
  for (std::size_t l = 0; l < batch.lanes.size(); ++l) {
    const auto cert = verify::certify(g, batch.lanes[l]);
    if (l == 0) {
      EXPECT_FALSE(cert.certified) << "corrupted lane must fail";
    } else {
      EXPECT_TRUE(cert.certified) << "lane " << l << ": " << cert.summary();
    }
  }
}

// Memory-budget degrade (docs/ROBUSTNESS.md, "Resource budgets &
// exhaustion"): when the projected SoA lane bytes are refused, the
// batch recursively splits in half down to K=1 instead of failing —
// and every lane still matches the unconstrained run exactly.
TEST(BatchEngine, MemoryRefusalSplitsBatchWithIdenticalResults) {
  const auto g = road_fixture();
  const auto sources = pick_sources(g, 6);
  const auto baseline = run_batch(g, sources, {});

  fault::FailpointRegistry::global().arm("res.batch.alloc");
  const auto split = run_batch(g, sources, {});
  fault::FailpointRegistry::global().disarm_all();

  ASSERT_EQ(split.lanes.size(), baseline.lanes.size());
  for (std::size_t l = 0; l < split.lanes.size(); ++l) {
    EXPECT_EQ(split.lanes[l].distances, baseline.lanes[l].distances)
        << "lane " << l;
    EXPECT_EQ(split.lanes[l].parents, baseline.lanes[l].parents)
        << "lane " << l;
  }
}

TEST(BatchEngine, DuplicateSourcesProduceIdenticalLanes) {
  const auto g = testing::random_graph(2000, 5.0, 30, 11);
  const std::vector<graph::VertexId> sources = {17, 17, 17};
  for (const auto strategy :
       {BatchStrategy::kFused, BatchStrategy::kIndependent}) {
    BatchOptions options;
    options.strategy = strategy;
    const auto batch = run_batch(g, sources, options);
    EXPECT_EQ(batch.lanes[0].distances, batch.lanes[1].distances);
    EXPECT_EQ(batch.lanes[1].distances, batch.lanes[2].distances);
  }
}

TEST(BatchEngine, RejectsBadInputs) {
  const auto g = testing::diamond();
  EXPECT_THROW(run_batch(g, {}, {}), std::invalid_argument);
  const std::vector<graph::VertexId> out_of_range = {0, 99};
  EXPECT_THROW(run_batch(g, out_of_range, {}), std::invalid_argument);
  std::vector<graph::VertexId> too_many(kMaxBatchLanes + 1, 0);
  EXPECT_THROW(run_batch(g, too_many, {}), std::invalid_argument);
}

TEST(BatchEngine, StrategyNamesRoundTrip) {
  EXPECT_STREQ(to_string(BatchStrategy::kFused), "fused");
  EXPECT_STREQ(to_string(BatchStrategy::kIndependent), "independent");
  EXPECT_EQ(parse_batch_strategy("fused"), BatchStrategy::kFused);
  EXPECT_EQ(parse_batch_strategy("independent"), BatchStrategy::kIndependent);
  EXPECT_THROW(parse_batch_strategy("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace sssp::algo
