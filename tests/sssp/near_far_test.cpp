#include "sssp/near_far.hpp"

#include <gtest/gtest.h>

#include "sssp/dijkstra.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::algo {
namespace {

TEST(NearFar, DiamondDistances) {
  const auto g = testing::diamond();
  const SsspResult r = near_far(g, 0, {.delta = 2});
  EXPECT_EQ(r.distances, dijkstra_distances(g, 0));
  EXPECT_EQ(r.algorithm, "near-far");
}

TEST(NearFar, DefaultDeltaUsesMeanWeight) {
  const auto g = testing::random_graph(400, 4.0, 80, 5);
  const SsspResult r = near_far(g, 0);
  EXPECT_EQ(count_distance_mismatches(r.distances, dijkstra_distances(g, 0)),
            0u);
}

TEST(NearFar, StatsInvariants) {
  const auto g = testing::random_graph(500, 5.0, 60, 9);
  const SsspResult r = near_far(g, 0, {.delta = 40});
  ASSERT_FALSE(r.iterations.empty());
  for (const auto& it : r.iterations) {
    // filter output cannot exceed improving relaxations, which cannot
    // exceed the edge work items.
    EXPECT_LE(it.x3, it.improving_relaxations);
    EXPECT_LE(it.improving_relaxations, it.x2);
    // bisect keeps a subset of the filtered frontier... plus far refill.
    EXPECT_LE(it.x4, it.x3 + it.rebalance_items);
  }
  // First iteration starts from the source alone.
  EXPECT_EQ(r.iterations.front().x1, 1u);
}

TEST(NearFar, SmallDeltaMoreIterationsThanLargeDelta) {
  const auto g = testing::random_graph(800, 5.0, 99, 13);
  const SsspResult small = near_far(g, 0, {.delta = 2});
  const SsspResult large = near_far(g, 0, {.delta = 100000});
  EXPECT_GT(small.num_iterations(), large.num_iterations());
  // Both exact.
  const auto expected = dijkstra_distances(g, 0);
  EXPECT_EQ(count_distance_mismatches(small.distances, expected), 0u);
  EXPECT_EQ(count_distance_mismatches(large.distances, expected), 0u);
}

TEST(NearFar, LargeDeltaRaisesAverageParallelism) {
  const auto g = testing::random_graph(2000, 6.0, 99, 21);
  const SsspResult small = near_far(g, 0, {.delta = 4});
  const SsspResult large = near_far(g, 0, {.delta = 100000});
  EXPECT_GT(large.average_parallelism(), small.average_parallelism());
}

TEST(NearFar, HugeDeltaIsWorkOptimalish) {
  // With one giant phase there is no postponement: improving relaxations
  // equal those of frontier Bellman-Ford.
  const auto g = testing::ring(50);
  const SsspResult r = near_far(g, 0, {.delta = 1u << 30});
  EXPECT_EQ(r.improving_relaxations, 49u);
}

TEST(NearFar, ZeroWeightEdgesExact) {
  // Loaders can produce zero weights (explicit 0 in an edge list).
  // Zero-weight chains relax within a phase; exactness must hold.
  std::vector<graph::Edge> edges{{0, 1, 0}, {1, 2, 0}, {2, 3, 5},
                                 {0, 3, 6},  {3, 4, 0}, {4, 0, 0}};
  const auto g = graph::build_csr(5, std::move(edges));
  const auto expected = dijkstra_distances(g, 0);
  for (const graph::Distance delta : {1u, 3u, 100u}) {
    const SsspResult r = near_far(g, 0, {.delta = delta});
    EXPECT_EQ(count_distance_mismatches(r.distances, expected), 0u)
        << "delta " << delta;
  }
}

TEST(NearFar, ZeroWeightCycleTerminates) {
  // A pure zero-weight cycle must not loop forever (relaxation only
  // succeeds on strict improvement).
  std::vector<graph::Edge> edges{{0, 1, 0}, {1, 2, 0}, {2, 0, 0}};
  const auto g = graph::build_csr(3, std::move(edges));
  const SsspResult r = near_far(g, 0, {.delta = 10});
  EXPECT_EQ(r.distances[0], 0u);
  EXPECT_EQ(r.distances[1], 0u);
  EXPECT_EQ(r.distances[2], 0u);
}

TEST(NearFar, ParallelModeExactWithValidTree) {
  const auto g = testing::random_graph(5000, 6.0, 99, 44);
  const SsspResult r = near_far(g, 0, {.delta = 100, .parallel = true});
  EXPECT_EQ(count_distance_mismatches(r.distances, dijkstra_distances(g, 0)),
            0u);
  EXPECT_EQ(count_tree_violations(g, r), 0u);
}

TEST(NearFar, ParallelStatsWellFormed) {
  // Per-iteration statistics are schedule-dependent with real threads
  // (see NearFarEngine::Options), so assert the invariants rather than
  // serial equality: exact distances, and the per-iteration bounds.
  const auto g = testing::random_graph(5000, 6.0, 99, 45);
  const SsspResult serial = near_far(g, 0, {.delta = 200});
  const SsspResult parallel =
      near_far(g, 0, {.delta = 200, .parallel = true});
  EXPECT_EQ(parallel.distances, serial.distances);
  for (const auto& it : parallel.iterations) {
    EXPECT_LE(it.x3, it.improving_relaxations);
    EXPECT_LE(it.improving_relaxations, it.x2);
  }
  // Identical first frontier -> identical first-iteration edge work.
  ASSERT_FALSE(parallel.iterations.empty());
  EXPECT_EQ(parallel.iterations.front().x2, serial.iterations.front().x2);
}

TEST(NearFar, MaxIterationsCapStopsEarly) {
  const auto g = testing::ring(1000);
  const SsspResult r = near_far(g, 0, {.delta = 1, .max_iterations = 10});
  EXPECT_EQ(r.num_iterations(), 10u);
}

TEST(NearFar, UnreachableVerticesStayInfinite) {
  const auto g = graph::build_csr(5, {{0, 1, 2}, {1, 2, 2}});
  const SsspResult r = near_far(g, 0, {.delta = 3});
  EXPECT_EQ(r.distances[3], graph::kInfiniteDistance);
  EXPECT_EQ(r.distances[4], graph::kInfiniteDistance);
  EXPECT_EQ(r.reached_count(), 3u);
}

TEST(NearFar, ToWorkloadCarriesIterations) {
  const auto g = testing::random_graph(200, 4.0, 30, 2);
  const SsspResult r = near_far(g, 0, {.delta = 16});
  const sim::RunWorkload w = r.to_workload("test-set");
  EXPECT_EQ(w.iterations.size(), r.num_iterations());
  EXPECT_EQ(w.dataset, "test-set");
  EXPECT_EQ(w.algorithm, "near-far");
  std::uint64_t edges = 0;
  for (const auto& it : r.iterations) edges += it.x2;
  EXPECT_EQ(w.total_edges_relaxed(), edges);
}

// Exactness sweep across graph shapes, sources, and deltas.
struct NearFarCase {
  std::uint64_t seed;
  graph::Distance delta;
  double avg_degree;
};

class NearFarProperty : public ::testing::TestWithParam<NearFarCase> {};

TEST_P(NearFarProperty, MatchesDijkstra) {
  const auto [seed, delta, avg_degree] = GetParam();
  const auto g = testing::random_graph(700, avg_degree, 99, seed);
  const auto src = static_cast<graph::VertexId>((seed * 131) % 700);
  const SsspResult r = near_far(g, src, {.delta = delta});
  EXPECT_EQ(
      count_distance_mismatches(r.distances, dijkstra_distances(g, src)), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NearFarProperty,
    ::testing::Values(NearFarCase{1, 1, 3.0}, NearFarCase{1, 10, 3.0},
                      NearFarCase{1, 100, 3.0}, NearFarCase{1, 10000, 3.0},
                      NearFarCase{2, 5, 1.5}, NearFarCase{2, 50, 1.5},
                      NearFarCase{3, 7, 8.0}, NearFarCase{3, 77, 8.0},
                      NearFarCase{4, 25, 0.8}, NearFarCase{5, 3, 12.0}),
    [](const ::testing::TestParamInfo<NearFarCase>& tpi) {
      return "seed" + std::to_string(tpi.param.seed) + "_delta" +
             std::to_string(tpi.param.delta) + "_deg" +
             std::to_string(static_cast<int>(tpi.param.avg_degree * 10));
    });

}  // namespace
}  // namespace sssp::algo
