// Shortest-path tree and path reconstruction tests, across every
// algorithm that records parents.
#include <gtest/gtest.h>

#include "core/self_tuning.hpp"
#include "sssp/bellman_ford.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/near_far.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::algo {
namespace {

TEST(Paths, DijkstraDiamondPath) {
  const auto g = testing::diamond();
  const SsspResult r = dijkstra(g, 0);
  ASSERT_EQ(r.parents.size(), 4u);
  const auto path = reconstruct_path(r, 3);
  // Shortest 0 -> 3 is 0 -> 2 -> 3 (cost 5).
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 2u);
  EXPECT_EQ(path[2], 3u);
}

TEST(Paths, SourcePathIsItself) {
  const auto g = testing::diamond();
  const SsspResult r = dijkstra(g, 0);
  const auto path = reconstruct_path(r, 0);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 0u);
}

TEST(Paths, UnreachableTargetGivesEmptyPath) {
  const auto g = graph::build_csr(3, {{0, 1, 1}});
  const SsspResult r = dijkstra(g, 0);
  EXPECT_TRUE(reconstruct_path(r, 2).empty());
}

TEST(Paths, MissingParentsGiveEmptyPath) {
  SsspResult r;
  r.distances = {0, 5};
  EXPECT_TRUE(reconstruct_path(r, 1).empty());
}

TEST(Paths, CorruptChainThrows) {
  const auto g = testing::ring(4);
  SsspResult r = dijkstra(g, 0);
  // Introduce a 2-cycle in the parent chain.
  r.parents[1] = 2;
  r.parents[2] = 1;
  EXPECT_THROW(reconstruct_path(r, 2), std::logic_error);
}

TEST(Paths, PathWeightsSumToDistance) {
  const auto g = testing::random_graph(500, 4.0, 50, 17);
  const SsspResult r = dijkstra(g, 0);
  for (graph::VertexId target = 0; target < 500; target += 23) {
    const auto path = reconstruct_path(r, target);
    if (path.empty()) continue;
    graph::Distance total = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      // Find the lightest edge path[i] -> path[i+1] that closes the step.
      const auto neighbors = g.neighbors(path[i]);
      const auto weights = g.weights_of(path[i]);
      graph::Distance step = graph::kInfiniteDistance;
      for (std::size_t e = 0; e < neighbors.size(); ++e)
        if (neighbors[e] == path[i + 1])
          step = std::min<graph::Distance>(step, weights[e]);
      ASSERT_NE(step, graph::kInfiniteDistance);
      total += step;
    }
    EXPECT_EQ(total, r.distances[target]) << "target " << target;
  }
}

TEST(Paths, TreeValidForEveryAlgorithm) {
  const auto g = testing::random_graph(800, 5.0, 99, 29);
  const auto check = [&g](const SsspResult& r) {
    EXPECT_EQ(count_tree_violations(g, r), 0u) << r.algorithm;
  };
  check(dijkstra(g, 3));
  check(bellman_ford(g, 3));
  check(bellman_ford(g, 3, {.parallel = true}));
  check(delta_stepping(g, 3, {.delta = 25}));
  check(near_far(g, 3, {.delta = 40}));
  core::SelfTuningOptions tuning;
  tuning.set_point = 2000.0;
  check(core::self_tuning_sssp(g, 3, tuning));
}

TEST(Paths, TreeViolationsDetected) {
  const auto g = testing::diamond();
  SsspResult r = dijkstra(g, 0);
  r.parents[3] = 1;  // dist[1] + w(1->?3) does not close dist[3]
  EXPECT_GT(count_tree_violations(g, r), 0u);
  // Size mismatch flagged.
  SsspResult bad;
  bad.distances = r.distances;
  bad.parents = {0};
  EXPECT_EQ(count_tree_violations(g, bad), SIZE_MAX);
}

TEST(Paths, UnreachedVerticesHaveNoParent) {
  const auto g = graph::build_csr(4, {{0, 1, 2}});
  for (const SsspResult& r :
       {dijkstra(g, 0), bellman_ford(g, 0), near_far(g, 0)}) {
    EXPECT_EQ(r.parents[2], graph::kInvalidVertex) << r.algorithm;
    EXPECT_EQ(r.parents[3], graph::kInvalidVertex) << r.algorithm;
    EXPECT_EQ(r.parents[0], 0u) << r.algorithm;
  }
}

}  // namespace
}  // namespace sssp::algo
