#include "sssp/dijkstra.hpp"

#include <gtest/gtest.h>

#include "tests/sssp/test_graphs.hpp"

namespace sssp::algo {
namespace {

using graph::kInfiniteDistance;

TEST(Dijkstra, DiamondDistances) {
  const auto g = testing::diamond();
  const SsspResult r = dijkstra(g, 0);
  ASSERT_EQ(r.distances.size(), 4u);
  EXPECT_EQ(r.distances[0], 0u);
  EXPECT_EQ(r.distances[1], 5u);
  EXPECT_EQ(r.distances[2], 3u);
  EXPECT_EQ(r.distances[3], 5u);
  EXPECT_EQ(r.algorithm, "dijkstra");
  EXPECT_EQ(r.reached_count(), 4u);
}

TEST(Dijkstra, RingDistances) {
  const auto g = testing::ring(100);
  const auto dist = dijkstra_distances(g, 0);
  for (graph::VertexId v = 0; v < 100; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Dijkstra, NonZeroSource) {
  const auto g = testing::ring(10);
  const auto dist = dijkstra_distances(g, 7);
  EXPECT_EQ(dist[7], 0u);
  EXPECT_EQ(dist[8], 1u);
  EXPECT_EQ(dist[6], 9u);  // wraps around the cycle
}

TEST(Dijkstra, UnreachableVerticesStayInfinite) {
  // Two components: 0->1 and isolated 2.
  const auto g = graph::build_csr(3, {{0, 1, 4}});
  const auto dist = dijkstra_distances(g, 0);
  EXPECT_EQ(dist[1], 4u);
  EXPECT_EQ(dist[2], kInfiniteDistance);
}

TEST(Dijkstra, SingleVertexGraph) {
  const auto g = graph::build_csr(1, {});
  const auto dist = dijkstra_distances(g, 0);
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_EQ(dist[0], 0u);
}

TEST(Dijkstra, PicksShorterOfParallelEdges) {
  graph::BuildOptions opts;
  opts.dedupe_parallel_edges = false;
  const auto g = graph::build_csr(2, {{0, 1, 9}, {0, 1, 2}}, opts);
  EXPECT_EQ(dijkstra_distances(g, 0)[1], 2u);
}

TEST(Dijkstra, ZeroWeightEdges) {
  const auto g = graph::build_csr(3, {{0, 1, 0}, {1, 2, 0}});
  const auto dist = dijkstra_distances(g, 0);
  EXPECT_EQ(dist[1], 0u);
  EXPECT_EQ(dist[2], 0u);
}

TEST(Dijkstra, OutOfRangeSourceThrows) {
  const auto g = testing::ring(4);
  EXPECT_THROW(dijkstra_distances(g, 4), std::invalid_argument);
}

TEST(Dijkstra, LongChainNoOverflow) {
  // 1000 vertices, max weights: distance ~ 1000 * (2^32 - 1) exceeds
  // 32 bits; Distance is 64-bit so this must be exact.
  std::vector<graph::Edge> edges;
  const graph::Weight w = 0xFFFFFFFFu;
  for (graph::VertexId v = 0; v + 1 < 1000; ++v) edges.push_back({v, v + 1, w});
  const auto g = graph::build_csr(1000, std::move(edges));
  const auto dist = dijkstra_distances(g, 0);
  EXPECT_EQ(dist[999], 999ull * w);
}

TEST(CountDistanceMismatches, CountsDifferencesAndSizeGap) {
  EXPECT_EQ(count_distance_mismatches({1, 2, 3}, {1, 2, 3}), 0u);
  EXPECT_EQ(count_distance_mismatches({1, 9, 3}, {1, 2, 3}), 1u);
  EXPECT_EQ(count_distance_mismatches({1, 2}, {1, 2, 3}), 1u);
}

}  // namespace
}  // namespace sssp::algo
