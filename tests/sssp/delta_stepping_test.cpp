#include "sssp/delta_stepping.hpp"

#include <gtest/gtest.h>

#include "sssp/dijkstra.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::algo {
namespace {

TEST(DeltaStepping, DiamondDistances) {
  const auto g = testing::diamond();
  const SsspResult r = delta_stepping(g, 0, {.delta = 2});
  EXPECT_EQ(r.distances, dijkstra_distances(g, 0));
}

TEST(DeltaStepping, HeuristicDeltaWorks) {
  const auto g = testing::random_graph(400, 4.0, 60, 11);
  const SsspResult r = delta_stepping(g, 0);  // delta = 0 -> heuristic
  EXPECT_EQ(count_distance_mismatches(r.distances, dijkstra_distances(g, 0)),
            0u);
}

TEST(DeltaStepping, OutOfRangeSourceThrows) {
  const auto g = testing::ring(4);
  EXPECT_THROW(delta_stepping(g, 99), std::invalid_argument);
}

TEST(DeltaStepping, UnreachableVerticesStayInfinite) {
  const auto g = graph::build_csr(4, {{0, 1, 3}});
  const SsspResult r = delta_stepping(g, 0, {.delta = 2});
  EXPECT_EQ(r.distances[2], graph::kInfiniteDistance);
  EXPECT_EQ(r.distances[3], graph::kInfiniteDistance);
}

TEST(DeltaStepping, HugeDeltaDegeneratesToBellmanFordButExact) {
  const auto g = testing::random_graph(300, 5.0, 30, 3);
  const SsspResult r = delta_stepping(g, 0, {.delta = 1u << 30});
  EXPECT_EQ(count_distance_mismatches(r.distances, dijkstra_distances(g, 0)),
            0u);
}

TEST(DeltaStepping, DeltaOneDegeneratesToDijkstraLikePhases) {
  const auto g = testing::random_graph(300, 5.0, 30, 4);
  const SsspResult r = delta_stepping(g, 0, {.delta = 1});
  EXPECT_EQ(count_distance_mismatches(r.distances, dijkstra_distances(g, 0)),
            0u);
  // With delta=1 every edge is heavy, so no redundant work: improving
  // relaxations should be close to optimal (one per distance improvement
  // in Dijkstra order, where ties may add a few).
  EXPECT_LE(r.improving_relaxations, 2 * r.reached_count());
}

// Property sweep: exactness across deltas, seeds, and graph shapes.
struct DeltaCase {
  std::uint64_t seed;
  graph::Distance delta;
};

class DeltaSteppingProperty : public ::testing::TestWithParam<DeltaCase> {};

TEST_P(DeltaSteppingProperty, MatchesDijkstra) {
  const auto [seed, delta] = GetParam();
  const auto g = testing::random_graph(600, 4.0, 99, seed);
  const auto src = static_cast<graph::VertexId>(seed % 600);
  const SsspResult r = delta_stepping(g, src, {.delta = delta});
  EXPECT_EQ(count_distance_mismatches(r.distances,
                                      dijkstra_distances(g, src)),
            0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeltaSteppingProperty,
    ::testing::Values(DeltaCase{1, 1}, DeltaCase{1, 7}, DeltaCase{1, 50},
                      DeltaCase{1, 500}, DeltaCase{2, 3}, DeltaCase{2, 25},
                      DeltaCase{3, 10}, DeltaCase{3, 100}, DeltaCase{4, 64},
                      DeltaCase{5, 2}),
    [](const ::testing::TestParamInfo<DeltaCase>& tpi) {
      return "seed" + std::to_string(tpi.param.seed) + "_delta" +
             std::to_string(tpi.param.delta);
    });

}  // namespace
}  // namespace sssp::algo
