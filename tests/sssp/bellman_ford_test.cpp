#include "sssp/bellman_ford.hpp"

#include <gtest/gtest.h>

#include "sssp/dijkstra.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::algo {
namespace {

TEST(BellmanFord, DiamondDistances) {
  const auto g = testing::diamond();
  const SsspResult r = bellman_ford(g, 0);
  EXPECT_EQ(r.distances, dijkstra_distances(g, 0));
  EXPECT_EQ(r.algorithm, "bellman-ford");
}

TEST(BellmanFord, MatchesDijkstraOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto g = testing::random_graph(500, 4.0, 50, seed);
    const auto expected = dijkstra_distances(g, 0);
    const SsspResult r = bellman_ford(g, 0);
    EXPECT_EQ(count_distance_mismatches(r.distances, expected), 0u)
        << "seed " << seed;
  }
}

TEST(BellmanFord, ParallelMatchesSerial) {
  const auto g = testing::random_graph(2000, 5.0, 99, 42);
  const SsspResult serial = bellman_ford(g, 0, {.parallel = false});
  const SsspResult parallel = bellman_ford(g, 0, {.parallel = true});
  EXPECT_EQ(count_distance_mismatches(parallel.distances, serial.distances),
            0u);
}

TEST(BellmanFord, IterationCountBoundedByLongestPath) {
  // Ring of n vertices: exactly n-1 frontier rounds (plus final empty).
  const auto g = testing::ring(64);
  const SsspResult r = bellman_ford(g, 0);
  EXPECT_EQ(r.num_iterations(), 64u);  // last round relaxes into source
}

TEST(BellmanFord, StatsAreConsistent) {
  const auto g = testing::random_graph(300, 3.0, 20, 7);
  const SsspResult r = bellman_ford(g, 0);
  std::uint64_t improving = 0;
  for (const auto& it : r.iterations) {
    EXPECT_LE(it.x3, it.improving_relaxations);
    EXPECT_EQ(it.x4, it.x3);
    improving += it.improving_relaxations;
  }
  EXPECT_EQ(improving, r.improving_relaxations);
  // Every reachable non-source vertex improved at least once.
  EXPECT_GE(r.improving_relaxations, r.reached_count() - 1);
}

TEST(BellmanFord, SourceOnlyGraph) {
  const auto g = graph::build_csr(3, {});
  const SsspResult r = bellman_ford(g, 1);
  EXPECT_EQ(r.distances[1], 0u);
  EXPECT_EQ(r.distances[0], graph::kInfiniteDistance);
  EXPECT_EQ(r.num_iterations(), 1u);
}

TEST(BellmanFord, OutOfRangeSourceThrows) {
  const auto g = testing::ring(4);
  EXPECT_THROW(bellman_ford(g, 9), std::invalid_argument);
}

}  // namespace
}  // namespace sssp::algo
