// Shared fixtures for the SSSP algorithm tests: small hand-checked
// graphs plus deterministic random graphs for property testing.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace sssp::algo::testing {

// 0 -5-> 1 -1-> 2, 0 -3-> 2, 2 -2-> 3: distances {0, 5, 3, 5}.
inline graph::CsrGraph diamond() {
  return graph::build_csr(4, {{0, 1, 5}, {1, 2, 1}, {0, 2, 3}, {2, 3, 2}});
}

// Directed cycle of n vertices, unit weights: dist(k) = k.
inline graph::CsrGraph ring(graph::VertexId n) {
  std::vector<graph::Edge> edges;
  for (graph::VertexId v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n, 1});
  return graph::build_csr(n, std::move(edges));
}

// Erdos-Renyi-style random digraph with ~avg_degree out-edges per vertex
// and uniform weights in [1, max_weight]. Deterministic per seed.
inline graph::CsrGraph random_graph(std::size_t n, double avg_degree,
                                    graph::Weight max_weight,
                                    std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<graph::Edge> edges;
  const auto m = static_cast<std::size_t>(static_cast<double>(n) * avg_degree);
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto u = static_cast<graph::VertexId>(rng.next_below(n));
    const auto v = static_cast<graph::VertexId>(rng.next_below(n));
    const auto w = static_cast<graph::Weight>(rng.next_range(1, max_weight));
    edges.push_back({u, v, w});
  }
  return graph::build_csr(n, std::move(edges));
}

}  // namespace sssp::algo::testing
