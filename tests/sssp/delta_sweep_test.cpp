#include "sssp/delta_sweep.hpp"

#include <gtest/gtest.h>

#include "sim/run.hpp"
#include "sssp/near_far.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::algo {
namespace {

class DeltaSweepTest : public ::testing::Test {
 protected:
  sim::DeviceSpec device_ = sim::DeviceSpec::jetson_tk1();
  sim::PinnedDvfs policy_{device_.max_frequencies()};
};

TEST_F(DeltaSweepTest, FindsTimeMinimizingDelta) {
  const auto g = testing::random_graph(2000, 5.0, 99, 17);
  DeltaSweepOptions opts;
  opts.min_delta = 1;
  opts.max_delta = 1 << 16;
  const DeltaSweepResult sweep = sweep_delta(g, 0, device_, policy_, opts);
  ASSERT_FALSE(sweep.points.empty());
  // best_delta must be the argmin of the recorded points.
  double best = 1e300;
  graph::Distance argmin = 0;
  for (const auto& p : sweep.points) {
    if (p.simulated_seconds < best) {
      best = p.simulated_seconds;
      argmin = p.delta;
    }
  }
  EXPECT_EQ(sweep.best_delta, argmin);
}

TEST_F(DeltaSweepTest, GridIsGeometricAndDeduplicated) {
  const auto g = testing::ring(100);
  DeltaSweepOptions opts;
  opts.min_delta = 1;
  opts.max_delta = 64;
  opts.ratio = 2.0;
  const DeltaSweepResult sweep = sweep_delta(g, 0, device_, policy_, opts);
  ASSERT_EQ(sweep.points.size(), 7u);  // 1, 2, 4, ..., 64
  for (std::size_t i = 1; i < sweep.points.size(); ++i)
    EXPECT_EQ(sweep.points[i].delta, sweep.points[i - 1].delta * 2);
}

TEST_F(DeltaSweepTest, ParallelismGrowsWithDelta) {
  const auto g = testing::random_graph(3000, 6.0, 99, 23);
  DeltaSweepOptions opts;
  opts.min_delta = 1;
  opts.max_delta = 1 << 14;
  opts.ratio = 4.0;
  const DeltaSweepResult sweep = sweep_delta(g, 0, device_, policy_, opts);
  ASSERT_GE(sweep.points.size(), 3u);
  // Figure 2's shape: average parallelism is (weakly) increasing in delta.
  EXPECT_LT(sweep.points.front().average_parallelism,
            sweep.points.back().average_parallelism);
  // Figure 3's shape: iteration count decreasing in delta.
  EXPECT_GT(sweep.points.front().iterations, sweep.points.back().iterations);
}

TEST_F(DeltaSweepTest, RejectsBadRanges) {
  const auto g = testing::ring(10);
  DeltaSweepOptions opts;
  opts.min_delta = 0;
  EXPECT_THROW(sweep_delta(g, 0, device_, policy_, opts),
               std::invalid_argument);
  opts.min_delta = 100;
  opts.max_delta = 1;
  EXPECT_THROW(sweep_delta(g, 0, device_, policy_, opts),
               std::invalid_argument);
  opts = DeltaSweepOptions{};
  opts.ratio = 1.0;
  EXPECT_THROW(sweep_delta(g, 0, device_, policy_, opts),
               std::invalid_argument);
}

TEST_F(DeltaSweepTest, PointsRecordPeakLoad) {
  const auto g = testing::random_graph(1000, 5.0, 99, 31);
  DeltaSweepOptions opts;
  opts.min_delta = 4;
  opts.max_delta = 4096;
  opts.ratio = 8.0;
  const DeltaSweepResult sweep = sweep_delta(g, 0, device_, policy_, opts);
  for (const auto& p : sweep.points) {
    EXPECT_GE(p.max_x2, static_cast<std::uint64_t>(p.average_parallelism));
    EXPECT_GT(p.simulated_seconds, 0.0);
    EXPECT_GT(p.average_power_w, 0.0);
  }
}

}  // namespace
}  // namespace sssp::algo
