#include "sssp/multi_source.hpp"

#include <gtest/gtest.h>

#include "sssp/near_far.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::algo {
namespace {

SsspRunner near_far_runner(graph::Distance delta) {
  return [delta](const graph::CsrGraph& g, graph::VertexId source) {
    return near_far(g, source, {.delta = delta});
  };
}

TEST(MultiSource, AggregatesOverRequestedSources) {
  const auto g = testing::random_graph(2000, 5.0, 99, 5);
  MultiSourceOptions options;
  options.num_sources = 6;
  const auto summary = run_multi_source(g, near_far_runner(64), options);
  EXPECT_EQ(summary.sources.size(), 6u);
  EXPECT_EQ(summary.average_parallelism.size(), 6u);
  EXPECT_EQ(summary.iteration_counts.size(), 6u);
  EXPECT_GT(summary.mean_average_parallelism, 0.0);
  EXPECT_GT(summary.mean_iterations, 0.0);
  std::size_t total_iterations = 0;
  for (const std::size_t c : summary.iteration_counts) total_iterations += c;
  EXPECT_EQ(summary.all_iterations.size(), total_iterations);
}

TEST(MultiSource, DeterministicPerSeed) {
  const auto g = testing::random_graph(1000, 4.0, 50, 6);
  MultiSourceOptions options;
  options.num_sources = 4;
  options.seed = 99;
  const auto a = run_multi_source(g, near_far_runner(32), options);
  const auto b = run_multi_source(g, near_far_runner(32), options);
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_EQ(a.mean_iterations, b.mean_iterations);
}

TEST(MultiSource, ReachFilterSkipsPoorSources) {
  // Graph: a large cycle plus isolated vertices; the filter must pick
  // only cycle members.
  std::vector<graph::Edge> edges;
  for (graph::VertexId v = 0; v < 500; ++v)
    edges.push_back({v, (v + 1) % 500, 1});
  const auto g = graph::build_csr(1000, std::move(edges));  // 500 isolated
  MultiSourceOptions options;
  options.num_sources = 5;
  options.min_reach_fraction = 0.4;
  const auto summary = run_multi_source(g, near_far_runner(8), options);
  for (const auto source : summary.sources) EXPECT_LT(source, 500u);
}

TEST(MultiSource, ImpossibleReachThrows) {
  const auto g = graph::build_csr(10, {{0, 1, 1}});
  MultiSourceOptions options;
  options.num_sources = 2;
  options.min_reach_fraction = 0.9;  // nothing reaches 90%
  EXPECT_THROW(run_multi_source(g, near_far_runner(8), options),
               std::invalid_argument);
}

TEST(MultiSource, RejectsBadArguments) {
  const auto g = testing::ring(10);
  MultiSourceOptions options;
  options.num_sources = 0;
  EXPECT_THROW(run_multi_source(g, near_far_runner(8), options),
               std::invalid_argument);
  options = {};
  options.min_reach_fraction = 1.5;
  EXPECT_THROW(run_multi_source(g, near_far_runner(8), options),
               std::invalid_argument);
  const graph::CsrGraph empty(std::vector<graph::EdgeIndex>{0}, {}, {});
  EXPECT_THROW(run_multi_source(empty, near_far_runner(8), {}),
               std::invalid_argument);
}

// The batched overload must draw the identical source sample (the seed
// contract) and agree with the per-source runner on the per-source
// improving-relaxation-independent aggregates that only depend on the
// distances (reachability via iteration presence is too loose — compare
// sources and result counts, then spot-check one lane's distances).
TEST(MultiSource, BatchedOverloadSamplesIdenticalSources) {
  const auto g = testing::random_graph(2000, 5.0, 40, 21);
  MultiSourceOptions options;
  options.num_sources = 6;
  options.seed = 123;

  const auto sequential = run_multi_source(g, near_far_runner(0), options);
  for (const auto strategy :
       {BatchStrategy::kFused, BatchStrategy::kIndependent}) {
    BatchOptions batch;
    batch.strategy = strategy;
    const auto batched = run_multi_source(g, batch, options);
    EXPECT_EQ(batched.sources, sequential.sources);
    EXPECT_EQ(batched.average_parallelism.size(), 6u);
    EXPECT_EQ(batched.iteration_counts.size(), 6u);
    EXPECT_GT(batched.mean_iterations, 0.0);
    EXPECT_GT(batched.mean_improving_relaxations, 0.0);
  }
}

// Independent-strategy lanes run the very same serial near-far pipeline
// per source, so the whole summary matches the runner overload exactly.
TEST(MultiSource, BatchedIndependentMatchesRunnerAggregates) {
  const auto g = testing::random_graph(1500, 4.0, 25, 33);
  MultiSourceOptions options;
  options.num_sources = 5;
  options.seed = 7;

  const auto sequential = run_multi_source(
      g,
      [](const graph::CsrGraph& graph, graph::VertexId source) {
        return near_far(graph, source, {.parallel = false});
      },
      options);
  BatchOptions batch;
  batch.strategy = BatchStrategy::kIndependent;
  const auto batched = run_multi_source(g, batch, options);
  EXPECT_EQ(batched.sources, sequential.sources);
  EXPECT_EQ(batched.iteration_counts, sequential.iteration_counts);
  EXPECT_EQ(batched.improving_relaxations, sequential.improving_relaxations);
  EXPECT_EQ(batched.mean_iterations, sequential.mean_iterations);
}

}  // namespace
}  // namespace sssp::algo
