// Format-level tests for the TSSSPCK1 checkpoint container
// (docs/ROBUSTNESS.md, "Checkpoint & recovery"): byte-stable
// round-trips, rejection of every kind of structural damage (short
// reads, flipped bits, trailing garbage, foreign graphs), and the
// atomicity of save_checkpoint_file under the ckpt.* crash failpoints.
#include "ckpt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/self_tuning.hpp"
#include "fault/failpoint.hpp"
#include "graph/io_error.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::ckpt {
namespace {

using algo::testing::random_graph;

// One graph + mid-run state shared by the whole suite (building it is
// the expensive part).
class CheckpointFormatTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new graph::CsrGraph(random_graph(1200, 5.0, 99, 17));
    options_ = new core::SelfTuningOptions();
    options_->set_point = 400.0;
    options_->measure_controller_time = false;
    core::SelfTuningRun run(*graph_, 3, *options_);
    for (int i = 0; i < 6 && !run.done(); ++i) run.step();
    state_ = new RunState();
    state_->meta.algorithm = "self-tuning";
    state_->meta.graph_fingerprint = graph_fingerprint(*graph_);
    state_->meta.num_vertices = graph_->num_vertices();
    state_->meta.num_edges = graph_->num_edges();
    state_->meta.source = 3;
    state_->meta.iterations_completed = run.iterations_completed();
    state_->options = *options_;
    state_->snapshot = run.snapshot();
    bytes_ = new std::string(serialize_checkpoint(*state_));
  }
  static void TearDownTestSuite() {
    delete bytes_;
    delete state_;
    delete options_;
    delete graph_;
  }
  void TearDown() override {
    fault::FailpointRegistry::global().disarm_all();
  }

  static graph::CsrGraph* graph_;
  static core::SelfTuningOptions* options_;
  static RunState* state_;
  static std::string* bytes_;
};

graph::CsrGraph* CheckpointFormatTest::graph_ = nullptr;
core::SelfTuningOptions* CheckpointFormatTest::options_ = nullptr;
RunState* CheckpointFormatTest::state_ = nullptr;
std::string* CheckpointFormatTest::bytes_ = nullptr;

TEST_F(CheckpointFormatTest, RoundTripIsByteStable) {
  const RunState loaded = deserialize_checkpoint(*bytes_);
  EXPECT_EQ(loaded.meta, state_->meta);
  EXPECT_EQ(loaded.snapshot, state_->snapshot);
  // serialize(deserialize(b)) == b: the format has one canonical
  // encoding, so repeated save/load cycles cannot drift.
  EXPECT_EQ(serialize_checkpoint(loaded), *bytes_);
}

TEST_F(CheckpointFormatTest, LoadedStateValidatesAgainstItsGraph) {
  const RunState loaded = deserialize_checkpoint(*bytes_);
  EXPECT_NO_THROW(validate_against(loaded, *graph_));
}

TEST_F(CheckpointFormatTest, EveryStrictPrefixIsRejected) {
  // Exhaustive over the header region, sampled beyond it (a full sweep
  // of an ~100 KB checkpoint would deserialize 100k times).
  const std::size_t n = bytes_->size();
  auto expect_rejected = [&](std::size_t len) {
    EXPECT_THROW(deserialize_checkpoint(std::string_view(*bytes_).substr(
                     0, len)),
                 graph::GraphIoError)
        << "prefix of " << len << " / " << n << " bytes was accepted";
  };
  for (std::size_t len = 0; len < std::min<std::size_t>(n, 96); ++len)
    expect_rejected(len);
  for (std::size_t len = 96; len < n; len += 997) expect_rejected(len);
  expect_rejected(n - 1);
}

TEST_F(CheckpointFormatTest, SampledBitFlipsAreRejected) {
  for (std::size_t pos = 0; pos < bytes_->size(); pos += 491) {
    std::string damaged = *bytes_;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x08);
    EXPECT_THROW(deserialize_checkpoint(damaged), graph::GraphIoError)
        << "bit flip at byte " << pos << " was accepted";
  }
}

TEST_F(CheckpointFormatTest, TrailingGarbageIsRejected) {
  std::string damaged = *bytes_ + '\0';
  try {
    deserialize_checkpoint(damaged);
    FAIL() << "trailing byte accepted";
  } catch (const graph::GraphIoError& e) {
    EXPECT_EQ(e.error_class(), graph::IoErrorClass::kParse);
  }
}

TEST_F(CheckpointFormatTest, WrongMagicIsAVersionError) {
  std::string damaged = *bytes_;
  damaged[0] = 'X';
  try {
    deserialize_checkpoint(damaged);
    FAIL() << "wrong magic accepted";
  } catch (const graph::GraphIoError& e) {
    EXPECT_EQ(e.error_class(), graph::IoErrorClass::kVersion);
  }
}

TEST_F(CheckpointFormatTest, ForeignGraphIsRejected) {
  const auto other = random_graph(1200, 5.0, 99, 18);  // same shape, new edges
  const RunState loaded = deserialize_checkpoint(*bytes_);
  try {
    validate_against(loaded, other);
    FAIL() << "foreign graph accepted";
  } catch (const graph::GraphIoError& e) {
    EXPECT_EQ(e.error_class(), graph::IoErrorClass::kParse);
  }
}

TEST_F(CheckpointFormatTest, SourceOutOfRangeIsRejected) {
  RunState tampered = deserialize_checkpoint(*bytes_);
  tampered.meta.source =
      static_cast<graph::VertexId>(graph_->num_vertices());
  EXPECT_THROW(validate_against(tampered, *graph_), graph::GraphIoError);
}

TEST_F(CheckpointFormatTest, IterationCountMismatchIsRejected) {
  RunState tampered = deserialize_checkpoint(*bytes_);
  tampered.meta.iterations_completed += 1;
  EXPECT_THROW(validate_against(tampered, *graph_), graph::GraphIoError);
}

TEST_F(CheckpointFormatTest, FingerprintIsStructureSensitive) {
  EXPECT_EQ(graph_fingerprint(*graph_), graph_fingerprint(*graph_));
  EXPECT_NE(graph_fingerprint(*graph_),
            graph_fingerprint(random_graph(1200, 5.0, 99, 18)));
}

// --- file layer + crash failpoints ---

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

TEST_F(CheckpointFormatTest, SaveLoadFileRoundTrips) {
  const std::string path = temp_path("ok.ckpt");
  const std::uint64_t written = save_checkpoint_file(path, *state_);
  EXPECT_EQ(written, bytes_->size());
  EXPECT_FALSE(file_exists(path + ".tmp"));  // renamed away
  const RunState loaded = load_checkpoint_file(path);
  EXPECT_EQ(serialize_checkpoint(loaded), *bytes_);
  std::remove(path.c_str());
}

TEST_F(CheckpointFormatTest, CrashBeforeWriteTouchesNothing) {
  const std::string path = temp_path("before.ckpt");
  std::remove(path.c_str());
  fault::FailpointRegistry::global().arm("ckpt.crash_before_write");
  EXPECT_THROW(save_checkpoint_file(path, *state_), InjectedCrash);
  EXPECT_FALSE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST_F(CheckpointFormatTest, CrashAfterTmpPreservesPreviousCheckpoint) {
  const std::string path = temp_path("aftertmp.ckpt");
  save_checkpoint_file(path, *state_);  // the previous good checkpoint
  fault::FailpointRegistry::global().arm("ckpt.crash_after_tmp");
  EXPECT_THROW(save_checkpoint_file(path, *state_), InjectedCrash);
  fault::FailpointRegistry::global().disarm_all();
  // The crash landed between tmp-write and rename: the tmp file exists,
  // the final path still holds the previous complete checkpoint.
  EXPECT_TRUE(file_exists(path + ".tmp"));
  EXPECT_EQ(serialize_checkpoint(load_checkpoint_file(path)), *bytes_);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(CheckpointFormatTest, TornWriteLandsButNeverLoads) {
  const std::string path = temp_path("torn.ckpt");
  fault::FailpointRegistry::global().arm("ckpt.torn_write");
  EXPECT_THROW(save_checkpoint_file(path, *state_), InjectedCrash);
  fault::FailpointRegistry::global().disarm_all();
  // The torn file reached the final path (simulating a crash mid-flush
  // on a filesystem without atomic rename semantics) — the loader must
  // refuse it with a structured error, never return partial state.
  ASSERT_TRUE(file_exists(path));
  EXPECT_THROW(load_checkpoint_file(path), graph::GraphIoError);
  std::remove(path.c_str());
}

TEST_F(CheckpointFormatTest, BitFlipIsCaughtAtLoad) {
  const std::string path = temp_path("flip.ckpt");
  fault::FailpointRegistry::global().arm("ckpt.bit_flip");
  EXPECT_NO_THROW(save_checkpoint_file(path, *state_));  // write "succeeds"
  fault::FailpointRegistry::global().disarm_all();
  try {
    load_checkpoint_file(path);
    FAIL() << "flipped checkpoint accepted";
  } catch (const graph::GraphIoError& e) {
    EXPECT_EQ(e.error_class(), graph::IoErrorClass::kChecksum);
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointFormatTest, MissingFileIsAnOpenError) {
  try {
    load_checkpoint_file(temp_path("no_such.ckpt"));
    FAIL() << "missing file accepted";
  } catch (const graph::GraphIoError& e) {
    EXPECT_EQ(e.error_class(), graph::IoErrorClass::kOpen);
  }
}

}  // namespace
}  // namespace sssp::ckpt
