// The headline guarantee of the checkpoint subsystem
// (docs/ROBUSTNESS.md, "Checkpoint & recovery"): a run killed at any
// iteration boundary and resumed from its checkpoint byte-reproduces
// the uninterrupted run — distances, parents, and the full X1-X4 /
// delta trajectory — at any thread count, even with probabilistic
// failpoints armed (their RNG streams travel in the checkpoint).
#include "ckpt/checkpointed_run.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/self_tuning.hpp"
#include "fault/failpoint.hpp"
#include "sssp/dijkstra.hpp"
#include "tests/sssp/test_graphs.hpp"
#include "util/run_control.hpp"
#include "util/thread_pool.hpp"

namespace sssp::ckpt {
namespace {

using algo::testing::random_graph;

core::SelfTuningOptions base_options() {
  core::SelfTuningOptions options;
  options.set_point = 600.0;
  options.measure_controller_time = false;  // bit-deterministic trajectory
  options.parallel_threshold = 16;  // exercise the parallel pipeline
  return options;
}

algo::SsspResult run_uninterrupted(const graph::CsrGraph& g,
                                   graph::VertexId source,
                                   const core::SelfTuningOptions& options) {
  core::SelfTuningRun run(g, source, options);
  while (run.step()) {
  }
  return run.take_result();
}

void expect_identical(const algo::SsspResult& a, const algo::SsspResult& b) {
  EXPECT_EQ(a.distances, b.distances);
  EXPECT_EQ(a.parents, b.parents);
  EXPECT_EQ(a.improving_relaxations, b.improving_relaxations);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i)
    EXPECT_EQ(a.iterations[i], b.iterations[i]) << "iteration " << i;
}

RunState snapshot_state(const graph::CsrGraph& g, graph::VertexId source,
                        const core::SelfTuningOptions& options,
                        const core::SelfTuningRun& run) {
  RunState state;
  state.meta.algorithm = "self-tuning";
  state.meta.graph_fingerprint = graph_fingerprint(g);
  state.meta.num_vertices = g.num_vertices();
  state.meta.num_edges = g.num_edges();
  state.meta.source = source;
  state.meta.iterations_completed = run.iterations_completed();
  state.options = options;
  state.snapshot = run.snapshot();
  state.failpoints = fault::FailpointRegistry::global().capture_runtime();
  return state;
}

struct ResumeCase {
  std::size_t kill_after;  // iterations completed before the "crash"
  std::size_t threads;
};

class ResumeExactness : public ::testing::TestWithParam<ResumeCase> {
 protected:
  void TearDown() override {
    fault::FailpointRegistry::global().disarm_all();
    util::ThreadPool::set_global_threads(0);
  }
};

TEST_P(ResumeExactness, KillAndResumeBitIdentical) {
  const auto [kill_after, threads] = GetParam();
  util::ThreadPool::set_global_threads(threads);
  const auto g = random_graph(2500, 6.0, 99, 23);
  const auto options = base_options();
  const auto baseline = run_uninterrupted(g, 1, options);
  ASSERT_GT(baseline.iterations.size(), kill_after);

  // "Crash": step K iterations, checkpoint through the full serialize /
  // deserialize pipeline, abandon the run object.
  core::SelfTuningRun doomed(g, 1, options);
  for (std::size_t i = 0; i < kill_after; ++i) ASSERT_TRUE(doomed.step());
  const std::string bytes =
      serialize_checkpoint(snapshot_state(g, 1, options, doomed));

  // "New process": load, validate, resume, run to completion.
  RunState loaded = deserialize_checkpoint(bytes);
  validate_against(loaded, g);
  EXPECT_EQ(loaded.meta.iterations_completed, kill_after);
  core::SelfTuningRun resumed(g, loaded.options, std::move(loaded.snapshot));
  EXPECT_EQ(resumed.iterations_completed(), kill_after);
  while (resumed.step()) {
  }
  expect_identical(baseline, resumed.take_result());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ResumeExactness,
    ::testing::Values(ResumeCase{1, 1}, ResumeCase{3, 1}, ResumeCase{7, 1},
                      ResumeCase{1, 4}, ResumeCase{3, 4}, ResumeCase{7, 4}),
    [](const ::testing::TestParamInfo<ResumeCase>& tpi) {
      return "kill" + std::to_string(tpi.param.kill_after) + "_t" +
             std::to_string(tpi.param.threads);
    });

class ResumeDriverTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::FailpointRegistry::global().disarm_all();
  }
  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + name;
  }
};

TEST_F(ResumeDriverTest, FailpointStreamsResumeExactly) {
  // A probabilistic failpoint poisons SGD observations at random. The
  // checkpoint carries its RNG stream, so the resumed run must see the
  // *same* remaining fire pattern as the uninterrupted run — the
  // controller trajectories (delta, degraded flags) stay bit-identical.
  const auto g = random_graph(2000, 5.0, 99, 31);
  const auto options = base_options();
  const char* kSpec = "sgd.observe.nan=0.35,11";

  auto& registry = fault::FailpointRegistry::global();
  registry.disarm_all();
  registry.arm_list(kSpec);
  const auto baseline = run_uninterrupted(g, 0, options);
  ASSERT_GT(baseline.iterations.size(), 8u);

  registry.disarm_all();
  registry.arm_list(kSpec);
  core::SelfTuningRun doomed(g, 0, options);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(doomed.step());
  const std::string bytes =
      serialize_checkpoint(snapshot_state(g, 0, options, doomed));

  // New process: arm from the same spec (fresh streams), then restore
  // the checkpointed streams over them — mid-sequence, not at the seed.
  registry.disarm_all();
  registry.arm_list(kSpec);
  RunState loaded = deserialize_checkpoint(bytes);
  registry.restore_runtime(loaded.failpoints);
  core::SelfTuningRun resumed(g, loaded.options, std::move(loaded.snapshot));
  while (resumed.step()) {
  }
  expect_identical(baseline, resumed.take_result());
}

TEST_F(ResumeDriverTest, PendingStopAbortsMidIteration) {
  const auto g = random_graph(1500, 5.0, 99, 41);
  auto options = base_options();
  util::RunControl control;
  options.control = &control;
  core::SelfTuningRun run(g, 0, options);
  ASSERT_TRUE(run.step());
  control.request_stop(util::StopReason::kInterrupt);
  try {
    run.step();
    FAIL() << "expected StopRequested";
  } catch (const util::StopRequested& e) {
    EXPECT_EQ(e.reason(), util::StopReason::kInterrupt);
  }
}

TEST_F(ResumeDriverTest, DriverStopsAtBoundaryAndResumes) {
  const auto g = random_graph(2000, 5.0, 99, 47);
  const auto options = base_options();
  const auto baseline = run_uninterrupted(g, 2, options);
  const std::string path = temp_path("driver.ckpt");

  // A stop already pending when the driver polls lands on the iteration
  // boundary: final_on_stop checkpoints there, nothing is torn.
  util::RunControl control;
  control.request_stop(util::StopReason::kInterrupt);
  CheckpointPolicy policy;
  policy.path = path;
  const CheckpointedResult stopped = run_self_tuning_checkpointed(
      g, 2, options, policy, &control, nullptr);
  EXPECT_EQ(stopped.stop, util::StopReason::kInterrupt);
  EXPECT_FALSE(stopped.stopped_mid_iteration);
  EXPECT_EQ(stopped.checkpoints_written, 1u);

  // Resume without any control: the run completes and matches the
  // uninterrupted baseline exactly.
  RunState resume = load_checkpoint_file(path);
  const CheckpointedResult finished = run_self_tuning_checkpointed(
      g, 999 /* ignored on resume */, base_options(), CheckpointPolicy{},
      nullptr, &resume);
  EXPECT_TRUE(finished.resumed);
  EXPECT_EQ(finished.resumed_from_iteration, 0u);
  EXPECT_EQ(finished.stop, util::StopReason::kNone);
  expect_identical(baseline, finished.result);
  std::remove(path.c_str());
}

TEST_F(ResumeDriverTest, CadenceCheckpointsAndMidRunResumeMatch) {
  const auto g = random_graph(2200, 5.0, 99, 53);
  const auto options = base_options();
  const auto baseline = run_uninterrupted(g, 0, options);
  const std::string path = temp_path("cadence.ckpt");

  // Crash (injected) partway through a checkpointed run: the 3rd write
  // dies after the tmp file, so `path` holds the 2nd cadence checkpoint
  // (iteration 4 with every_iterations = 2).
  fault::FailpointRegistry::global().arm_list("ckpt.crash_after_tmp=3");
  CheckpointPolicy policy;
  policy.path = path;
  policy.every_iterations = 2;
  util::RunControl control;
  EXPECT_THROW(run_self_tuning_checkpointed(g, 0, options, policy, &control,
                                            nullptr),
               InjectedCrash);
  fault::FailpointRegistry::global().disarm_all();

  RunState resume = load_checkpoint_file(path);
  EXPECT_EQ(resume.meta.iterations_completed, 4u);
  const CheckpointedResult finished = run_self_tuning_checkpointed(
      g, 0, options, CheckpointPolicy{}, nullptr, &resume);
  EXPECT_TRUE(finished.resumed);
  EXPECT_EQ(finished.resumed_from_iteration, 4u);
  expect_identical(baseline, finished.result);
  EXPECT_EQ(algo::count_distance_mismatches(finished.result.distances,
                                            algo::dijkstra_distances(g, 0)),
            0u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(ResumeDriverTest, ExpiredDeadlineStopsBeforeFirstStep) {
  const auto g = random_graph(1500, 5.0, 99, 59);
  util::RunControl control;
  control.set_deadline(1e-9);
  const CheckpointedResult stopped = run_self_tuning_checkpointed(
      g, 0, base_options(), CheckpointPolicy{}, &control, nullptr);
  EXPECT_EQ(stopped.stop, util::StopReason::kDeadline);
  EXPECT_EQ(stopped.result.iterations.size(), 0u);
}

TEST_F(ResumeDriverTest, ResumeIgnoresCallerOptionsAndSource) {
  // The checkpoint's stored options drive the resumed run; the caller's
  // (different set-point, different source) must not fork the
  // trajectory.
  const auto g = random_graph(1800, 5.0, 99, 61);
  const auto options = base_options();
  const auto baseline = run_uninterrupted(g, 7, options);

  core::SelfTuningRun doomed(g, 7, options);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(doomed.step());
  RunState state = snapshot_state(g, 7, options, doomed);

  auto foreign = base_options();
  foreign.set_point = 5.0;  // would produce a wildly different trajectory
  const CheckpointedResult finished = run_self_tuning_checkpointed(
      g, 0, foreign, CheckpointPolicy{}, nullptr, &state);
  EXPECT_EQ(finished.result.source, 7u);
  expect_identical(baseline, finished.result);
}

}  // namespace
}  // namespace sssp::ckpt
