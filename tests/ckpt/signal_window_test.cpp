// Signal-during-checkpoint-write drills (docs/ROBUSTNESS.md): a SIGINT
// that lands inside save_checkpoint_file's tmp+rename window must never
// tear the protocol. The first signal only sets the cooperative stop
// flag; a second signal — which outside the window hard-exits with
// 128+signo — is *deferred* by the ScopedSignalCritical section until
// the write completes, so the file on disk is always either the old
// complete checkpoint or the new complete one.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "core/self_tuning.hpp"
#include "fault/failpoint.hpp"
#include "graph/io_error.hpp"
#include "tests/sssp/test_graphs.hpp"
#include "util/run_control.hpp"

namespace sssp::ckpt {
namespace {

using algo::testing::random_graph;

RunState make_state(const graph::CsrGraph& g) {
  core::SelfTuningOptions options;
  options.set_point = 400.0;
  options.measure_controller_time = false;
  core::SelfTuningRun run(g, 0, options);
  for (int i = 0; i < 4 && !run.done(); ++i) run.step();
  RunState state;
  state.meta.algorithm = "self-tuning";
  state.meta.graph_fingerprint = graph_fingerprint(g);
  state.meta.num_vertices = g.num_vertices();
  state.meta.num_edges = g.num_edges();
  state.meta.source = 0;
  state.meta.iterations_completed = run.iterations_completed();
  state.options = options;
  state.snapshot = run.snapshot();
  return state;
}

class SignalWindowTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::FailpointRegistry::global().disarm_all();
    util::uninstall_signal_stop();
  }
};

TEST_F(SignalWindowTest, FirstSignalInWriteWindowIsCooperative) {
  const auto g = random_graph(600, 4.0, 50, 31);
  const RunState state = make_state(g);
  const std::string path = ::testing::TempDir() + "signal_window_coop.ckpt";

  util::RunControl control;
  util::install_signal_stop(control);
  // The failpoint raises SIGINT from inside the write window, after the
  // tmp file is open but before the payload is written.
  fault::FailpointRegistry::global().arm("ckpt.signal_in_write");
  const std::uint64_t bytes = save_checkpoint_file(path, state);
  EXPECT_GT(bytes, 0u);

  // The signal was recorded as a cooperative stop...
  EXPECT_EQ(control.reason(), util::StopReason::kInterrupt);
  EXPECT_FALSE(util::signal_hard_exit_pending());
  // ...and the write it interrupted is complete and loadable.
  const RunState loaded = load_checkpoint_file(path);
  EXPECT_EQ(loaded.meta, state.meta);
  EXPECT_NO_THROW(validate_against(loaded, g));
  std::remove(path.c_str());
}

TEST_F(SignalWindowTest, SecondSignalDefersHardExitPastTheWindow) {
  const auto g = random_graph(600, 4.0, 50, 31);
  const RunState state = make_state(g);
  const std::string path = ::testing::TempDir() + "signal_window_hard.ckpt";
  std::remove(path.c_str());

  // The death statement runs in a child process: one SIGINT has already
  // been delivered (cooperative stop) when the in-window SIGINT arrives,
  // so the handler takes the second-signal hard-exit path — which the
  // write window defers until the checkpoint is complete on disk, then
  // exits 128+SIGINT.
  EXPECT_EXIT(
      {
        util::RunControl control;
        util::install_signal_stop(control);
        std::raise(SIGINT);  // first signal, outside the window
        fault::FailpointRegistry::global().arm("ckpt.signal_in_write");
        save_checkpoint_file(path, state);
        std::fprintf(stderr, "deferred exit did not fire\n");
      },
      ::testing::ExitedWithCode(128 + SIGINT), "");

  // The hard exit happened *after* the protocol finished: the file the
  // dying process left behind is a complete, loadable checkpoint.
  const RunState loaded = load_checkpoint_file(path);
  EXPECT_EQ(loaded.meta, state.meta);
  EXPECT_NO_THROW(validate_against(loaded, g));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sssp::ckpt
