#include "verify/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

namespace sssp::verify {
namespace {

FlightEvent make_event(FlightEventKind kind, std::uint64_t iteration) {
  FlightEvent event;
  event.kind = kind;
  event.iteration = iteration;
  return event;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::global().reset();
    set_flight_enabled(false);
  }
  void TearDown() override {
    set_flight_enabled(false);
    FlightRecorder::global().reset();
  }
};

TEST_F(FlightRecorderTest, RecordsInOrder) {
  FlightRecorder recorder;
  for (std::uint64_t i = 0; i < 10; ++i)
    recorder.record(make_event(FlightEventKind::kIteration, i));
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].iteration, i);
  }
}

TEST_F(FlightRecorderTest, RingKeepsOnlyTheNewest) {
  FlightRecorder recorder;
  const std::size_t total = FlightRecorder::kCapacity + 37;
  for (std::uint64_t i = 0; i < total; ++i)
    recorder.record(make_event(FlightEventKind::kIteration, i));
  EXPECT_EQ(recorder.total_recorded(), total);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), FlightRecorder::kCapacity);
  // Oldest-first, contiguous, ending at the last event recorded.
  EXPECT_EQ(events.front().seq, total - FlightRecorder::kCapacity);
  EXPECT_EQ(events.back().seq, total - 1);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
}

TEST_F(FlightRecorderTest, NoteTruncatesSafely) {
  FlightEvent event;
  event.set_note(
      "a very long note that certainly exceeds the thirty-one usable "
      "characters of the slot");
  EXPECT_EQ(event.note[sizeof(event.note) - 1], '\0');
  EXPECT_LT(std::string(event.note).size(), sizeof(event.note));
  event.set_note("");
  EXPECT_EQ(std::string(event.note), "");
}

TEST_F(FlightRecorderTest, GatedHelpersAreNoOpsWhenDisabled) {
  ASSERT_FALSE(flight_enabled());
  record_iteration(1, 2.0, 3, 4, 5, 6, 7);
  record_event(FlightEventKind::kStop, 1, "interrupt");
  EXPECT_EQ(FlightRecorder::global().total_recorded(), 0u);

  set_flight_enabled(true);
  record_iteration(1, 2.0, 3, 4, 5, 6, 7);
  record_event(FlightEventKind::kStop, 1, "interrupt");
  EXPECT_EQ(FlightRecorder::global().total_recorded(), 2u);
  const auto events = FlightRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kIteration);
  EXPECT_EQ(events[0].a, 3u);
  EXPECT_EQ(events[0].e, 7u);
  EXPECT_EQ(events[1].kind, FlightEventKind::kStop);
  EXPECT_EQ(std::string(events[1].note), "interrupt");
}

TEST_F(FlightRecorderTest, JsonDumpCarriesSchemaReasonAndEvents) {
  FlightRecorder recorder;
  auto event = make_event(FlightEventKind::kCertify, 12);
  event.a = 3;
  event.set_note("fail");
  recorder.record(event);
  const std::string json = recorder.dump_json_string("certification-failed");
  EXPECT_NE(json.find("\"schema\":\"tunesssp.flight.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"certification-failed\""),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"certify\""), std::string::npos);
  EXPECT_NE(json.find("\"note\":\"fail\""), std::string::npos);
  EXPECT_NE(json.find("\"failpoints\""), std::string::npos);
}

TEST_F(FlightRecorderTest, SaveWritesFileAndReportsFailure) {
  FlightRecorder recorder;
  recorder.record(make_event(FlightEventKind::kNote, 0));
  const std::string path =
      ::testing::TempDir() + "flight_recorder_test_dump.json";
  ASSERT_TRUE(recorder.save(path, "test"));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("tunesssp.flight.v1"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_FALSE(recorder.save("/nonexistent-dir/nope/flight.json", "test"));
}

TEST_F(FlightRecorderTest, ResetRestartsSequence) {
  FlightRecorder recorder;
  recorder.record(make_event(FlightEventKind::kNote, 0));
  recorder.reset();
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
  recorder.record(make_event(FlightEventKind::kNote, 1));
  EXPECT_EQ(recorder.snapshot().front().seq, 0u);
}

TEST_F(FlightRecorderTest, ConcurrentWritersNeverTearTheSnapshot) {
  FlightRecorder recorder;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 4000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        auto event = make_event(FlightEventKind::kIteration, i);
        event.a = static_cast<std::uint64_t>(t);
        recorder.record(event);
      }
    });
  }
  // Snapshot while the writers hammer the ring: every returned event
  // must be internally consistent (valid writer id, unique seq).
  for (int i = 0; i < 50; ++i) {
    const auto events = recorder.snapshot();
    std::set<std::uint64_t> seqs;
    for (const FlightEvent& event : events) {
      EXPECT_LT(event.a, static_cast<std::uint64_t>(kThreads));
      EXPECT_TRUE(seqs.insert(event.seq).second);
    }
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(recorder.total_recorded(), kThreads * kPerThread);
  EXPECT_EQ(recorder.snapshot().size(), FlightRecorder::kCapacity);
}

}  // namespace
}  // namespace sssp::verify
