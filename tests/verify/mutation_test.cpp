// Mutation-style corruption drills (the ISSUE's "flip one entry"
// acceptance): corrupt a single dist/parent/boundary value in an
// otherwise healthy run and prove the safety net notices — the
// certifier for end-state corruption, the online auditor for in-flight
// corruption.
#include <gtest/gtest.h>

#include <vector>

#include "core/self_tuning.hpp"
#include "fault/failpoint.hpp"
#include "sssp/dijkstra.hpp"
#include "tests/sssp/test_graphs.hpp"
#include "util/thread_pool.hpp"
#include "verify/auditor.hpp"
#include "verify/certifier.hpp"

namespace sssp::verify {
namespace {

core::SelfTuningOptions tuning_options() {
  core::SelfTuningOptions options;
  options.set_point = 500.0;
  options.measure_controller_time = false;
  return options;
}

class MutationTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    util::ThreadPool::set_global_threads(GetParam());
  }
  void TearDown() override {
    fault::FailpointRegistry::global().disarm_all();
    util::ThreadPool::set_global_threads(0);
  }
};

TEST_P(MutationTest, CleanSelfTuningRunCertifies) {
  const auto g = algo::testing::random_graph(2048, 6.0, 100, 21);
  const auto result = core::self_tuning_sssp(g, 0, tuning_options());
  const Certificate cert = certify(g, result);
  EXPECT_TRUE(cert.certified) << cert.summary();
}

TEST_P(MutationTest, CertifierCatchesEverySingleDistanceFlip) {
  const auto g = algo::testing::random_graph(1024, 5.0, 64, 22);
  const auto clean = core::self_tuning_sssp(g, 0, tuning_options());
  // Flip the low bit of one reached non-source label at a time: each
  // single-bit mutation must fail certification (distances are unique
  // shortest values, so any change breaks edge or parent tightness).
  int mutated = 0;
  for (graph::VertexId v = 1; v < g.num_vertices() && mutated < 16; ++v) {
    if (clean.distances[v] == graph::kInfiniteDistance) continue;
    auto corrupt = clean;
    corrupt.distances[v] ^= 1;
    const Certificate cert = certify(g, corrupt);
    EXPECT_FALSE(cert.certified) << "undetected flip at v=" << v;
    EXPECT_GT(cert.violations, 0u);
    ++mutated;
  }
  EXPECT_EQ(mutated, 16);
}

TEST_P(MutationTest, CertifierCatchesParentFlips) {
  const auto g = algo::testing::random_graph(1024, 5.0, 64, 23);
  const auto clean = core::self_tuning_sssp(g, 0, tuning_options());
  ASSERT_FALSE(clean.parents.empty());
  int mutated = 0;
  int detected = 0;
  for (graph::VertexId v = 1; v < g.num_vertices() && mutated < 16; ++v) {
    if (clean.distances[v] == graph::kInfiniteDistance) continue;
    if (clean.parents[v] == graph::kInvalidVertex) continue;
    auto corrupt = clean;
    corrupt.parents[v] ^= 1;
    if (corrupt.parents[v] >= g.num_vertices()) continue;
    ++mutated;
    if (!certify(g, corrupt).certified) ++detected;
  }
  // A flipped parent can coincidentally name another tight predecessor
  // (equal-length path); all other flips must be caught.
  EXPECT_GE(mutated, 8);
  EXPECT_GE(detected, mutated - 2)
      << "too many parent flips went undetected";
}

TEST_P(MutationTest, AuditorCatchesBoundaryCorruptionInFlight) {
  const auto g = algo::testing::random_graph(2048, 6.0, 100, 24);
  fault::FailpointRegistry::global().arm("far.boundary.corrupt=0.2,5");
  auto options = tuning_options();
  options.audit_every = 1;  // quarantine mode: keep running
  const auto result = core::self_tuning_sssp(g, 0, options);
  fault::FailpointRegistry::global().disarm_all();
  EXPECT_GT(result.audits_run, 0u);
  // The injected Eq. 7 corruption must be visible to A2...
  EXPECT_GT(result.audit_violations, 0u);
  // ...and must have quarantined the controller at least once.
  EXPECT_GT(result.controller_degradations, 0u);
  // Quarantine is containment, not abort: distances stay exact.
  const Certificate cert = certify(g, result);
  EXPECT_TRUE(cert.certified) << cert.summary();
  EXPECT_EQ(algo::count_distance_mismatches(result.distances,
                                            algo::dijkstra_distances(g, 0)),
            0u);
}

TEST_P(MutationTest, AuditAbortThrowsAtIterationBoundary) {
  const auto g = algo::testing::random_graph(2048, 6.0, 100, 25);
  fault::FailpointRegistry::global().arm("far.boundary.corrupt=0.5,5");
  auto options = tuning_options();
  options.audit_every = 1;
  options.audit_abort = true;
  EXPECT_THROW(core::self_tuning_sssp(g, 0, options), AuditViolation);
}

TEST_P(MutationTest, AuditorStaysQuietOnHealthyRuns) {
  const auto g = algo::testing::random_graph(2048, 6.0, 100, 26);
  auto options = tuning_options();
  options.audit_every = 1;
  const auto result = core::self_tuning_sssp(g, 0, options);
  EXPECT_GT(result.audits_run, 0u);
  EXPECT_EQ(result.audit_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, MutationTest, ::testing::Values(1, 4),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace sssp::verify
