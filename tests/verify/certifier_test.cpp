#include "verify/certifier.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "sssp/dijkstra.hpp"
#include "tests/sssp/test_graphs.hpp"
#include "util/thread_pool.hpp"

namespace sssp::verify {
namespace {

using algo::testing::diamond;
using algo::testing::random_graph;
using algo::testing::ring;

bool has_kind(const Certificate& cert, ViolationKind kind) {
  return std::any_of(cert.samples.begin(), cert.samples.end(),
                     [kind](const Violation& v) { return v.kind == kind; });
}

TEST(CertifierTest, CertifiesDijkstraOnHandGraphs) {
  for (const auto& g : {diamond(), ring(64)}) {
    const auto result = algo::dijkstra(g, 0);
    const Certificate cert = certify(g, result);
    EXPECT_TRUE(cert.certified) << cert.summary();
    EXPECT_EQ(cert.violations, 0u);
    EXPECT_EQ(cert.vertices_checked, g.num_vertices());
    EXPECT_EQ(cert.edges_checked, g.num_edges());
  }
}

TEST(CertifierTest, CertifiesDijkstraOnRandomGraphs) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto g = random_graph(512, 4.0, 100, seed);
    const Certificate cert = certify(g, algo::dijkstra(g, 0));
    EXPECT_TRUE(cert.certified) << "seed " << seed << ": " << cert.summary();
  }
}

TEST(CertifierTest, StrictModeCrossChecks) {
  const auto g = random_graph(256, 4.0, 50, 9);
  CertifyOptions options;
  options.strict = true;
  const Certificate cert = certify(g, algo::dijkstra(g, 0), options);
  EXPECT_TRUE(cert.certified);
  EXPECT_TRUE(cert.cross_checked);
}

TEST(CertifierTest, StrictModeSkipsAboveVertexCap) {
  const auto g = random_graph(256, 4.0, 50, 9);
  CertifyOptions options;
  options.strict = true;
  options.strict_max_vertices = 16;
  const Certificate cert = certify(g, algo::dijkstra(g, 0), options);
  EXPECT_TRUE(cert.certified);
  EXPECT_FALSE(cert.cross_checked);
}

TEST(CertifierTest, DetectsRaisedDistance) {
  const auto g = random_graph(512, 4.0, 100, 4);
  auto result = algo::dijkstra(g, 0);
  // Raise one settled label: some in-edge now relaxes below it and the
  // parent edge is no longer tight.
  for (graph::VertexId v = 1; v < g.num_vertices(); ++v) {
    if (result.distances[v] == graph::kInfiniteDistance) continue;
    if (v == 0) continue;
    result.distances[v] += 1;
    break;
  }
  const Certificate cert = certify(g, result);
  EXPECT_FALSE(cert.certified);
  EXPECT_GT(cert.violations, 0u);
}

TEST(CertifierTest, DetectsLoweredDistance) {
  const auto g = random_graph(512, 4.0, 100, 5);
  auto result = algo::dijkstra(g, 0);
  for (graph::VertexId v = 1; v < g.num_vertices(); ++v) {
    if (result.distances[v] == graph::kInfiniteDistance ||
        result.distances[v] < 2)
      continue;
    result.distances[v] -= 1;  // claims a path shorter than any real one
    break;
  }
  const Certificate cert = certify(g, result);
  EXPECT_FALSE(cert.certified);
  // A too-small label cannot have a tight parent edge (and may also
  // make out-edges look relaxable).
  EXPECT_TRUE(has_kind(cert, ViolationKind::kParentEdge) ||
              has_kind(cert, ViolationKind::kEdgeRelaxation))
      << cert.summary();
}

TEST(CertifierTest, DetectsFlippedParent) {
  const auto g = random_graph(512, 4.0, 100, 6);
  auto result = algo::dijkstra(g, 0);
  for (graph::VertexId v = 1; v < g.num_vertices(); ++v) {
    if (result.distances[v] == graph::kInfiniteDistance) continue;
    if (result.parents[v] == graph::kInvalidVertex) continue;
    result.parents[v] ^= 1;  // point at a sibling that is not tight
    break;
  }
  const Certificate cert = certify(g, result);
  EXPECT_FALSE(cert.certified) << cert.summary();
}

TEST(CertifierTest, DetectsWrongSourceLabel) {
  const auto g = diamond();
  auto result = algo::dijkstra(g, 0);
  result.distances[0] = 1;
  const Certificate cert = certify(g, result);
  EXPECT_FALSE(cert.certified);
  EXPECT_TRUE(has_kind(cert, ViolationKind::kSourceLabel)) << cert.summary();
}

TEST(CertifierTest, DetectsFiniteLabelOnUnreachableVertex) {
  // diamond() has no in-edges to vertex 0 and none from 3 onward.
  const auto g = graph::build_csr(5, {{0, 1, 5}, {1, 2, 1}, {0, 2, 3},
                                      {2, 3, 2}});
  auto result = algo::dijkstra(g, 0);
  ASSERT_EQ(result.distances[4], graph::kInfiniteDistance);
  result.distances[4] = 7;  // no edge reaches v4: the label is a lie
  const Certificate cert = certify(g, result);
  EXPECT_FALSE(cert.certified);
}

TEST(CertifierTest, DetectsParentOnUnreachableVertex) {
  const auto g = graph::build_csr(5, {{0, 1, 5}, {1, 2, 1}, {0, 2, 3},
                                      {2, 3, 2}});
  auto result = algo::dijkstra(g, 0);
  result.parents[4] = 2;  // INF label but a parent pointer
  const Certificate cert = certify(g, result);
  EXPECT_FALSE(cert.certified);
  EXPECT_TRUE(has_kind(cert, ViolationKind::kUnreachableLabel))
      << cert.summary();
}

TEST(CertifierTest, DetectsParentCycleThroughZeroWeightEdges) {
  // 0 -5-> 1 <-0-> 2: forge a 1 <-> 2 parent cycle where every parent
  // edge is tight (dist 5 + 0 == 5), so only the cycle walk catches it.
  const auto g =
      graph::build_csr(3, {{0, 1, 5}, {1, 2, 0}, {2, 1, 0}});
  algo::SsspResult result;
  result.source = 0;
  result.distances = {0, 5, 5};
  result.parents = {0, 2, 1};
  const Certificate cert = certify(g, result);
  EXPECT_FALSE(cert.certified);
  EXPECT_TRUE(has_kind(cert, ViolationKind::kParentCycle)) << cert.summary();
}

TEST(CertifierTest, AcceptsResultWithoutParents) {
  const auto g = random_graph(256, 4.0, 50, 7);
  algo::SsspResult result;
  result.source = 0;
  result.distances = algo::dijkstra_distances(g, 0);
  EXPECT_TRUE(certify(g, result).certified);
  // Existence-only tightness still catches a too-small label.
  for (graph::VertexId v = 1; v < g.num_vertices(); ++v) {
    if (result.distances[v] == graph::kInfiniteDistance ||
        result.distances[v] < 2)
      continue;
    result.distances[v] -= 1;
    break;
  }
  EXPECT_FALSE(certify(g, result).certified);
}

TEST(CertifierTest, ShapeMismatchIsASingleViolation) {
  const auto g = diamond();
  auto result = algo::dijkstra(g, 0);
  result.distances.pop_back();
  const Certificate cert = certify(g, result);
  EXPECT_FALSE(cert.certified);
  EXPECT_TRUE(has_kind(cert, ViolationKind::kShape));
}

TEST(CertifierTest, ViolationTotalExactSamplesCapped) {
  const auto g = algo::testing::ring(128);
  auto result = algo::dijkstra(g, 0);
  // Growing shift: every ring edge u -> u+1 now violates relaxation
  // (a uniform shift would keep interior edges consistent).
  for (graph::VertexId v = 1; v < 128; ++v) result.distances[v] += 10u * v;
  CertifyOptions options;
  options.max_violations = 4;
  const Certificate cert = certify(g, result, options);
  EXPECT_FALSE(cert.certified);
  EXPECT_LE(cert.samples.size(), 4u);
  EXPECT_GT(cert.violations, 4u);
}

TEST(CertifierTest, ParallelAndSerialAgree) {
  const auto g = random_graph(2048, 6.0, 100, 11);
  auto result = algo::dijkstra(g, 0);
  // Corrupt a few labels so both paths count real violations.
  result.distances[101] += 3;
  result.distances[577] += 1;
  CertifyOptions serial;
  serial.parallel = false;
  CertifyOptions parallel;
  parallel.parallel = true;
  parallel.parallel_threshold = 0;
  for (const std::size_t threads : {1, 4}) {
    util::ThreadPool::set_global_threads(threads);
    const Certificate a = certify(g, result, serial);
    const Certificate b = certify(g, result, parallel);
    EXPECT_EQ(a.certified, b.certified);
    EXPECT_EQ(a.violations, b.violations);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
      EXPECT_EQ(a.samples[i].kind, b.samples[i].kind);
      EXPECT_EQ(a.samples[i].vertex, b.samples[i].vertex);
    }
  }
  util::ThreadPool::set_global_threads(0);
}

TEST(CertifierTest, ThrowsOnOutOfRangeSource) {
  const auto g = diamond();
  algo::SsspResult result = algo::dijkstra(g, 0);
  result.source = 99;
  EXPECT_THROW(certify(g, result), std::invalid_argument);
}

}  // namespace
}  // namespace sssp::verify
