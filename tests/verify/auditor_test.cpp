#include "verify/auditor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "graph/types.hpp"

namespace sssp::verify {
namespace {

constexpr graph::Distance kInf = graph::kInfiniteDistance;

// A consistent iteration: X accounting in order, ascending bounds
// terminated by INF, finite controller state.
struct AuditFixture {
  std::vector<graph::Distance> bounds{100, 200, 400, kInf};
  std::vector<graph::Distance> distances{0, 10, 20, 30, kInf, 50, 60, kInf};

  IterationAudit clean(std::uint64_t iteration = 0) {
    IterationAudit audit;
    audit.iteration = iteration;
    audit.delta = 50.0;
    audit.x1 = 100;
    audit.x2 = 80;
    audit.improving_relaxations = 60;
    audit.x3 = 40;
    audit.x4 = 20;
    audit.far_size = 500;
    audit.degree_estimate = 9.5;
    audit.alpha_estimate = 1.2;
    audit.far_bounds = bounds;
    audit.far_floor = 50;
    audit.distances = distances;
    return audit;
  }
};

TEST(AuditorTest, CleanIterationPasses) {
  AuditFixture fx;
  InvariantAuditor auditor;
  EXPECT_EQ(auditor.audit(fx.clean()), 0u);
  EXPECT_EQ(auditor.audits_run(), 1u);
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_TRUE(auditor.findings().empty());
}

TEST(AuditorTest, A1CatchesFrontierAccountingBreaks) {
  AuditFixture fx;
  {
    InvariantAuditor auditor;
    auto audit = fx.clean();
    audit.improving_relaxations = audit.x2 + 1;  // improving <= X2
    EXPECT_GT(auditor.audit(audit), 0u);
    EXPECT_EQ(auditor.findings()[0].check, AuditCheck::kFrontierAccounting);
  }
  {
    InvariantAuditor auditor;
    auto audit = fx.clean();
    audit.x3 = audit.improving_relaxations + 1;  // X3 <= improving
    EXPECT_GT(auditor.audit(audit), 0u);
  }
  {
    InvariantAuditor auditor;
    auto audit = fx.clean();
    audit.x4 = audit.x3 + 1;  // bisect only splits
    EXPECT_GT(auditor.audit(audit), 0u);
  }
}

TEST(AuditorTest, A2CatchesBoundaryOrderBreaks) {
  AuditFixture fx;
  {
    InvariantAuditor auditor;
    auto audit = fx.clean();
    const std::vector<graph::Distance> dup{100, 100, 400, kInf};
    audit.far_bounds = dup;
    EXPECT_GT(auditor.audit(audit), 0u);
    EXPECT_EQ(auditor.findings()[0].check, AuditCheck::kBoundaryMonotone);
  }
  {
    InvariantAuditor auditor;
    auto audit = fx.clean();
    const std::vector<graph::Distance> no_inf{100, 200, 400};
    audit.far_bounds = no_inf;  // last bound must be the INF catch-all
    EXPECT_GT(auditor.audit(audit), 0u);
  }
  {
    InvariantAuditor auditor;
    auto audit = fx.clean();
    audit.far_floor = 150;  // floor above the first bound
    EXPECT_GT(auditor.audit(audit), 0u);
  }
}

TEST(AuditorTest, A3CatchesDistanceRegression) {
  AuditFixture fx;
  InvariantAuditor auditor;
  EXPECT_EQ(auditor.audit(fx.clean(0)), 0u);  // seeds the probe set
  fx.distances[3] = 25;  // improvement: allowed
  EXPECT_EQ(auditor.audit(fx.clean(1)), 0u);
  fx.distances[3] = 40;  // regression: a settled label went back up
  EXPECT_GT(auditor.audit(fx.clean(2)), 0u);
  bool found = false;
  for (const AuditFinding& f : auditor.findings())
    found |= f.check == AuditCheck::kDistanceRegression;
  EXPECT_TRUE(found);
}

TEST(AuditorTest, A4CatchesNonFiniteControllerState) {
  AuditFixture fx;
  for (const double bad_delta :
       {std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(), 0.0, -3.0}) {
    InvariantAuditor auditor;
    auto audit = fx.clean();
    audit.delta = bad_delta;
    EXPECT_GT(auditor.audit(audit), 0u) << "delta=" << bad_delta;
    EXPECT_EQ(auditor.findings()[0].check, AuditCheck::kControllerFinite);
  }
  InvariantAuditor auditor;
  auto audit = fx.clean();
  audit.alpha_estimate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_GT(auditor.audit(audit), 0u);
}

TEST(AuditorTest, CountersAccumulateAndFindingsCap) {
  AuditFixture fx;
  InvariantAuditor::Options options;
  options.max_findings = 3;
  InvariantAuditor auditor(options);
  for (std::uint64_t i = 0; i < 10; ++i) {
    auto audit = fx.clean(i);
    audit.delta = -1.0;
    auditor.audit(audit);
  }
  EXPECT_EQ(auditor.audits_run(), 10u);
  EXPECT_GE(auditor.violations(), 10u);
  EXPECT_LE(auditor.findings().size(), 3u);
}

TEST(AuditorTest, ResetClearsStateAndProbes) {
  AuditFixture fx;
  InvariantAuditor auditor;
  auditor.audit(fx.clean(0));
  fx.distances[3] = 40;  // would regress against the old probe set...
  auditor.reset();
  EXPECT_EQ(auditor.audits_run(), 0u);
  EXPECT_EQ(auditor.violations(), 0u);
  // ...but after reset the first audit re-seeds and passes.
  fx.distances[3] = 45;
  EXPECT_EQ(auditor.audit(fx.clean(1)), 0u);
}

TEST(AuditorTest, AuditViolationCarriesIteration) {
  const AuditViolation violation(17, "boundary-monotone: test");
  EXPECT_EQ(violation.iteration(), 17u);
  EXPECT_NE(std::string(violation.what()).find("iteration 17"),
            std::string::npos);
}

}  // namespace
}  // namespace sssp::verify
