#include "fault/failpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

namespace sssp::fault {
namespace {

// Every test leaves the global gate off so suites sharing the process
// never see each other's armed failpoints.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::global().disarm_all(); }
};

TEST_F(FailpointTest, DisarmedByDefault) {
  EXPECT_FALSE(faults_enabled());
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(SSSP_FAILPOINT("test.disarmed"));
  // Disarmed sites do not count hits (they must cost nothing).
  EXPECT_EQ(FailpointRegistry::global().failpoint("test.disarmed").hits(), 0u);
}

TEST_F(FailpointTest, AlwaysModeFiresEveryHit) {
  FailpointRegistry::global().arm("test.always");
  EXPECT_TRUE(faults_enabled());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(SSSP_FAILPOINT("test.always"));
  const Failpoint& fp = FailpointRegistry::global().failpoint("test.always");
  EXPECT_EQ(fp.hits(), 5u);
  EXPECT_EQ(fp.fires(), 5u);
}

TEST_F(FailpointTest, DisarmAllTurnsGateOffAndKeepsCounters) {
  FailpointRegistry::global().arm("test.gate");
  EXPECT_TRUE(SSSP_FAILPOINT("test.gate"));
  FailpointRegistry::global().disarm_all();
  EXPECT_FALSE(faults_enabled());
  EXPECT_FALSE(SSSP_FAILPOINT("test.gate"));
  EXPECT_EQ(FailpointRegistry::global().failpoint("test.gate").fires(), 1u);
}

TEST_F(FailpointTest, EveryNthModeFiresOnMultiples) {
  FailpointRegistry::global().arm("test.nth=3");
  std::vector<int> fired;
  for (int i = 1; i <= 9; ++i)
    if (SSSP_FAILPOINT("test.nth")) fired.push_back(i);
  EXPECT_EQ(fired, (std::vector<int>{3, 6, 9}));
}

TEST_F(FailpointTest, ProbabilityModeIsDeterministicPerSeed) {
  auto run = [](const char* spec) {
    FailpointRegistry::global().disarm_all();
    FailpointRegistry::global().arm(spec);
    Failpoint& fp = FailpointRegistry::global().failpoint("test.prob");
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(fp.should_fire());
    return pattern;
  };
  const auto a = run("test.prob=0.5,42");
  const auto b = run("test.prob=0.5,42");
  const auto c = run("test.prob=0.5,43");
  EXPECT_EQ(a, b);  // same (spec, seed) -> same fire pattern
  EXPECT_NE(a, c);  // a different seed draws a different stream

  // A fair-ish coin: both outcomes occur in 64 draws.
  const auto fires = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, a.size());
}

TEST_F(FailpointTest, ProbabilityZeroNeverFiresOneAlwaysFires) {
  FailpointRegistry::global().arm("test.p0=0.0");
  FailpointRegistry::global().arm("test.p1=1.0");
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(SSSP_FAILPOINT("test.p0"));
    EXPECT_TRUE(SSSP_FAILPOINT("test.p1"));
  }
}

TEST_F(FailpointTest, ArmListArmsEverySegment) {
  FailpointRegistry::global().arm_list("test.a;test.b=2;;test.c=0.5,7");
  EXPECT_TRUE(SSSP_FAILPOINT("test.a"));
  const auto status = FailpointRegistry::global().status();
  int armed = 0;
  for (const auto& fp : status)
    if (fp.mode != Failpoint::Mode::kDisarmed) ++armed;
  EXPECT_GE(armed, 3);
}

TEST_F(FailpointTest, MalformedSpecsThrow) {
  auto& registry = FailpointRegistry::global();
  EXPECT_THROW(registry.arm(""), std::invalid_argument);
  EXPECT_THROW(registry.arm("name="), std::invalid_argument);
  EXPECT_THROW(registry.arm("name=abc"), std::invalid_argument);
  EXPECT_THROW(registry.arm("name=1.5"), std::invalid_argument);  // p > 1
  EXPECT_THROW(registry.arm("name=-0.5"), std::invalid_argument);
  EXPECT_THROW(registry.arm("name=0"), std::invalid_argument);  // period 0
  EXPECT_THROW(registry.arm("name=0.5,"), std::invalid_argument);
  EXPECT_THROW(registry.arm("name=0.5,xyz"), std::invalid_argument);
}

TEST_F(FailpointTest, ArmFromEnvReadsSsspFailpoint) {
  ASSERT_EQ(setenv("SSSP_FAILPOINT", "test.env=2", 1), 0);
  FailpointRegistry::global().arm_from_env();
  unsetenv("SSSP_FAILPOINT");
  EXPECT_TRUE(faults_enabled());
  EXPECT_FALSE(SSSP_FAILPOINT("test.env"));  // hit 1
  EXPECT_TRUE(SSSP_FAILPOINT("test.env"));   // hit 2
}

TEST_F(FailpointTest, RegistryReferencesAreStable) {
  Failpoint& first = FailpointRegistry::global().failpoint("test.stable");
  for (int i = 0; i < 100; ++i)
    FailpointRegistry::global().failpoint("test.churn." + std::to_string(i));
  EXPECT_EQ(&FailpointRegistry::global().failpoint("test.stable"), &first);
}

TEST_F(FailpointTest, TotalFiresAggregatesAcrossFailpoints) {
  const std::uint64_t before = FailpointRegistry::global().total_fires();
  FailpointRegistry::global().arm("test.agg1");
  FailpointRegistry::global().arm("test.agg2");
  (void)SSSP_FAILPOINT("test.agg1");
  (void)SSSP_FAILPOINT("test.agg2");
  (void)SSSP_FAILPOINT("test.agg2");
  EXPECT_EQ(FailpointRegistry::global().total_fires(), before + 3);
}

}  // namespace
}  // namespace sssp::fault
