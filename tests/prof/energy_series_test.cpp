#include "prof/energy_series.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace sssp::prof {
namespace {

TEST(EnergySeries, EmptySeriesIsZero) {
  EnergySeries series;
  EXPECT_EQ(series.samples().size(), 0u);
  EXPECT_DOUBLE_EQ(series.energy_joules(), 0.0);
  EXPECT_DOUBLE_EQ(series.duration_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(series.average_power_w(), 0.0);
}

TEST(EnergySeries, TrapezoidIntegratesExactly) {
  // Linear ramp 0 W -> 10 W over 2 s: area = 10 J.
  EnergySeries series;
  series.add(0.0, 0.0);
  series.add(2.0, 10.0);
  EXPECT_DOUBLE_EQ(series.energy_joules(), 10.0);
  EXPECT_DOUBLE_EQ(series.duration_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(series.average_power_w(), 5.0);
  EXPECT_DOUBLE_EQ(series.peak_power_w(), 10.0);
}

TEST(EnergySeries, StepFunctionViaBracketSamples) {
  // 5 W for 1 s, then 20 W for 0.5 s — each segment entered as a
  // bracket pair so the trapezoid rule reproduces the step exactly.
  EnergySeries series;
  series.add(0.0, 5.0);
  series.add(1.0, 5.0);
  series.add(1.0, 20.0);
  series.add(1.5, 20.0);
  EXPECT_DOUBLE_EQ(series.energy_joules(), 5.0 + 10.0);
  EXPECT_DOUBLE_EQ(series.peak_power_w(), 20.0);
}

TEST(EnergySeries, IncrementalMatchesBatch) {
  EnergySeries series;
  double expected = 0.0;
  double prev_t = 0.0, prev_w = 3.0;
  series.add(prev_t, prev_w);
  for (int i = 1; i <= 100; ++i) {
    const double t = i * 0.01;
    const double w = 3.0 + (i % 7);
    expected += (t - prev_t) * 0.5 * (w + prev_w);
    series.add(t, w);
    prev_t = t;
    prev_w = w;
  }
  EXPECT_NEAR(series.energy_joules(), expected, 1e-12);
}

TEST(EnergySeries, RejectsInvalidSamples) {
  EnergySeries series;
  series.add(1.0, 5.0);
  EXPECT_THROW(series.add(0.5, 5.0), std::invalid_argument);  // time back
  EXPECT_THROW(series.add(2.0, -1.0), std::invalid_argument);  // negative W
  const double nan = std::nan("");
  EXPECT_THROW(series.add(2.0, nan), std::invalid_argument);
  // The series is still usable after a rejected sample.
  series.add(2.0, 5.0);
  EXPECT_DOUBLE_EQ(series.energy_joules(), 5.0);
}

TEST(EnergySeries, ClearResets) {
  EnergySeries series;
  series.add(0.0, 1.0);
  series.add(1.0, 1.0);
  series.clear();
  EXPECT_DOUBLE_EQ(series.energy_joules(), 0.0);
  EXPECT_EQ(series.samples().size(), 0u);
}

TEST(MonotonicSeconds, AdvancesAndNeverRegresses) {
  const double a = monotonic_seconds();
  const double b = monotonic_seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

}  // namespace
}  // namespace sssp::prof
