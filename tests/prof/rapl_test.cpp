// Drives the RAPL reader against a fake powercap sysfs tree (the root
// is injectable) — covering domain discovery, the mmio-duplicate skip,
// delta accumulation, and counter wraparound — without any hardware or
// permission requirements.
#include "prof/rapl.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

namespace sssp::prof {
namespace {

namespace fs = std::filesystem;

class FakePowercap {
 public:
  FakePowercap() {
    root_ = fs::path(::testing::TempDir()) /
            ("powercap_" +
             std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(root_);
  }
  ~FakePowercap() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  // dir e.g. "intel-rapl:0"; name e.g. "package-0".
  void add_domain(const std::string& dir, const std::string& name,
                  std::uint64_t energy_uj, std::uint64_t max_range_uj) {
    const fs::path d = root_ / dir;
    fs::create_directories(d);
    write(d / "name", name);
    write(d / "energy_uj", std::to_string(energy_uj));
    write(d / "max_energy_range_uj", std::to_string(max_range_uj));
  }

  void set_energy(const std::string& dir, std::uint64_t energy_uj) {
    write(root_ / dir / "energy_uj", std::to_string(energy_uj));
  }

  std::string root() const { return root_.string(); }

 private:
  static void write(const fs::path& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text << "\n";
  }

  fs::path root_;
};

constexpr std::uint64_t kRange = 65532610987;  // typical package range

TEST(RaplReader, MissingTreeFailsGracefully) {
  RaplReader reader(::testing::TempDir() + "does_not_exist");
  EXPECT_FALSE(reader.open());
  EXPECT_FALSE(reader.is_open());
  EXPECT_NE(reader.status().find("no powercap"), std::string::npos)
      << reader.status();
}

TEST(RaplReader, DiscoversPackageAndDramSkipsMmio) {
  FakePowercap tree;
  tree.add_domain("intel-rapl:0", "package-0", 1000000, kRange);
  tree.add_domain("intel-rapl:0:0", "dram", 500000, kRange);
  tree.add_domain("intel-rapl:0:1", "core", 200000, kRange);  // not tracked
  tree.add_domain("intel-rapl-mmio:0", "package-0", 999999, kRange);

  RaplReader reader(tree.root());
  ASSERT_TRUE(reader.open()) << reader.status();
  const auto names = reader.domain_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "dram");
  EXPECT_EQ(names[1], "package-0");
}

TEST(RaplReader, AccumulatesDeltasPerDomain) {
  FakePowercap tree;
  tree.add_domain("intel-rapl:0", "package-0", 1'000'000, kRange);
  tree.add_domain("intel-rapl:0:0", "dram", 2'000'000, kRange);

  RaplReader reader(tree.root());
  ASSERT_TRUE(reader.open()) << reader.status();
  // open() primes last-read; the first read() of unchanged counters
  // must report zero consumed energy.
  RaplEnergy energy = reader.read();
  EXPECT_DOUBLE_EQ(energy.total_joules(), 0.0);

  tree.set_energy("intel-rapl:0", 1'000'000 + 3'000'000);  // +3 J
  tree.set_energy("intel-rapl:0:0", 2'000'000 + 500'000);  // +0.5 J
  energy = reader.read();
  EXPECT_NEAR(energy.package_joules, 3.0, 1e-9);
  EXPECT_NEAR(energy.dram_joules, 0.5, 1e-9);
  EXPECT_NEAR(energy.total_joules(), 3.5, 1e-9);

  // Cumulative across further reads.
  tree.set_energy("intel-rapl:0", 1'000'000 + 4'000'000);
  energy = reader.read();
  EXPECT_NEAR(energy.package_joules, 4.0, 1e-9);
}

TEST(RaplReader, WraparoundProducesCorrectDelta) {
  FakePowercap tree;
  // Counter 1 J below its wrap modulus.
  tree.add_domain("intel-rapl:0", "package-0", kRange - 1'000'000, kRange);

  RaplReader reader(tree.root());
  ASSERT_TRUE(reader.open()) << reader.status();
  (void)reader.read();

  // Wraps past the modulus: consumed = (range - last) + now.
  tree.set_energy("intel-rapl:0", 2'000'000);
  const RaplEnergy energy = reader.read();
  EXPECT_NEAR(energy.package_joules, 3.0, 1e-6);
}

TEST(RaplReader, WrapWithoutKnownRangeDropsInterval) {
  FakePowercap tree;
  tree.add_domain("intel-rapl:0", "package-0", 5'000'000, 0);  // no range

  RaplReader reader(tree.root());
  ASSERT_TRUE(reader.open()) << reader.status();
  (void)reader.read();

  tree.set_energy("intel-rapl:0", 1'000'000);  // apparent wrap
  RaplEnergy energy = reader.read();
  EXPECT_DOUBLE_EQ(energy.package_joules, 0.0);  // interval dropped

  // Forward motion resumes from the new baseline.
  tree.set_energy("intel-rapl:0", 3'000'000);
  energy = reader.read();
  EXPECT_NEAR(energy.package_joules, 2.0, 1e-9);
}

TEST(RaplReader, TreeWithoutPackageDomainsFails) {
  FakePowercap tree;
  tree.add_domain("intel-rapl:0:1", "core", 100, kRange);  // subdomain only
  RaplReader reader(tree.root());
  EXPECT_FALSE(reader.open()) << reader.status();
}

}  // namespace
}  // namespace sssp::prof
