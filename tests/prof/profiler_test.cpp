// End-to-end profiler behavior on every rung of the fallback ladder:
// model/wall-clock (always available), fake-sysfs RAPL, and real
// perf_event when the host permits it. The load-bearing property is
// exclusive phase attribution: per-phase seconds/joules/counters sum to
// the whole profiled span (within 5%, the documented tolerance).
#include "prof/profiler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

namespace sssp::prof {
namespace {

// Spins the CPU for roughly `seconds` (wall clock, not sleep, so
// task-clock and cycle counters advance too).
void busy_spin(double seconds) {
  const double until = monotonic_seconds() + seconds;
  volatile std::uint64_t sink = 0;
  while (monotonic_seconds() < until) {
    std::uint64_t acc = sink;
    for (int i = 0; i < 500; ++i) acc += static_cast<std::uint64_t>(i);
    sink = acc;
  }
}

Profiler::Options model_only_options() {
  Profiler::Options options;
  options.use_perf = false;
  options.use_rapl = false;
  options.model_watts = 10.0;
  return options;
}

TEST(Profiler, DisarmedByDefaultAndScopesAreNoOps) {
  EXPECT_FALSE(profiling_enabled());
  {
    SSSP_PROF_PHASE("never_recorded");
    busy_spin(0.0005);
  }
  EXPECT_FALSE(profiling_enabled());
}

TEST(Profiler, ModelEnergyAndWallClockFallback) {
  Profiler& profiler = Profiler::global();
  profiler.start(model_only_options());
  EXPECT_TRUE(profiling_enabled());
  {
    SSSP_PROF_PHASE("work");
    busy_spin(0.005);
  }
  profiler.stop();
  EXPECT_FALSE(profiling_enabled());

  const RunProfile profile = profiler.report();
  EXPECT_EQ(profile.energy.backend, EnergyBackend::kModel);
  EXPECT_EQ(profile.counter_backend, CounterBackend::kWallClock);
  EXPECT_GT(profile.wall_seconds, 0.004);
  // Model joules are watts x wall seconds, up to the sub-microsecond
  // skew between the joules and clock reads inside one transition.
  EXPECT_NEAR(profile.energy.joules, profile.wall_seconds * 10.0,
              profile.energy.joules * 1e-3);
  EXPECT_NEAR(profile.energy.average_watts, 10.0, 1e-2);
  EXPECT_DOUBLE_EQ(
      profile.energy.energy_delay_product,
      profile.energy.joules * profile.energy.seconds);
  // The fallback reason strings reach the report.
  EXPECT_NE(profile.energy.backend_detail.find("model"), std::string::npos);
  ASSERT_EQ(profile.phases.count("work"), 1u);
  EXPECT_GT(profile.phases.at("work").seconds, 0.004);
}

TEST(Profiler, ExclusivePhaseAttributionSumsToWholeRun) {
  Profiler& profiler = Profiler::global();
  profiler.start(model_only_options());
  for (int i = 0; i < 5; ++i) {
    SSSP_PROF_PHASE("outer");
    busy_spin(0.002);
    {
      SSSP_PROF_PHASE("inner");
      busy_spin(0.003);
    }
    busy_spin(0.001);
  }
  busy_spin(0.002);  // outside any phase -> "(untracked)"
  profiler.stop();

  const RunProfile profile = profiler.report();
  ASSERT_EQ(profile.phases.count("outer"), 1u);
  ASSERT_EQ(profile.phases.count("inner"), 1u);
  EXPECT_EQ(profile.phases.at("outer").entries, 5u);
  EXPECT_EQ(profile.phases.at("inner").entries, 5u);
  // Exclusive attribution: inner time is NOT double-counted in outer.
  EXPECT_NEAR(profile.phases.at("inner").seconds, 5 * 0.003, 0.005);
  EXPECT_NEAR(profile.phases.at("outer").seconds, 5 * 0.003, 0.005);

  double sum_seconds = 0.0;
  double sum_joules = 0.0;
  for (const auto& [name, phase] : profile.phases) {
    sum_seconds += phase.seconds;
    sum_joules += phase.joules;
  }
  // The documented acceptance tolerance: phase sums within 5% of the
  // whole-run totals.
  EXPECT_NEAR(sum_seconds, profile.wall_seconds,
              0.05 * profile.wall_seconds);
  EXPECT_NEAR(sum_joules, profile.energy.joules,
              0.05 * profile.energy.joules + 1e-9);
}

TEST(Profiler, PerfCountersAttributeWithinTolerance) {
  Profiler::Options options;
  options.use_perf = true;
  options.use_rapl = false;
  options.model_watts = 10.0;
  Profiler& profiler = Profiler::global();
  profiler.start(options);
  {
    SSSP_PROF_PHASE("alpha");
    busy_spin(0.01);
  }
  {
    SSSP_PROF_PHASE("beta");
    busy_spin(0.01);
  }
  profiler.stop();

  const RunProfile profile = profiler.report();
  if (profile.counter_backend != CounterBackend::kPerfEvent)
    GTEST_SKIP() << "perf_event unavailable: "
                 << profile.counter_backend_detail;

  EXPECT_GT(profile.totals.instructions, 0u);
  EXPECT_GT(profile.totals.cycles, 0u);
  std::uint64_t sum_instructions = 0;
  double sum_task = 0.0;
  for (const auto& [name, phase] : profile.phases) {
    sum_instructions += phase.counters.instructions;
    sum_task += phase.counters.task_seconds;
  }
  EXPECT_NEAR(static_cast<double>(sum_instructions),
              static_cast<double>(profile.totals.instructions),
              0.05 * static_cast<double>(profile.totals.instructions));
  EXPECT_NEAR(sum_task, profile.totals.task_seconds,
              0.05 * profile.totals.task_seconds + 1e-6);
}

TEST(Profiler, RaplBackendSelectedFromFakeSysfs) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "profiler_powercap";
  fs::create_directories(root / "intel-rapl:0");
  {
    std::ofstream(root / "intel-rapl:0" / "name") << "package-0\n";
    std::ofstream(root / "intel-rapl:0" / "energy_uj") << "123456789\n";
    std::ofstream(root / "intel-rapl:0" / "max_energy_range_uj")
        << "65532610987\n";
  }

  Profiler::Options options;
  options.use_perf = false;
  options.use_rapl = true;
  options.rapl_root = root.string();
  Profiler& profiler = Profiler::global();
  profiler.start(options);
  busy_spin(0.001);
  profiler.stop();

  const RunProfile profile = profiler.report();
  EXPECT_EQ(profile.energy.backend, EnergyBackend::kRapl);
  // The counter file never moved, so hardware-reported energy is zero —
  // what matters is the backend selection and a sane report.
  EXPECT_DOUBLE_EQ(profile.energy.joules, 0.0);
  EXPECT_NE(profile.energy.backend_detail.find("ok (1 domains)"),
            std::string::npos)
      << profile.energy.backend_detail;

  std::error_code ec;
  fs::remove_all(root, ec);
}

TEST(Profiler, IterationSamplingStaysBoundedAndAdditive) {
  Profiler& profiler = Profiler::global();
  profiler.start(model_only_options());
  constexpr int kIterations = 20000;
  for (int i = 0; i < kIterations; ++i) {
    if (i % 1000 == 0) busy_spin(0.0002);
    profiler.sample_iteration(static_cast<std::uint64_t>(i));
  }
  profiler.stop();

  const RunProfile profile = profiler.report();
  EXPECT_LE(profile.iterations.size(), 4096u);
  EXPECT_GT(profile.iterations.size(), 0u);
  // Decimation merges adjacent samples; the deltas stay additive, so
  // the retained samples still cover the sampled span.
  double sum_seconds = 0.0;
  std::uint64_t last_iteration = 0;
  for (const IterationSample& s : profile.iterations) {
    sum_seconds += s.seconds;
    EXPECT_GE(s.iteration, last_iteration);
    last_iteration = s.iteration;
  }
  EXPECT_LE(sum_seconds, profile.wall_seconds * 1.05);
  EXPECT_GT(sum_seconds, 0.0);
}

TEST(Profiler, ScopesOffOwnerThreadDisengage) {
  Profiler& profiler = Profiler::global();
  profiler.start(model_only_options());
  std::thread worker([] {
    SSSP_PROF_PHASE("worker_phase");
    busy_spin(0.001);
  });
  worker.join();
  profiler.stop();
  const RunProfile profile = profiler.report();
  EXPECT_EQ(profile.phases.count("worker_phase"), 0u);
}

TEST(Profiler, StopIsIdempotent) {
  Profiler& profiler = Profiler::global();
  profiler.start(model_only_options());
  busy_spin(0.001);
  profiler.stop();
  const double wall = profiler.report().wall_seconds;
  busy_spin(0.002);
  profiler.stop();  // must not extend the profiled span
  EXPECT_DOUBLE_EQ(profiler.report().wall_seconds, wall);
}

}  // namespace
}  // namespace sssp::prof
