// perf_event availability varies by host (perf_event_paranoid,
// containers, non-Linux); the suite exercises the real counters when
// the probe succeeds and the graceful-failure contract when it does
// not — both paths are the product behavior.
#include "prof/perf_counters.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace sssp::prof {
namespace {

TEST(CounterValues, DeltaAndAccumulate) {
  CounterValues a;
  a.task_seconds = 1.0;
  a.cycles = 100;
  a.instructions = 300;
  CounterValues b;
  b.task_seconds = 2.5;
  b.cycles = 180;
  b.instructions = 500;
  const CounterValues d = b - a;
  EXPECT_DOUBLE_EQ(d.task_seconds, 1.5);
  EXPECT_EQ(d.cycles, 80u);
  EXPECT_EQ(d.instructions, 200u);

  CounterValues sum;
  sum += d;
  sum += d;
  EXPECT_EQ(sum.cycles, 160u);
  EXPECT_DOUBLE_EQ(sum.task_seconds, 3.0);
}

TEST(PerfCounterGroup, OpenFailureLeavesStatusAndZeroReads) {
  PerfCounterGroup group;
  if (group.open()) {
    group.close();
    GTEST_SKIP() << "perf_event available on this host";
  }
  EXPECT_FALSE(group.is_open());
  EXPECT_FALSE(group.status().empty());
  const CounterValues v = group.read();
  EXPECT_EQ(v.cycles, 0u);
  EXPECT_EQ(v.instructions, 0u);
}

TEST(PerfCounterGroup, CountsRealWorkWhenAvailable) {
  PerfCounterGroup group;
  if (!group.open())
    GTEST_SKIP() << "perf_event unavailable: " << group.status();

  const CounterValues before = group.read();
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 5'000'000; ++i) sink = sink + i;
  const CounterValues after = group.read();
  group.close();

  const CounterValues delta = after - before;
  // 5M loop iterations execute well over 5M instructions.
  EXPECT_GT(delta.instructions, 5'000'000u);
  EXPECT_GT(delta.cycles, 0u);
  EXPECT_GT(delta.task_seconds, 0.0);
}

TEST(PerfCounterGroup, CloseIsIdempotent) {
  PerfCounterGroup group;
  (void)group.open();
  group.close();
  group.close();
  EXPECT_FALSE(group.is_open());
}

}  // namespace
}  // namespace sssp::prof
