// Satellite of the checkpoint/resume work (docs/ROBUSTNESS.md,
// "Checkpoint & recovery"): every serializable component state must
// (a) round-trip exactly — save, load into a fresh object, save again,
// compare equal — with the restored object bit-reproducing the
// original's subsequent behaviour, and (b) reject corrupt states
// (non-finite, out-of-range) through the existing input firewalls,
// bumping the same counters a poisoned live observation would.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/adaptive_sgd.hpp"
#include "core/controller.hpp"
#include "core/controller_health.hpp"
#include "core/partitioned_far_queue.hpp"
#include "obs/metrics.hpp"

namespace sssp::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

AdaptiveSgd trained_sgd() {
  AdaptiveSgd sgd;
  for (int i = 1; i <= 40; ++i)
    sgd.update(static_cast<double>(i), 3.0 * i + (i % 5) * 0.25);
  return sgd;
}

TEST(SgdState, SaveLoadSaveIsStable) {
  const AdaptiveSgd original = trained_sgd();
  const AdaptiveSgd::State first = original.state();
  AdaptiveSgd restored;
  restored.restore(first);
  EXPECT_EQ(restored.state(), first);
}

TEST(SgdState, RestoredModelBitReproducesUpdates) {
  AdaptiveSgd a = trained_sgd();
  AdaptiveSgd b;
  b.restore(a.state());
  for (int i = 0; i < 20; ++i) {
    const double x = 1.0 + (i % 7);
    const double y = 2.9 * x + 0.1 * i;
    EXPECT_EQ(a.update(x, y), b.update(x, y)) << "diverged at update " << i;
  }
  EXPECT_EQ(a.state(), b.state());
}

TEST(SgdState, RestoreRejectsNonFiniteFields) {
  const AdaptiveSgd::State good = trained_sgd().state();
  auto reject = [&](auto mutate) {
    AdaptiveSgd::State bad = good;
    mutate(bad);
    AdaptiveSgd victim;
    const std::uint64_t before = victim.rejected();
    EXPECT_THROW(victim.restore(bad), std::invalid_argument);
    EXPECT_EQ(victim.rejected(), before + 1);
    // The firewall must leave the model untouched.
    EXPECT_EQ(victim.parameter(), AdaptiveSgd().parameter());
  };
  reject([](AdaptiveSgd::State& s) { s.theta = kNaN; });
  reject([](AdaptiveSgd::State& s) { s.g_bar = kNaN; });
  reject([](AdaptiveSgd::State& s) { s.v_bar = kNaN; });
  reject([](AdaptiveSgd::State& s) { s.h_bar = kNaN; });
  reject([](AdaptiveSgd::State& s) { s.tau = kNaN; });
  reject([](AdaptiveSgd::State& s) { s.mu = kNaN; });
}

TEST(SgdState, RestoreRejectsOutOfRangeFields) {
  const AdaptiveSgd::State good = trained_sgd().state();
  auto reject = [&](auto mutate) {
    AdaptiveSgd::State bad = good;
    mutate(bad);
    AdaptiveSgd victim;
    EXPECT_THROW(victim.restore(bad), std::invalid_argument);
  };
  reject([](AdaptiveSgd::State& s) { s.theta = 0.0; });  // below clamp
  reject([](AdaptiveSgd::State& s) { s.theta = 1e19; });  // above clamp
  reject([](AdaptiveSgd::State& s) { s.v_bar = -1.0; });
  reject([](AdaptiveSgd::State& s) { s.h_bar = 0.0; });
  reject([](AdaptiveSgd::State& s) { s.tau = 0.5; });  // tau >= 1 invariant
  reject([](AdaptiveSgd::State& s) { s.mu = -1e-3; });
}

TEST(SgdState, RejectedRestoreCountsInMetricsRegistry) {
  obs::MetricsRegistry::global().counter("sgd.rejected_observations").reset();
  obs::set_metrics_enabled(true);
  AdaptiveSgd::State bad = trained_sgd().state();
  bad.theta = kNaN;
  AdaptiveSgd victim;
  EXPECT_THROW(victim.restore(bad), std::invalid_argument);
  obs::set_metrics_enabled(false);
  EXPECT_EQ(obs::MetricsRegistry::global()
                .counter("sgd.rejected_observations")
                .value(),
            1u);
}

ControllerConfig test_config() {
  ControllerConfig config;
  config.set_point = 500.0;
  config.initial_delta = 8.0;
  config.fallback_delta = 8.0;
  config.initial_degree = 4.0;
  return config;
}

DeltaController trained_controller() {
  DeltaController controller(test_config());
  double far = 900.0;
  for (int i = 0; i < 25; ++i) {
    controller.observe_advance(40.0 + i, 160.0 + 3.0 * i);
    controller.plan_delta(30.0 + (i % 9), far, far / 2.0,
                          controller.delta() * 2.0);
    far = far > 50.0 ? far - 30.0 : far;
  }
  return controller;
}

TEST(ControllerState, SaveLoadSaveIsStable) {
  const DeltaController original = trained_controller();
  const DeltaController::State first = original.state();
  DeltaController restored(test_config());
  restored.restore(first);
  EXPECT_EQ(restored.state(), first);
}

TEST(ControllerState, RestoredControllerBitReproducesPlans) {
  DeltaController a = trained_controller();
  DeltaController b(test_config());
  b.restore(a.state());
  double far = 600.0;
  for (int i = 0; i < 15; ++i) {
    a.observe_advance(50.0 + i, 180.0 + 2.0 * i);
    b.observe_advance(50.0 + i, 180.0 + 2.0 * i);
    const double pa = a.plan_delta(25.0 + i, far, far / 3.0, a.delta() * 2.0);
    const double pb = b.plan_delta(25.0 + i, far, far / 3.0, b.delta() * 2.0);
    EXPECT_EQ(pa, pb) << "plan diverged at iteration " << i;
    far -= 20.0;
  }
  EXPECT_EQ(a.state(), b.state());
}

TEST(ControllerState, RestoreRejectsDeltaOutsideBounds) {
  const ControllerConfig config = test_config();
  auto reject = [&](auto mutate) {
    DeltaController::State bad = trained_controller().state();
    mutate(bad);
    DeltaController victim(config);
    EXPECT_THROW(victim.restore(bad), std::invalid_argument);
    // Rejection must not half-apply: the victim still plans from its
    // pristine configuration.
    EXPECT_EQ(victim.delta(), config.initial_delta);
  };
  reject([&](DeltaController::State& s) { s.delta = config.min_delta / 2.0; });
  reject([&](DeltaController::State& s) { s.delta = config.max_delta * 2.0; });
  reject([](DeltaController::State& s) { s.delta = kNaN; });
  reject([](DeltaController::State& s) { s.last_alpha = 0.0; });
  reject([](DeltaController::State& s) { s.last_alpha = kNaN; });
  reject([](DeltaController::State& s) { s.pending_delta_change = kNaN; });
  reject([](DeltaController::State& s) { s.pending_x4 = kNaN; });
}

TEST(ControllerState, RestoreRejectsCorruptNestedModel) {
  DeltaController::State bad = trained_controller().state();
  bad.advance_sgd.theta = kNaN;
  DeltaController victim(test_config());
  EXPECT_THROW(victim.restore(bad), std::invalid_argument);
}

TEST(HealthState, RoundTripAndRejects) {
  ControllerHealth health{HealthConfig{}};
  ControllerHealth::State state = health.save_state();
  state.degradations = 2;
  state.recoveries = 1;
  state.rejected_inputs = 5;
  state.control_state = 1;  // kDegraded
  state.last_step_sign = -1;
  ControllerHealth restored{HealthConfig{}};
  restored.restore(state);
  EXPECT_EQ(restored.save_state(), state);
  EXPECT_EQ(restored.state(), ControlState::kDegraded);

  ControllerHealth::State bad = state;
  bad.control_state = 7;  // no such ControlState
  EXPECT_THROW(restored.restore(bad), std::invalid_argument);
  bad = state;
  bad.last_step_sign = 5;
  EXPECT_THROW(restored.restore(bad), std::invalid_argument);
}

PartitionedFarQueue populated_queue() {
  PartitionedFarQueue q(10);
  for (graph::VertexId v = 0; v < 200; ++v)
    q.push(v, 1 + (static_cast<graph::Distance>(v) * 7919) % 400);
  return q;
}

TEST(FarQueueState, SaveLoadSaveIsStable) {
  const PartitionedFarQueue original = populated_queue();
  const PartitionedFarQueue::State first = original.state();
  PartitionedFarQueue restored(10);
  restored.restore(PartitionedFarQueue::State(first));
  EXPECT_EQ(restored.state(), first);
}

TEST(FarQueueState, RestoredQueueBehavesIdentically) {
  PartitionedFarQueue a = populated_queue();
  PartitionedFarQueue b(99);  // seed bound is overwritten by restore
  b.restore(a.state());
  std::vector<graph::Distance> dist(200);
  for (graph::VertexId v = 0; v < 200; ++v)
    dist[v] = 1 + (static_cast<graph::Distance>(v) * 7919) % 400;
  std::vector<graph::VertexId> frontier_a, frontier_b;
  EXPECT_EQ(a.pull_below(150, dist, frontier_a),
            b.pull_below(150, dist, frontier_b));
  EXPECT_EQ(frontier_a, frontier_b);
  EXPECT_EQ(a.state(), b.state());
}

TEST(FarQueueState, RestoreRejectsMalformedSnapshots) {
  auto reject = [](auto mutate) {
    PartitionedFarQueue::State bad = populated_queue().state();
    mutate(bad);
    PartitionedFarQueue victim(10);
    EXPECT_THROW(victim.restore(std::move(bad)), std::invalid_argument);
  };
  // Boundary order violated.
  reject([](PartitionedFarQueue::State& s) {
    if (s.bounds.size() >= 2) std::swap(s.bounds.front(), s.bounds.back());
  });
  // Shape mismatch between bounds and entry buckets.
  reject([](PartitionedFarQueue::State& s) { s.entries.emplace_back(); });
  // An entry above its partition's upper bound.
  reject([](PartitionedFarQueue::State& s) {
    s.entries.front().push_back({0, s.bounds.front() + 1});
  });
  // No partitions at all (the queue invariant keeps a final MAX bucket).
  reject([](PartitionedFarQueue::State& s) {
    s.bounds.clear();
    s.entries.clear();
  });
}

}  // namespace
}  // namespace sssp::core
