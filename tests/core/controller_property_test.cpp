// Closed-loop property sweep: the controller driving a synthetic linear
// plant must converge to the set-point for a grid of plant parameters.
//
// Plant model (the idealized world Eqs. 1-6 assume):
//   X2_k = d_true * X1_k                      (advance)
//   X1_{k+1} = clamp(X4_k + alpha_true * delta_change, >= 1)
//   X4_k = X1_k (nothing spills in the synthetic plant)
// With these dynamics, X2 should settle at P, i.e. X1 at P / d_true.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/controller.hpp"

namespace sssp::core {
namespace {

using Case = std::tuple<double /*d_true*/, double /*alpha_true*/,
                        double /*set_point*/>;

// Runs the loop and returns (final X2, learned d).
std::pair<double, double> run_plant(double d_true, double alpha_true,
                                    double set_point, bool adaptive,
                                    int iterations = 400) {
  ControllerConfig config;
  config.set_point = set_point;
  config.initial_delta = 10.0;
  config.adaptive_learning_rate = adaptive;
  config.deadband_ratio = 0.05;
  DeltaController controller(config);
  double x1 = 1.0;
  double x2 = d_true * x1;
  for (int k = 0; k < iterations; ++k) {
    controller.observe_advance(x1, x2);
    const double before = controller.delta();
    const double after =
        controller.plan_delta(x1, 1e9, 1e6, controller.delta() + 1000.0);
    x1 = std::max(1.0, x1 + alpha_true * (after - before));
    x2 = d_true * x1;
  }
  return {x2, controller.advance_model().degree()};
}

class ControllerClosedLoop : public ::testing::TestWithParam<Case> {};

TEST_P(ControllerClosedLoop, AdaptiveConvergesToSetPoint) {
  const auto [d_true, alpha_true, set_point] = GetParam();
  const bool adaptive = true;

  ControllerConfig config;
  config.set_point = set_point;
  config.initial_delta = 10.0;
  config.adaptive_learning_rate = adaptive;
  config.deadband_ratio = 0.05;  // tight band for the convergence check
  DeltaController controller(config);

  double x1 = 1.0;
  double x2 = d_true * x1;
  double last_x2 = x2;
  for (int k = 0; k < 400; ++k) {
    controller.observe_advance(x1, x2);
    const double x4 = x1;
    const double before = controller.delta();
    // The synthetic far queue always has work (size 1e9) in a partition
    // spanning [delta, delta + 1000].
    const double after =
        controller.plan_delta(x4, 1e9, 1e6, controller.delta() + 1000.0);
    const double delta_change = after - before;
    x1 = std::max(1.0, x4 + alpha_true * delta_change);
    x2 = d_true * x1;
    last_x2 = x2;
  }
  // Settles within 20% of the set-point (deadband + model noise).
  EXPECT_NEAR(last_x2, set_point, 0.2 * set_point)
      << "d=" << d_true << " alpha=" << alpha_true << " P=" << set_point
      << " adaptive=" << adaptive;
  // And the models learned the plant.
  EXPECT_NEAR(controller.advance_model().degree(), d_true, 0.25 * d_true);
}

INSTANTIATE_TEST_SUITE_P(
    PlantGrid, ControllerClosedLoop,
    ::testing::Combine(::testing::Values(1.5, 4.0, 12.0, 50.0),
                       ::testing::Values(0.5, 5.0, 80.0),
                       ::testing::Values(1000.0, 50000.0)),
    [](const ::testing::TestParamInfo<Case>& tpi) {
      return "d" + std::to_string(static_cast<int>(std::get<0>(tpi.param) * 10)) +
             "_a" + std::to_string(static_cast<int>(std::get<1>(tpi.param) * 10)) +
             "_P" + std::to_string(static_cast<long>(std::get<2>(tpi.param)));
    });

TEST(ControllerClosedLoop, AdaptiveNoWorseThanFixedRate) {
  // The Algorithm 1 justification: the adaptive learning rate reaches
  // the set-point at least as accurately as naive fixed-rate SGD on the
  // same plant (and much faster when the scale is unfavourable).
  const double P = 10000.0;
  for (const double d_true : {1.5, 12.0}) {
    const auto [x2_adaptive, d_adaptive] = run_plant(d_true, 5.0, P, true);
    const auto [x2_fixed, d_fixed] = run_plant(d_true, 5.0, P, false);
    EXPECT_LE(std::abs(x2_adaptive - P), std::abs(x2_fixed - P) + 0.05 * P)
        << "d_true=" << d_true;
    EXPECT_LE(std::abs(d_adaptive - d_true), std::abs(d_fixed - d_true) + 0.1)
        << "d_true=" << d_true;
  }
}

TEST(ControllerClosedLoop, RecoversFromPlantShift) {
  // Nonstationary plant: the frontier degree shifts mid-run (hub region
  // to periphery), as on a real scale-free graph.
  ControllerConfig config;
  config.set_point = 10000.0;
  config.initial_delta = 10.0;
  DeltaController controller(config);

  double d_true = 20.0;
  const double alpha_true = 10.0;
  double x1 = 1.0;
  double x2 = d_true * x1;
  for (int k = 0; k < 600; ++k) {
    if (k == 300) d_true = 3.0;  // the shift
    controller.observe_advance(x1, x2);
    const double before = controller.delta();
    const double after =
        controller.plan_delta(x1, 1e9, 1e6, controller.delta() + 1000.0);
    x1 = std::max(1.0, x1 + alpha_true * (after - before));
    x2 = d_true * x1;
  }
  EXPECT_NEAR(x2, 10000.0, 3000.0);
  EXPECT_NEAR(controller.advance_model().degree(), 3.0, 1.0);
}

}  // namespace
}  // namespace sssp::core
