#include "core/power_feedback.hpp"

#include <gtest/gtest.h>

#include "core/self_tuning.hpp"
#include "graph/datasets.hpp"
#include "sssp/dijkstra.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::core {
namespace {

using algo::count_distance_mismatches;
using algo::dijkstra_distances;

class PowerFeedbackTest : public ::testing::Test {
 protected:
  graph::CsrGraph graph_ =
      graph::make_dataset(graph::Dataset::kCal, {.scale = 1.0 / 32.0});
  graph::VertexId source_ =
      graph::default_source(graph::Dataset::kCal, graph_);
  sim::DeviceSpec device_ = sim::DeviceSpec::jetson_tk1();
  sim::DefaultGovernor governor_;
};

TEST_F(PowerFeedbackTest, RejectsBadOptions) {
  PowerFeedbackOptions options;  // budget = 0
  EXPECT_THROW(
      power_feedback_sssp(graph_, source_, device_, governor_, options),
      std::invalid_argument);
  options.power_budget_w = 5.0;
  options.gain = 0.0;
  EXPECT_THROW(
      power_feedback_sssp(graph_, source_, device_, governor_, options),
      std::invalid_argument);
  options.gain = 0.5;
  options.min_set_point = 100.0;
  options.max_set_point = 10.0;
  EXPECT_THROW(
      power_feedback_sssp(graph_, source_, device_, governor_, options),
      std::invalid_argument);
}

TEST_F(PowerFeedbackTest, DistancesExactUnderAnyBudget) {
  for (const double budget : {4.0, 6.0, 20.0}) {
    PowerFeedbackOptions options;
    options.power_budget_w = budget;
    const auto result =
        power_feedback_sssp(graph_, source_, device_, governor_, options);
    EXPECT_EQ(count_distance_mismatches(result.sssp.distances,
                                        dijkstra_distances(graph_, source_)),
              0u)
        << "budget " << budget;
  }
}

TEST_F(PowerFeedbackTest, TracesHaveOneEntryPerIteration) {
  PowerFeedbackOptions options;
  options.power_budget_w = 6.0;
  const auto result =
      power_feedback_sssp(graph_, source_, device_, governor_, options);
  EXPECT_EQ(result.set_point_trace.size(), result.sssp.num_iterations());
  EXPECT_EQ(result.power_trace_w.size(), result.sssp.num_iterations());
  EXPECT_GT(result.report.total_seconds, 0.0);
}

TEST_F(PowerFeedbackTest, TightBudgetLowersPowerVersusLooseBudget) {
  PowerFeedbackOptions tight;
  tight.power_budget_w = 4.4;  // just above idle
  PowerFeedbackOptions loose = tight;
  loose.power_budget_w = 50.0;  // effectively unconstrained
  const auto r_tight =
      power_feedback_sssp(graph_, source_, device_, governor_, tight);
  const auto r_loose =
      power_feedback_sssp(graph_, source_, device_, governor_, loose);
  EXPECT_LT(r_tight.report.average_power_w, r_loose.report.average_power_w);
  // The loose run exploits the headroom with a larger final set-point.
  EXPECT_GT(r_loose.set_point_trace.back(), r_tight.set_point_trace.back());
}

TEST_F(PowerFeedbackTest, GenerousBudgetIsMostlyCompliant) {
  PowerFeedbackOptions options;
  options.power_budget_w = 100.0;
  const auto result =
      power_feedback_sssp(graph_, source_, device_, governor_, options);
  EXPECT_GT(result.compliant_fraction, 0.95);
}

TEST_F(PowerFeedbackTest, SetPointStaysWithinBounds) {
  PowerFeedbackOptions options;
  options.power_budget_w = 100.0;  // pushes P up hard
  options.min_set_point = 128.0;
  options.max_set_point = 2048.0;
  const auto result =
      power_feedback_sssp(graph_, source_, device_, governor_, options);
  for (const double p : result.set_point_trace) {
    EXPECT_GE(p, 128.0);
    EXPECT_LE(p, 2048.0);
  }
  EXPECT_DOUBLE_EQ(result.set_point_trace.back(), 2048.0);  // saturates
}

TEST(SelfTuningRun, StepperMatchesFreeFunction) {
  const auto g = algo::testing::random_graph(1200, 5.0, 99, 9);
  SelfTuningOptions options;
  options.set_point = 2000.0;
  options.measure_controller_time = false;

  const auto direct = self_tuning_sssp(g, 0, options);

  SelfTuningRun run(g, 0, options);
  std::size_t steps = 0;
  while (run.step()) ++steps;
  const auto stepped = run.take_result();

  EXPECT_EQ(steps, direct.num_iterations());
  ASSERT_EQ(stepped.num_iterations(), direct.num_iterations());
  for (std::size_t i = 0; i < direct.num_iterations(); ++i) {
    EXPECT_EQ(stepped.iterations[i].x2, direct.iterations[i].x2) << i;
    EXPECT_DOUBLE_EQ(stepped.iterations[i].delta, direct.iterations[i].delta)
        << i;
  }
  EXPECT_EQ(stepped.distances, direct.distances);
}

TEST(SelfTuningRun, LastIterationBeforeStepThrows) {
  const auto g = algo::testing::ring(10);
  SelfTuningOptions options;
  options.set_point = 5.0;
  SelfTuningRun run(g, 0, options);
  EXPECT_THROW(run.last_iteration(), std::logic_error);
  ASSERT_TRUE(run.step());
  EXPECT_NO_THROW(run.last_iteration());
}

TEST(SelfTuningRun, SetSetPointRetargetsController) {
  const auto g = algo::testing::random_graph(2000, 6.0, 99, 21);
  SelfTuningOptions options;
  options.set_point = 100.0;
  SelfTuningRun run(g, 0, options);
  for (int i = 0; i < 3 && !run.done(); ++i) run.step();
  run.set_set_point(50000.0);
  EXPECT_DOUBLE_EQ(run.set_point(), 50000.0);
  EXPECT_THROW(run.set_set_point(0.0), std::invalid_argument);
  while (run.step()) {
  }
  const auto result = run.take_result();
  EXPECT_EQ(algo::count_distance_mismatches(
                result.distances, algo::dijkstra_distances(g, 0)),
            0u);
}

TEST(SelfTuningRun, DoneReflectsCompletion) {
  const auto g = algo::testing::ring(6);
  SelfTuningOptions options;
  options.set_point = 10.0;
  SelfTuningRun run(g, 0, options);
  EXPECT_FALSE(run.done());
  while (run.step()) {
  }
  EXPECT_TRUE(run.done());
  EXPECT_FALSE(run.step());
}

}  // namespace
}  // namespace sssp::core
