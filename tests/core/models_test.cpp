#include <gtest/gtest.h>

#include "core/advance_model.hpp"
#include "core/bisect_model.hpp"
#include "util/rng.hpp"

namespace sssp::core {
namespace {

TEST(AdvanceModel, LearnsAverageDegree) {
  AdvanceModel model;
  // Frontier degree ~ 6: X2 = 6 X1.
  for (int k = 0; k < 300; ++k) {
    const double x1 = 10.0 + (k % 50);
    model.observe(x1, 6.0 * x1);
  }
  EXPECT_NEAR(model.degree(), 6.0, 0.5);
  EXPECT_EQ(model.observations(), 300u);
}

TEST(AdvanceModel, TargetFrontierIsEqThree) {
  AdvanceModel model;
  for (int k = 0; k < 300; ++k) model.observe(100.0 + k % 10, 4.0 * (100.0 + k % 10));
  // X1_target = P / d.
  EXPECT_NEAR(model.target_frontier_size(20000.0), 20000.0 / model.degree(),
              1e-9);
  EXPECT_NEAR(model.target_frontier_size(20000.0), 5000.0, 500.0);
}

TEST(AdvanceModel, SeededWithGraphDegree) {
  AdvanceModel model(AdvanceModel::Options{.initial_degree = 12.0});
  EXPECT_DOUBLE_EQ(model.degree(), 12.0);
  EXPECT_DOUBLE_EQ(model.predict_x2(10.0), 120.0);
}

TEST(AdvanceModel, DegreeStaysPositiveUnderPerverseData) {
  AdvanceModel model;
  for (int k = 0; k < 100; ++k) model.observe(1000.0, 0.0);
  EXPECT_GT(model.degree(), 0.0);
}

TEST(BisectModel, BootstrapUsesX4OverDeltaWhenOversized) {
  BisectModel model;  // unconverged: 0 observations
  BisectModel::BootstrapState state;
  state.x4 = 5000.0;
  state.x1_target = 1000.0;  // X4 >= target
  state.delta = 250.0;
  EXPECT_FALSE(model.converged());
  EXPECT_DOUBLE_EQ(model.alpha(state), 5000.0 / 250.0);
}

TEST(BisectModel, BootstrapUsesPartitionDensityWhenUndersized) {
  BisectModel model;
  BisectModel::BootstrapState state;
  state.x4 = 100.0;
  state.x1_target = 1000.0;  // X4 < target
  state.delta = 250.0;
  state.partition_size = 900.0;
  state.partition_bound = 550.0;
  // S_i / (B_i - delta) = 900 / 300 = 3.
  EXPECT_DOUBLE_EQ(model.alpha(state), 3.0);
}

TEST(BisectModel, BootstrapFallsBackWhenNoPartitionState) {
  BisectModel model(BisectModel::Options{.initial_alpha = 2.5});
  BisectModel::BootstrapState state;  // all zeros
  EXPECT_DOUBLE_EQ(model.alpha(state), 2.5);
}

TEST(BisectModel, ConvergesAfterConfiguredObservations) {
  BisectModel model(BisectModel::Options{.bootstrap_observations = 5});
  for (int k = 0; k < 4; ++k) model.observe(10.0, 100.0, 100.0 + 30.0 * 10.0);
  EXPECT_FALSE(model.converged());
  model.observe(10.0, 100.0, 100.0 + 30.0 * 10.0);
  EXPECT_TRUE(model.converged());
}

TEST(BisectModel, LearnsVerticesPerUnitDistance) {
  BisectModel model;
  // True alpha = 30: X1' - X4 = 30 * delta_change.
  util::Xoshiro256 rng(5);
  for (int k = 0; k < 500; ++k) {
    const double dd = (rng.next_double() - 0.3) * 20.0;
    model.observe(dd, 1000.0, 1000.0 + 30.0 * dd);
  }
  EXPECT_TRUE(model.converged());
  BisectModel::BootstrapState unused;
  EXPECT_NEAR(model.alpha(unused), 30.0, 5.0);
}

TEST(BisectModel, ZeroDeltaChangeCarriesNoInformation) {
  BisectModel model;
  for (int k = 0; k < 100; ++k) model.observe(0.0, 50.0, 5000.0);
  EXPECT_EQ(model.observations(), 0u);
  EXPECT_FALSE(model.converged());
}

TEST(BisectModel, AlphaAlwaysPositive) {
  BisectModel model;
  // Adversarial: negative correlation between delta change and growth.
  for (int k = 0; k < 200; ++k) model.observe(10.0, 1000.0, 0.0);
  BisectModel::BootstrapState state;
  EXPECT_GT(model.alpha(state), 0.0);
}

}  // namespace
}  // namespace sssp::core
