#include "core/controller.hpp"

#include <gtest/gtest.h>

namespace sssp::core {
namespace {

ControllerConfig basic_config(double set_point = 10000.0) {
  ControllerConfig config;
  config.set_point = set_point;
  config.initial_delta = 100.0;
  return config;
}

TEST(DeltaController, RejectsBadConfig) {
  ControllerConfig config;  // set_point = 0
  EXPECT_THROW(DeltaController{config}, std::invalid_argument);
  config = basic_config();
  config.min_delta = 0.0;
  EXPECT_THROW(DeltaController{config}, std::invalid_argument);
  config = basic_config();
  config.min_delta = 10.0;
  config.max_delta = 1.0;
  EXPECT_THROW(DeltaController{config}, std::invalid_argument);
  config = basic_config();
  config.max_step_ratio = 0.0;
  EXPECT_THROW(DeltaController{config}, std::invalid_argument);
}

TEST(DeltaController, StartsAtInitialDelta) {
  DeltaController controller(basic_config());
  EXPECT_DOUBLE_EQ(controller.delta(), 100.0);
  EXPECT_DOUBLE_EQ(controller.set_point(), 10000.0);
}

TEST(DeltaController, ZeroInitialDeltaClampsToMin) {
  ControllerConfig config = basic_config();
  config.initial_delta = 0.0;
  config.min_delta = 2.0;
  DeltaController controller(config);
  EXPECT_DOUBLE_EQ(controller.delta(), 2.0);
}

TEST(DeltaController, GrowsDeltaWhenFrontierTooSmall) {
  DeltaController controller(basic_config(10000.0));
  // Teach the advance model: degree ~ 4 (so target X1 = 2500).
  for (int k = 0; k < 20; ++k) controller.observe_advance(100.0, 400.0);
  // X4 = 100 << 2500: delta must grow.
  const double before = controller.delta();
  const double after = controller.plan_delta(100.0, 1000.0, 500.0, 400.0);
  EXPECT_GT(after, before);
}

TEST(DeltaController, ShrinksDeltaWhenFrontierTooLarge) {
  DeltaController controller(basic_config(1000.0));
  for (int k = 0; k < 20; ++k) controller.observe_advance(100.0, 400.0);
  // target X1 = 250, X4 = 50000: delta must shrink (bounded by min).
  const double before = controller.delta();
  const double after = controller.plan_delta(50000.0, 10.0, 10.0, 400.0);
  EXPECT_LT(after, before);
  EXPECT_GE(after, 1.0);  // min_delta
}

TEST(DeltaController, StepClampPreventsWildSwings) {
  ControllerConfig config = basic_config(1e9);
  config.max_step_ratio = 2.0;
  DeltaController controller(config);
  for (int k = 0; k < 20; ++k) controller.observe_advance(10.0, 20.0);
  // Eq. 6 wants an enormous step; clamp holds it to 2x current delta.
  const double before = controller.delta();
  const double after = controller.plan_delta(1.0, 100.0, 1.0, 1000.0);
  EXPECT_LE(after - before, 2.0 * before + 1e-9);
}

TEST(DeltaController, AlphaComesFromBootstrapBeforeConvergence) {
  DeltaController controller(basic_config(10000.0));
  for (int k = 0; k < 5; ++k) controller.observe_advance(1000.0, 4000.0);
  // X4 = 5000 >= target 2500 -> Eq. 8 first branch: alpha = X4 / delta.
  controller.plan_delta(5000.0, 100.0, 100.0, 1e6);
  EXPECT_NEAR(controller.last_alpha(), 5000.0 / 100.0, 1.0);
}

TEST(DeltaController, BisectModelLearnsFromRealizedChanges) {
  DeltaController controller(basic_config(10000.0));
  // Simulated loop: every unit of delta adds ~20 vertices.
  double x4 = 100.0;
  for (int k = 0; k < 30; ++k) {
    controller.observe_advance(x4, 4.0 * x4);
    const double before = controller.delta();
    const double after = controller.plan_delta(x4, 500.0, 200.0, before + 50.0);
    const double dd = after - before;
    x4 = std::max(1.0, x4 + 20.0 * dd);  // environment responds
  }
  EXPECT_GE(controller.bisect_model().observations(), 5u);
  EXPECT_TRUE(controller.bisect_model().converged());
  // Learned alpha should be in the right ballpark (vertices per distance).
  EXPECT_GT(controller.bisect_model().learned_alpha(), 1.0);
  EXPECT_LT(controller.bisect_model().learned_alpha(), 500.0);
}

TEST(DeltaController, ForceDeltaFeedsBisectModel) {
  DeltaController controller(basic_config());
  const std::uint64_t before = controller.bisect_model().observations();
  controller.force_delta(500.0, 40.0);
  EXPECT_DOUBLE_EQ(controller.delta(), 500.0);
  controller.observe_advance(120.0, 480.0);  // realized X1 after the jump
  EXPECT_EQ(controller.bisect_model().observations(), before + 1);
}

TEST(DeltaController, DeltaStaysWithinBounds) {
  ControllerConfig config = basic_config(1e12);
  config.min_delta = 10.0;
  config.max_delta = 1000.0;
  DeltaController controller(config);
  for (int k = 0; k < 50; ++k) {
    controller.observe_advance(10.0, 40.0);
    const double delta = controller.plan_delta(1.0, 50.0, 1.0, 100.0);
    ASSERT_GE(delta, 10.0);
    ASSERT_LE(delta, 1000.0);
  }
  EXPECT_DOUBLE_EQ(controller.delta(), 1000.0);  // saturated at max
}

TEST(DeltaController, NoPendingObservationWhenDeltaUnchanged) {
  ControllerConfig config = basic_config();
  config.min_delta = 100.0;
  config.max_delta = 100.0;  // delta frozen
  DeltaController controller(config);
  controller.observe_advance(10.0, 40.0);
  controller.plan_delta(10.0, 20.0, 5.0, 1000.0);
  controller.observe_advance(12.0, 48.0);
  EXPECT_EQ(controller.bisect_model().observations(), 0u);
}

}  // namespace
}  // namespace sssp::core
