#include "core/partitioned_far_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sssp::core {
namespace {

using graph::Distance;
using graph::kInfiniteDistance;
using graph::VertexId;

TEST(PartitionedFarQueue, InitialLayoutIsTwoPartitions) {
  PartitionedFarQueue q(50);
  EXPECT_EQ(q.num_partitions(), 2u);
  EXPECT_EQ(q.current_partition_bound(), 50u);
  EXPECT_EQ(q.current_lower_bound(), 0u);
  EXPECT_TRUE(q.empty());
  q.check_invariants();
}

TEST(PartitionedFarQueue, RejectsZeroFirstBound) {
  EXPECT_THROW(PartitionedFarQueue(0), std::invalid_argument);
}

TEST(PartitionedFarQueue, PushRoutesByDistance) {
  PartitionedFarQueue q(50);
  q.push(0, 30);   // partition 0 (d <= 50)
  q.push(1, 50);   // partition 0 (boundary inclusive)
  q.push(2, 51);   // partition 1
  q.push(3, 1000000);  // partition 1 (MAX)
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.current_partition_size(), 2u);
  q.check_invariants();
}

TEST(PartitionedFarQueue, PullBelowMovesLiveEntries) {
  PartitionedFarQueue q(50);
  std::vector<Distance> dist{10, 40, 80};
  q.push(0, 10);
  q.push(1, 40);
  q.push(2, 80);
  std::vector<VertexId> frontier;
  const std::uint64_t scanned = q.pull_below(45, dist, frontier);
  EXPECT_EQ(scanned, 2u);  // only partition 0 intersects [0, 45)
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(q.size(), 1u);
  q.check_invariants();
}

TEST(PartitionedFarQueue, PullDropsStaleEntries) {
  PartitionedFarQueue q(50);
  std::vector<Distance> dist{5};  // improved since push
  q.push(0, 30);
  std::vector<VertexId> frontier;
  q.pull_below(100, dist, frontier);
  EXPECT_TRUE(frontier.empty());
  EXPECT_TRUE(q.empty());
}

TEST(PartitionedFarQueue, PullSkipsPartitionsAboveThreshold) {
  PartitionedFarQueue q(10);
  std::vector<Distance> dist{5, 500};
  q.push(0, 5);
  q.push(1, 500);
  std::vector<VertexId> frontier;
  // Threshold 8 only touches the first partition: scanned == 1.
  EXPECT_EQ(q.pull_below(8, dist, frontier), 1u);
  EXPECT_EQ(frontier.size(), 1u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(PartitionedFarQueue, ConsumedFrontPartitionIsDropped) {
  PartitionedFarQueue q(10);
  std::vector<Distance> dist{5};
  q.push(0, 5);
  std::vector<VertexId> frontier;
  q.pull_below(100, dist, frontier);
  // Partition [0,10] drained away; lower bound advanced.
  EXPECT_EQ(q.current_lower_bound(), 10u);
  EXPECT_EQ(q.num_partitions(), 1u);
  EXPECT_EQ(q.current_partition_bound(), kInfiniteDistance);
  q.check_invariants();
}

TEST(PartitionedFarQueue, UpdateBoundaryTightensMonotonically) {
  PartitionedFarQueue q(1000);
  q.push(0, 100);
  q.push(1, 900);
  // P / alpha = 200: bound should tighten 1000 -> 200.
  const std::uint64_t moved = q.update_boundary(200.0, 1.0);
  EXPECT_EQ(moved, 1u);  // entry at 900 displaced to the next partition
  EXPECT_EQ(q.current_partition_bound(), 200u);
  q.check_invariants();
  // A larger target must NOT grow the bound back (monotone rule).
  EXPECT_EQ(q.update_boundary(100000.0, 1.0), 0u);
  EXPECT_EQ(q.current_partition_bound(), 200u);
}

TEST(PartitionedFarQueue, UpdateBoundaryOnLastPartitionAppendsMax) {
  PartitionedFarQueue q(10);
  std::vector<Distance> dist{5};
  q.push(0, 5);
  std::vector<VertexId> frontier;
  q.pull_below(100, dist, frontier);  // only the MAX partition remains
  ASSERT_EQ(q.num_partitions(), 1u);
  q.push(1, 50);
  q.update_boundary(30.0, 1.0);  // tightens MAX -> 10 + 30 = 40
  EXPECT_EQ(q.num_partitions(), 2u);
  EXPECT_EQ(q.current_partition_bound(), 40u);
  q.check_invariants();
}

TEST(PartitionedFarQueue, UpdateBoundaryKeepsMinimumWidth) {
  PartitionedFarQueue q(1000);
  q.push(0, 500);
  // Tiny P/alpha: bound must stay at least lower_bound + 1.
  q.update_boundary(1e-3, 1e6);
  EXPECT_GE(q.current_partition_bound(), 1u);
  q.check_invariants();
}

TEST(PartitionedFarQueue, UpdateBoundaryRejectsBadInputs) {
  PartitionedFarQueue q(10);
  EXPECT_THROW(q.update_boundary(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(q.update_boundary(10.0, 0.0), std::invalid_argument);
}

TEST(PartitionedFarQueue, MinLiveDistanceSkipsStale) {
  PartitionedFarQueue q(100);
  std::vector<Distance> dist{3, 60, 700};
  q.push(0, 9);    // stale
  q.push(1, 60);   // live, partition 0
  q.push(2, 700);  // live, partition 1
  EXPECT_EQ(q.min_live_distance(dist), 60u);
}

TEST(PartitionedFarQueue, MinLiveDistanceEmptyIsInfinite) {
  PartitionedFarQueue q(100);
  std::vector<Distance> dist;
  EXPECT_EQ(q.min_live_distance(dist), kInfiniteDistance);
}

TEST(PartitionedFarQueue, ClearRemovesEverything) {
  PartitionedFarQueue q(100);
  q.push(0, 5);
  q.push(1, 500);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.check_invariants();
}

TEST(PartitionedFarQueue, PullFrontPartitionDrainsAndAdvances) {
  PartitionedFarQueue q(100);
  std::vector<Distance> dist{10, 50, 500};
  q.push(0, 10);
  q.push(1, 50);
  q.push(2, 500);
  std::vector<VertexId> frontier;
  const auto pull = q.pull_front_partition(dist, frontier);
  EXPECT_TRUE(pull.exhausted);
  EXPECT_EQ(pull.bound, 100u);
  EXPECT_EQ(pull.scanned, 2u);
  EXPECT_EQ(pull.pulled, 2u);
  EXPECT_EQ(frontier.size(), 2u);
  EXPECT_EQ(q.current_lower_bound(), 100u);  // partition consumed
  EXPECT_EQ(q.size(), 1u);
  q.check_invariants();
}

TEST(PartitionedFarQueue, CountLimitedPullLeavesRemainder) {
  PartitionedFarQueue q(1000);
  std::vector<Distance> dist(10);
  for (VertexId v = 0; v < 10; ++v) {
    dist[v] = 100 + v;
    q.push(v, dist[v]);
  }
  std::vector<VertexId> frontier;
  const auto pull = q.pull_front_partition(dist, frontier, 4);
  EXPECT_FALSE(pull.exhausted);
  EXPECT_EQ(pull.pulled, 4u);
  EXPECT_EQ(frontier.size(), 4u);
  EXPECT_EQ(q.size(), 6u);
  // The partition (and its floor) stay in place for the remainder.
  EXPECT_EQ(q.current_lower_bound(), 0u);
  q.check_invariants();
  // A second unlimited pull drains the rest.
  const auto rest = q.pull_front_partition(dist, frontier);
  EXPECT_TRUE(rest.exhausted);
  EXPECT_EQ(frontier.size(), 10u);
  EXPECT_TRUE(q.empty());
}

TEST(PartitionedFarQueue, CountLimitCountsLiveEntriesOnly) {
  PartitionedFarQueue q(1000);
  // Interleave stale and live entries: the limit applies to live pulls.
  std::vector<Distance> dist{5, 100, 5, 100};  // 0 and 2 stale below
  q.push(0, 50);   // stale (dist now 5)
  q.push(1, 100);  // live
  q.push(2, 60);   // stale
  q.push(3, 100);  // live
  std::vector<VertexId> frontier;
  const auto pull = q.pull_front_partition(dist, frontier, 2);
  EXPECT_EQ(pull.pulled, 2u);
  EXPECT_EQ(pull.scanned, 4u);  // scanned through the stale ones
  EXPECT_TRUE(pull.exhausted);
  q.check_invariants();
}

TEST(PartitionedFarQueue, RepeatedTighteningBuildsManyPartitions) {
  PartitionedFarQueue q(1u << 20);
  for (VertexId v = 0; v < 100; ++v) q.push(v, 1000 + v * 997);
  std::vector<Distance> dist(100);
  for (std::size_t i = 0; i < 100; ++i) dist[i] = 1000 + i * 997;
  for (int round = 0; round < 6; ++round) {
    q.update_boundary(5000.0, 1.0);
    q.check_invariants();
  }
  EXPECT_GE(q.num_partitions(), 2u);
  // All entries still accounted for.
  EXPECT_EQ(q.size(), 100u);
  // And still retrievable in distance order.
  std::vector<VertexId> frontier;
  q.pull_below(kInfiniteDistance, dist, frontier);
  EXPECT_EQ(frontier.size(), 100u);
}

}  // namespace
}  // namespace sssp::core
