// Self-healing control plane: detection thresholds of ControllerHealth
// and the DeltaController's degrade / quarantine / recover behavior
// (docs/ROBUSTNESS.md).
#include "core/controller_health.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/controller.hpp"

namespace sssp::core {
namespace {

const double kNaN = std::numeric_limits<double>::quiet_NaN();

HealthConfig small_config() {
  HealthConfig config;
  config.reject_limit = 3;
  config.pin_limit = 4;
  config.oscillation_limit = 4;
  config.probation = 3;
  return config;
}

TEST(ControllerHealth, StartsAdaptive) {
  ControllerHealth health(small_config());
  EXPECT_EQ(health.state(), ControlState::kAdaptive);
  EXPECT_FALSE(health.degraded());
  EXPECT_EQ(health.degradations(), 0u);
}

TEST(ControllerHealth, DegradesAfterRejectStreak) {
  ControllerHealth health(small_config());
  EXPECT_EQ(health.record_rejected_input(), HealthEvent::kNone);
  EXPECT_EQ(health.record_rejected_input(), HealthEvent::kNone);
  EXPECT_EQ(health.record_rejected_input(), HealthEvent::kDegraded);
  EXPECT_TRUE(health.degraded());
  EXPECT_EQ(health.degradations(), 1u);
  EXPECT_EQ(health.rejected_inputs(), 3u);
}

TEST(ControllerHealth, HealthyPlanBreaksRejectStreak) {
  ControllerHealth health(small_config());
  health.record_rejected_input();
  health.record_rejected_input();
  health.record_plan(false, 1.0, 0.1, true);  // resets the streak
  health.record_rejected_input();
  health.record_rejected_input();
  EXPECT_FALSE(health.degraded());
}

TEST(ControllerHealth, NonFiniteModelStateDegradesImmediately) {
  ControllerHealth health(small_config());
  EXPECT_EQ(health.record_plan(false, 0.0, 0.0, false),
            HealthEvent::kDegraded);
  EXPECT_TRUE(health.degraded());
}

TEST(ControllerHealth, PinStreakDegrades) {
  ControllerHealth health(small_config());
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(health.record_plan(true, -1.0, -0.5, true), HealthEvent::kNone);
  EXPECT_EQ(health.record_plan(true, -1.0, -0.5, true),
            HealthEvent::kDegraded);
}

TEST(ControllerHealth, UnpinnedPlanBreaksPinStreak) {
  ControllerHealth health(small_config());
  for (int round = 0; round < 5; ++round) {
    health.record_plan(true, -1.0, -0.5, true);
    health.record_plan(true, -1.0, -0.5, true);
    health.record_plan(false, 1.0, 0.1, true);
  }
  EXPECT_FALSE(health.degraded());
}

TEST(ControllerHealth, LargeAlternatingStepsDegrade) {
  ControllerHealth health(small_config());
  double sign = 1.0;
  HealthEvent last = HealthEvent::kNone;
  for (int i = 0; i < 6 && last == HealthEvent::kNone; ++i) {
    last = health.record_plan(false, sign * 10.0, sign * 1.5, true);
    sign = -sign;
  }
  EXPECT_EQ(last, HealthEvent::kDegraded);
}

TEST(ControllerHealth, SmallOscillationsAreHealthy) {
  ControllerHealth health(small_config());
  double sign = 1.0;
  for (int i = 0; i < 50; ++i) {
    // Alternating but small relative to delta: ordinary tracking.
    EXPECT_EQ(health.record_plan(false, sign * 1.0, sign * 0.2, true),
              HealthEvent::kNone);
    sign = -sign;
  }
  EXPECT_FALSE(health.degraded());
}

TEST(ControllerHealth, RecoversAfterProbation) {
  ControllerHealth health(small_config());
  for (int i = 0; i < 3; ++i) health.record_rejected_input();
  ASSERT_TRUE(health.degraded());
  EXPECT_EQ(health.record_plan(false, 1.0, 0.1, true), HealthEvent::kNone);
  EXPECT_EQ(health.record_plan(false, 1.0, 0.1, true), HealthEvent::kNone);
  EXPECT_EQ(health.record_plan(false, 1.0, 0.1, true),
            HealthEvent::kRecovered);
  EXPECT_FALSE(health.degraded());
  EXPECT_EQ(health.recoveries(), 1u);
}

TEST(ControllerHealth, RejectedInputDuringProbationRestartsIt) {
  ControllerHealth health(small_config());
  for (int i = 0; i < 3; ++i) health.record_rejected_input();
  ASSERT_TRUE(health.degraded());
  health.record_plan(false, 1.0, 0.1, true);
  health.record_plan(false, 1.0, 0.1, true);
  health.record_rejected_input();  // probation restarts
  EXPECT_EQ(health.record_plan(false, 1.0, 0.1, true), HealthEvent::kNone);
  EXPECT_EQ(health.record_plan(false, 1.0, 0.1, true), HealthEvent::kNone);
  EXPECT_EQ(health.record_plan(false, 1.0, 0.1, true),
            HealthEvent::kRecovered);
}

// --- DeltaController integration: firewall, fallback policy, recovery ---

ControllerConfig controller_config() {
  ControllerConfig config;
  config.set_point = 1000.0;
  config.initial_delta = 100.0;
  config.fallback_delta = 25.0;
  config.health.reject_limit = 2;
  config.health.probation = 3;
  return config;
}

TEST(DeltaControllerHealth, NonFiniteInputHoldsDelta) {
  DeltaController controller(controller_config());
  const double before = controller.delta();
  EXPECT_DOUBLE_EQ(controller.plan_delta(kNaN, 10.0, 10.0, 100.0), before);
  EXPECT_DOUBLE_EQ(controller.plan_delta(5.0, kNaN, 10.0, 100.0), before);
  EXPECT_EQ(controller.health().rejected_inputs(), 2u);
}

TEST(DeltaControllerHealth, RepeatedGarbageDegradesAndWalksFallback) {
  DeltaController controller(controller_config());
  controller.plan_delta(kNaN, 10.0, 10.0, 100.0);
  controller.plan_delta(kNaN, 10.0, 10.0, 100.0);
  ASSERT_EQ(controller.control_state(), ControlState::kDegraded);
  EXPECT_EQ(controller.health().degradations(), 1u);
  EXPECT_EQ(controller.health().model_resets(), 1u);

  // Degraded planning ignores the models: delta walks up by the
  // fallback bucket width per plan, regardless of X4.
  const double d0 = controller.delta();
  const double d1 = controller.plan_delta(1e9, 10.0, 10.0, 100.0);
  EXPECT_DOUBLE_EQ(d1, d0 + 25.0);
  const double d2 = controller.plan_delta(0.0, 10.0, 10.0, 100.0);
  EXPECT_DOUBLE_EQ(d2, d1 + 25.0);
}

TEST(DeltaControllerHealth, RecoversToAdaptiveAfterProbation) {
  DeltaController controller(controller_config());
  controller.plan_delta(kNaN, 10.0, 10.0, 100.0);
  controller.plan_delta(kNaN, 10.0, 10.0, 100.0);
  ASSERT_TRUE(controller.health().degraded());

  for (int i = 0; i < 3; ++i) {
    controller.observe_advance(900.0, 9000.0);
    controller.plan_delta(900.0, 10.0, 10.0, 100.0);
  }
  EXPECT_EQ(controller.control_state(), ControlState::kAdaptive);
  EXPECT_EQ(controller.health().recoveries(), 1u);
  EXPECT_TRUE(std::isfinite(controller.delta()));

  // Back in adaptive mode: planning responds to X4 again (an over-target
  // frontier pushes delta down, not up by the fallback step).
  const double before = controller.delta();
  const double planned = controller.plan_delta(1e7, 10.0, 10.0, 100.0);
  EXPECT_LT(planned, before);
}

TEST(DeltaControllerHealth, ForceDeltaRejectsNonFinite) {
  DeltaController controller(controller_config());
  const double before = controller.delta();
  controller.force_delta(kNaN, 5.0);
  controller.force_delta(200.0, kNaN);
  EXPECT_DOUBLE_EQ(controller.delta(), before);
  EXPECT_EQ(controller.health().rejected_inputs(), 2u);
}

TEST(DeltaControllerHealth, RejectsBadFallbackDelta) {
  ControllerConfig config = controller_config();
  config.fallback_delta = kNaN;
  EXPECT_THROW(DeltaController{config}, std::invalid_argument);
  config.fallback_delta = -1.0;
  EXPECT_THROW(DeltaController{config}, std::invalid_argument);
}

}  // namespace
}  // namespace sssp::core
