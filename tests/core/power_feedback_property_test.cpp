// Parameterized sweeps over the power-feedback loop: exactness and
// budget behaviour across gains, budgets, and devices.
#include <gtest/gtest.h>

#include <tuple>

#include "core/power_feedback.hpp"
#include "graph/datasets.hpp"
#include "sssp/dijkstra.hpp"

namespace sssp::core {
namespace {

using Case = std::tuple<double /*budget_w*/, double /*gain*/,
                        const char* /*device*/>;

class PowerFeedbackProperty : public ::testing::TestWithParam<Case> {
 protected:
  static void SetUpTestSuite() {
    graph_ = new graph::CsrGraph(
        graph::make_dataset(graph::Dataset::kCal, {.scale = 1.0 / 64.0}));
    source_ = graph::default_source(graph::Dataset::kCal, *graph_);
    reference_ = new std::vector<graph::Distance>(
        algo::dijkstra_distances(*graph_, source_));
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete reference_;
    graph_ = nullptr;
    reference_ = nullptr;
  }

  static graph::CsrGraph* graph_;
  static std::vector<graph::Distance>* reference_;
  static graph::VertexId source_;
};

graph::CsrGraph* PowerFeedbackProperty::graph_ = nullptr;
std::vector<graph::Distance>* PowerFeedbackProperty::reference_ = nullptr;
graph::VertexId PowerFeedbackProperty::source_ = 0;

TEST_P(PowerFeedbackProperty, ExactAndWellFormed) {
  const auto [budget, gain, device_name] = GetParam();
  const sim::DeviceSpec device = std::string(device_name) == "tx1"
                                     ? sim::DeviceSpec::jetson_tx1()
                                     : sim::DeviceSpec::jetson_tk1();
  PowerFeedbackOptions options;
  options.power_budget_w = budget;
  options.gain = gain;
  const auto result = power_feedback_sssp(*graph_, source_, device,
                                          sim::DefaultGovernor(), options);
  EXPECT_EQ(algo::count_distance_mismatches(result.sssp.distances,
                                            *reference_),
            0u);
  EXPECT_EQ(result.set_point_trace.size(), result.sssp.num_iterations());
  for (const double p : result.set_point_trace) {
    EXPECT_GE(p, options.min_set_point);
    EXPECT_LE(p, options.max_set_point);
  }
  for (const double w : result.power_trace_w) {
    EXPECT_GT(w, 0.0);
    EXPECT_LT(w, 30.0);  // sanity: board-level watts
  }
  EXPECT_GE(result.compliant_fraction, 0.0);
  EXPECT_LE(result.compliant_fraction, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PowerFeedbackProperty,
    ::testing::Combine(::testing::Values(4.0, 5.5, 50.0),
                       ::testing::Values(0.1, 0.5, 2.0),
                       ::testing::Values("tk1", "tx1")),
    [](const ::testing::TestParamInfo<Case>& tpi) {
      return "budget" +
             std::to_string(static_cast<int>(std::get<0>(tpi.param) * 10)) +
             "_gain" +
             std::to_string(static_cast<int>(std::get<1>(tpi.param) * 10)) +
             "_" + std::get<2>(tpi.param);
    });

TEST(PowerFeedbackOrdering, TighterBudgetsNeverUseMorePower) {
  const auto g =
      graph::make_dataset(graph::Dataset::kWiki, {.scale = 1.0 / 256.0});
  const auto src = graph::default_source(graph::Dataset::kWiki, g);
  const sim::DeviceSpec device = sim::DeviceSpec::jetson_tk1();
  double previous = 0.0;
  for (const double budget : {4.2, 5.5, 7.0, 50.0}) {
    PowerFeedbackOptions options;
    options.power_budget_w = budget;
    const auto result = power_feedback_sssp(g, src, device,
                                            sim::DefaultGovernor(), options);
    EXPECT_GE(result.report.average_power_w + 0.35, previous)
        << "budget " << budget;  // weakly increasing (0.35 W noise band)
    previous = result.report.average_power_w;
  }
}

}  // namespace
}  // namespace sssp::core
