#include "core/tunable_pagerank.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/datasets.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::core {
namespace {

using algo::testing::random_graph;
using algo::testing::ring;

double l1_difference(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += std::abs(a[i] - b[i]);
  return total;
}

TEST(TunablePageRank, RejectsBadOptions) {
  const auto g = ring(4);
  TunablePageRankOptions options;
  options.damping = 1.5;
  EXPECT_THROW(tunable_pagerank(g, options), std::invalid_argument);
  options = {};
  options.tolerance = 0.0;
  EXPECT_THROW(tunable_pagerank(g, options), std::invalid_argument);
  options = {};
  options.gain = 0.0;
  EXPECT_THROW(tunable_pagerank(g, options), std::invalid_argument);
}

TEST(TunablePageRank, EmptyGraph) {
  const graph::CsrGraph g(std::vector<graph::EdgeIndex>{0}, {}, {});
  const auto result = tunable_pagerank(g, {});
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.ranks.empty());
}

TEST(TunablePageRank, UniformOnRing) {
  // Perfect symmetry: every vertex must get rank 1/n.
  const auto g = ring(100);
  TunablePageRankOptions options;
  options.tolerance = 1e-10;
  const auto result = tunable_pagerank(g, options);
  ASSERT_TRUE(result.converged);
  for (const double rank : result.ranks) EXPECT_NEAR(rank, 0.01, 1e-6);
}

TEST(TunablePageRank, MatchesPowerIteration) {
  const auto g = random_graph(500, 6.0, 9, 71);
  TunablePageRankOptions options;
  options.tolerance = 1e-9;
  const auto push = tunable_pagerank(g, options);
  ASSERT_TRUE(push.converged);
  const auto power = pagerank_power_iteration(g, options.damping, 200);
  EXPECT_LT(l1_difference(push.ranks, power), 1e-5);
}

TEST(TunablePageRank, SetPointDoesNotChangeRanks) {
  const auto g = random_graph(400, 5.0, 9, 72);
  TunablePageRankOptions base;
  base.tolerance = 1e-8;
  const auto unconstrained = tunable_pagerank(g, base);
  for (const double p : {100.0, 2000.0}) {
    TunablePageRankOptions controlled = base;
    controlled.set_point = p;
    const auto result = tunable_pagerank(g, controlled);
    ASSERT_TRUE(result.converged) << p;
    EXPECT_LT(l1_difference(result.ranks, unconstrained.ranks), 1e-5) << p;
  }
}

TEST(TunablePageRank, ControllerLimitsPerIterationWork) {
  const auto g =
      graph::make_dataset(graph::Dataset::kWiki, {.scale = 1.0 / 256.0});
  TunablePageRankOptions controlled;
  controlled.tolerance = 1e-7;
  controlled.set_point = 5000.0;
  const auto result = tunable_pagerank(g, controlled);
  ASSERT_TRUE(result.converged);
  // After the first iteration (everything starts active), per-iteration
  // edge work should be throttled to the set-point's order.
  std::uint64_t peak_after_start = 0;
  for (std::size_t i = 1; i < result.iterations.size(); ++i)
    peak_after_start = std::max(peak_after_start, result.iterations[i].x2);
  EXPECT_LT(static_cast<double>(peak_after_start), 20.0 * controlled.set_point);
  // And the unconstrained run has strictly larger bursts.
  TunablePageRankOptions unconstrained = controlled;
  unconstrained.set_point = 0.0;
  const auto wild = tunable_pagerank(g, unconstrained);
  std::uint64_t wild_peak = 0;
  for (std::size_t i = 1; i < wild.iterations.size(); ++i)
    wild_peak = std::max(wild_peak, wild.iterations[i].x2);
  EXPECT_GT(wild_peak, peak_after_start);
}

TEST(TunablePageRank, RanksSumBelowOneWithDanglingMassDropped) {
  // 0 -> 1, 1 dangling: mass pushed into 1 stays there; totals stay in
  // (0, 1]. (Exact sum depends on dropped dangling teleport mass.)
  const auto g = graph::build_csr(2, {{0, 1, 1}});
  TunablePageRankOptions options;
  options.tolerance = 1e-10;
  const auto result = tunable_pagerank(g, options);
  const double sum =
      std::accumulate(result.ranks.begin(), result.ranks.end(), 0.0);
  EXPECT_GT(sum, 0.1);
  EXPECT_LE(sum, 1.0 + 1e-9);
  EXPECT_GT(result.ranks[1], result.ranks[0]);  // 1 receives 0's push
}

TEST(TunablePageRank, MaxIterationsCap) {
  const auto g = random_graph(300, 5.0, 9, 73);
  TunablePageRankOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 3;
  const auto result = tunable_pagerank(g, options);
  EXPECT_EQ(result.iterations.size(), 3u);
  EXPECT_FALSE(result.converged);
}

}  // namespace
}  // namespace sssp::core
