#include "core/adaptive_sgd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/rng.hpp"

namespace sssp::core {
namespace {

TEST(AdaptiveSgd, DefaultsMatchAlgorithmOneInit) {
  AdaptiveSgd sgd;
  EXPECT_DOUBLE_EQ(sgd.parameter(), 1.0);
  EXPECT_NEAR(sgd.tau(), 2.0, 1e-4);  // (1 + eps) * 2
  EXPECT_EQ(sgd.updates(), 0u);
}

TEST(AdaptiveSgd, ZeroInputIsNoOp) {
  AdaptiveSgd sgd;
  const double before = sgd.parameter();
  sgd.update(0.0, 100.0);
  EXPECT_DOUBLE_EQ(sgd.parameter(), before);
  EXPECT_EQ(sgd.updates(), 0u);
}

TEST(AdaptiveSgd, ConvergesOnNoiselessLinearData) {
  AdaptiveSgdOptions options;
  options.initial_parameter = 1.0;
  AdaptiveSgd sgd(options);
  const double true_theta = 7.5;
  for (int k = 0; k < 400; ++k) {
    const double x = 1.0 + (k % 13);
    sgd.update(x, true_theta * x);
  }
  EXPECT_NEAR(sgd.parameter(), true_theta, 0.05 * true_theta);
}

TEST(AdaptiveSgd, ConvergesUnderNoise) {
  AdaptiveSgdOptions options;
  options.initial_parameter = 0.5;
  AdaptiveSgd sgd(options);
  util::Xoshiro256 rng(99);
  const double true_theta = 3.0;
  for (int k = 0; k < 3000; ++k) {
    const double x = 1.0 + 9.0 * rng.next_double();
    const double noise = (rng.next_double() - 0.5) * 0.4 * x;
    sgd.update(x, true_theta * x + noise);
  }
  EXPECT_NEAR(sgd.parameter(), true_theta, 0.2 * true_theta);
}

TEST(AdaptiveSgd, TracksDriftingParameter) {
  // The paper's models must follow nonstationary targets (frontier
  // degree changes as the wavefront moves through the graph).
  AdaptiveSgd sgd;
  double theta = 2.0;
  for (int k = 0; k < 2000; ++k) {
    theta = 2.0 + (k / 500);  // steps at 500, 1000, 1500
    const double x = 1.0 + (k % 7);
    sgd.update(x, theta * x);
  }
  EXPECT_NEAR(sgd.parameter(), theta, 0.2 * theta);
}

TEST(AdaptiveSgd, StableUnderLargeMagnitudeInputs) {
  // Frontier sizes reach 1e6; gradients reach ~1e18. The adaptation must
  // neither overflow nor explode the parameter.
  AdaptiveSgd sgd;
  for (int k = 0; k < 100; ++k) {
    const double x = 1e6;
    sgd.update(x, 4.2 * x);
    ASSERT_TRUE(std::isfinite(sgd.parameter())) << k;
  }
  EXPECT_NEAR(sgd.parameter(), 4.2, 0.5);
}

TEST(AdaptiveSgd, RespectsParameterClamp) {
  AdaptiveSgdOptions options;
  options.initial_parameter = 1.0;
  options.min_parameter = 0.5;
  options.max_parameter = 2.0;
  AdaptiveSgd sgd(options);
  for (int k = 0; k < 200; ++k) sgd.update(1.0, 100.0);  // wants theta = 100
  EXPECT_DOUBLE_EQ(sgd.parameter(), 2.0);
  for (int k = 0; k < 200; ++k) sgd.update(1.0, 0.0);  // wants theta = 0
  EXPECT_DOUBLE_EQ(sgd.parameter(), 0.5);
}

TEST(AdaptiveSgd, FixedRateModeConverges) {
  AdaptiveSgdOptions options;
  options.adaptive = false;
  options.fixed_learning_rate = 0.1;
  AdaptiveSgd sgd(options);
  for (int k = 0; k < 500; ++k) {
    const double x = 1.0 + (k % 5);
    sgd.update(x, 6.0 * x);
  }
  EXPECT_NEAR(sgd.parameter(), 6.0, 0.3);
}

TEST(AdaptiveSgd, AdaptiveOutpacesTinyFixedRateOnCleanData) {
  AdaptiveSgdOptions fixed_options;
  fixed_options.adaptive = false;
  fixed_options.fixed_learning_rate = 1e-4;
  AdaptiveSgd fixed(fixed_options);
  AdaptiveSgd adaptive;
  const double true_theta = 50.0;
  for (int k = 0; k < 100; ++k) {
    const double x = 1.0 + (k % 3);
    fixed.update(x, true_theta * x);
    adaptive.update(x, true_theta * x);
  }
  const double fixed_err = std::abs(fixed.parameter() - true_theta);
  const double adaptive_err = std::abs(adaptive.parameter() - true_theta);
  EXPECT_LT(adaptive_err, fixed_err);
}

TEST(AdaptiveSgd, TauNeverDropsBelowOne) {
  AdaptiveSgd sgd;
  for (int k = 0; k < 200; ++k) {
    sgd.update(1.0 + (k % 4), 3.0 * (1.0 + (k % 4)));
    ASSERT_GE(sgd.tau(), 1.0);
  }
}

TEST(AdaptiveSgd, RejectsBadOptions) {
  AdaptiveSgdOptions options;
  options.epsilon = 0.0;
  EXPECT_THROW(AdaptiveSgd{options}, std::invalid_argument);
  options = {};
  options.min_parameter = 5.0;
  options.max_parameter = 1.0;
  EXPECT_THROW(AdaptiveSgd{options}, std::invalid_argument);
  options = {};
  options.adaptive = false;
  options.fixed_learning_rate = 0.0;
  EXPECT_THROW(AdaptiveSgd{options}, std::invalid_argument);
}

TEST(AdaptiveSgd, PredictionUsesCurrentParameter) {
  AdaptiveSgd sgd;
  sgd.set_parameter(3.0);
  EXPECT_DOUBLE_EQ(sgd.prediction(4.0), 12.0);
}

TEST(AdaptiveSgd, RejectsNonFiniteObservations) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  AdaptiveSgd sgd;
  // Warm up on clean data so there is real state to protect.
  for (int k = 0; k < 50; ++k) sgd.update(1.0 + (k % 3), 2.0 * (1.0 + (k % 3)));
  const double theta = sgd.parameter();
  const double tau = sgd.tau();
  const std::uint64_t updates = sgd.updates();

  sgd.update(nan, 2.0);
  sgd.update(2.0, nan);
  sgd.update(inf, 2.0);
  sgd.update(2.0, -inf);
  sgd.update(nan, nan);

  EXPECT_EQ(sgd.rejected(), 5u);
  EXPECT_EQ(sgd.updates(), updates);  // rejected samples are not updates
  EXPECT_DOUBLE_EQ(sgd.parameter(), theta);
  EXPECT_DOUBLE_EQ(sgd.tau(), tau);
  EXPECT_TRUE(std::isfinite(sgd.parameter()));

  // Clean observations after the garbage keep converging.
  for (int k = 0; k < 50; ++k) sgd.update(1.0 + (k % 3), 2.0 * (1.0 + (k % 3)));
  EXPECT_NEAR(sgd.parameter(), 2.0, 0.2);
}

}  // namespace
}  // namespace sssp::core
