#include "core/power_cap.hpp"

#include <gtest/gtest.h>

#include "tests/sssp/test_graphs.hpp"

namespace sssp::core {
namespace {

class PowerCapTest : public ::testing::Test {
 protected:
  graph::CsrGraph graph_ = algo::testing::random_graph(4000, 6.0, 99, 55);
  sim::DeviceSpec device_ = sim::DeviceSpec::jetson_tk1();
  sim::DefaultGovernor policy_;
};

TEST_F(PowerCapTest, RejectsNonPositiveBudget) {
  PowerCapOptions options;
  EXPECT_THROW(
      choose_set_point_for_power_cap(graph_, 0, device_, policy_, options),
      std::invalid_argument);
}

TEST_F(PowerCapTest, GenerousBudgetAdmitsEveryCandidate) {
  PowerCapOptions options;
  options.power_budget_w = 1000.0;  // way above any board power
  options.candidate_set_points = {500.0, 5000.0, 50000.0};
  const PowerCapResult r = choose_set_point_for_power_cap(
      graph_, 0, device_, policy_, options);
  ASSERT_EQ(r.sweep.size(), 3u);
  for (const auto& point : r.sweep) EXPECT_TRUE(point.within_budget);
  EXPECT_GT(r.chosen_set_point, 0.0);
  // Chosen point must be the fastest among within-budget points.
  double best_time = 1e300;
  double best_p = 0.0;
  for (const auto& point : r.sweep) {
    if (point.within_budget && point.simulated_seconds < best_time) {
      best_time = point.simulated_seconds;
      best_p = point.set_point;
    }
  }
  EXPECT_DOUBLE_EQ(r.chosen_set_point, best_p);
}

TEST_F(PowerCapTest, ImpossibleBudgetYieldsBestEffortOnly) {
  PowerCapOptions options;
  options.power_budget_w = 0.5;  // below board static power
  options.candidate_set_points = {500.0, 50000.0};
  const PowerCapResult r = choose_set_point_for_power_cap(
      graph_, 0, device_, policy_, options);
  EXPECT_DOUBLE_EQ(r.chosen_set_point, 0.0);
  EXPECT_GT(r.best_effort_set_point, 0.0);
  for (const auto& point : r.sweep) EXPECT_FALSE(point.within_budget);
  // Best-effort is the lowest-power candidate.
  double lowest = 1e300;
  double lowest_p = 0.0;
  for (const auto& point : r.sweep) {
    if (point.average_power_w < lowest) {
      lowest = point.average_power_w;
      lowest_p = point.set_point;
    }
  }
  EXPECT_DOUBLE_EQ(r.best_effort_set_point, lowest_p);
}

TEST_F(PowerCapTest, DefaultGridIsGenerated) {
  PowerCapOptions options;
  options.power_budget_w = 100.0;
  const PowerCapResult r = choose_set_point_for_power_cap(
      graph_, 0, device_, policy_, options);
  EXPECT_GE(r.sweep.size(), 3u);
}

}  // namespace
}  // namespace sssp::core
