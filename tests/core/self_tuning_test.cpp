#include "core/self_tuning.hpp"

#include <gtest/gtest.h>

#include "graph/datasets.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/near_far.hpp"
#include "tests/sssp/test_graphs.hpp"
#include "util/rng.hpp"

namespace sssp::core {
namespace {

using algo::count_distance_mismatches;
using algo::dijkstra_distances;
using algo::testing::diamond;
using algo::testing::random_graph;
using algo::testing::ring;

TEST(SelfTuning, RejectsMissingSetPoint) {
  const auto g = diamond();
  EXPECT_THROW(self_tuning_sssp(g, 0, SelfTuningOptions{}),
               std::invalid_argument);
}

TEST(SelfTuning, DiamondDistancesExact) {
  const auto g = diamond();
  SelfTuningOptions options;
  options.set_point = 100.0;
  const auto r = self_tuning_sssp(g, 0, options);
  EXPECT_EQ(r.distances, dijkstra_distances(g, 0));
  EXPECT_EQ(r.algorithm, "self-tuning");
}

TEST(SelfTuning, RingExact) {
  const auto g = ring(200);
  SelfTuningOptions options;
  options.set_point = 10.0;
  const auto r = self_tuning_sssp(g, 0, options);
  EXPECT_EQ(count_distance_mismatches(r.distances, dijkstra_distances(g, 0)),
            0u);
}

TEST(SelfTuning, ControllerTimeMeasuredWhenEnabled) {
  const auto g = random_graph(2000, 5.0, 99, 8);
  SelfTuningOptions options;
  options.set_point = 500.0;
  options.measure_controller_time = true;
  const auto r = self_tuning_sssp(g, 0, options);
  EXPECT_GT(r.controller_seconds, 0.0);
  options.measure_controller_time = false;
  const auto r2 = self_tuning_sssp(g, 0, options);
  EXPECT_DOUBLE_EQ(r2.controller_seconds, 0.0);
}

TEST(SelfTuning, DeterministicWorkloadWithoutTimeMeasurement) {
  const auto g = random_graph(1500, 4.0, 99, 77);
  SelfTuningOptions options;
  options.set_point = 800.0;
  options.measure_controller_time = false;
  const auto a = self_tuning_sssp(g, 3, options);
  const auto b = self_tuning_sssp(g, 3, options);
  ASSERT_EQ(a.num_iterations(), b.num_iterations());
  for (std::size_t i = 0; i < a.num_iterations(); ++i) {
    EXPECT_EQ(a.iterations[i].x1, b.iterations[i].x1) << i;
    EXPECT_EQ(a.iterations[i].x2, b.iterations[i].x2) << i;
    EXPECT_EQ(a.iterations[i].x4, b.iterations[i].x4) << i;
    EXPECT_DOUBLE_EQ(a.iterations[i].delta, b.iterations[i].delta) << i;
  }
}

TEST(SelfTuning, HigherSetPointRaisesAverageParallelism) {
  const auto g = random_graph(8000, 6.0, 99, 12);
  SelfTuningOptions low;
  low.set_point = 200.0;
  low.measure_controller_time = false;
  SelfTuningOptions high = low;
  high.set_point = 20000.0;
  const auto r_low = self_tuning_sssp(g, 0, low);
  const auto r_high = self_tuning_sssp(g, 0, high);
  EXPECT_GT(r_high.average_parallelism(), r_low.average_parallelism());
}

TEST(SelfTuning, ParallelismConcentratesNearSetPoint) {
  // The paper's Figure 5 claim (measured on Cal, as in the paper):
  // median X2 lands near P with modest spread after the convergence
  // phase. The graph must be large enough that its wavefront can
  // sustain the set-point.
  const auto g =
      graph::make_dataset(graph::Dataset::kCal, {.scale = 1.0 / 16.0});
  const double P = 10000.0;
  SelfTuningOptions options;
  options.set_point = P;
  options.measure_controller_time = false;
  const auto src = graph::default_source(graph::Dataset::kCal, g);
  const auto r = self_tuning_sssp(g, src, options);

  // Median over the steady phase (skip the first 25% of iterations).
  std::vector<double> steady;
  for (std::size_t i = r.num_iterations() / 4; i < r.num_iterations(); ++i)
    steady.push_back(static_cast<double>(r.iterations[i].x2));
  ASSERT_GE(steady.size(), 8u);
  std::sort(steady.begin(), steady.end());
  const double median = steady[steady.size() / 2];
  EXPECT_GT(median, 0.4 * P);
  EXPECT_LT(median, 2.5 * P);
}

TEST(SelfTuning, LowerVariabilityThanTimeMinimizingBaselineTail) {
  // Figure 1's qualitative claim: the controller narrows the dynamic
  // range of parallelism relative to peak. Compare peak/median ratios.
  const auto g =
      graph::make_dataset(graph::Dataset::kWiki, {.scale = 1.0 / 64.0});
  const auto src = graph::default_source(graph::Dataset::kWiki, g);

  // Static delta chosen so the baseline's *average* parallelism is
  // comparable to the controller's set-point — the fair Fig. 1 contrast:
  // same typical level, very different burst behaviour.
  const auto baseline = algo::near_far(g, src, {.delta = 8});
  SelfTuningOptions options;
  options.set_point = 20000.0;
  options.measure_controller_time = false;
  const auto tuned = self_tuning_sssp(g, src, options);

  // Burst factor: how far the largest iteration towers over the run's
  // average parallelism. Fig. 1's tightened band means the controller's
  // bursts are small relative to its (higher) typical level.
  auto peak_over_mean = [](const algo::SsspResult& r) {
    double peak = 0.0;
    for (const auto& it : r.iterations)
      peak = std::max(peak, static_cast<double>(it.x2));
    return peak / std::max(1.0, r.average_parallelism());
  };
  EXPECT_LT(peak_over_mean(tuned), peak_over_mean(baseline));
  // And the controller raises the typical level of parallelism.
  EXPECT_GT(tuned.average_parallelism(), baseline.average_parallelism());
}

TEST(SelfTuning, ParallelAdvanceExactWithValidTree) {
  const auto g = random_graph(6000, 6.0, 99, 52);
  SelfTuningOptions options;
  options.set_point = 5000.0;
  options.parallel_advance = true;
  const auto r = self_tuning_sssp(g, 0, options);
  EXPECT_EQ(algo::count_distance_mismatches(r.distances,
                                            dijkstra_distances(g, 0)),
            0u);
  EXPECT_EQ(algo::count_tree_violations(g, r), 0u);
}

TEST(SelfTuning, RecordsModelEstimates) {
  // On a ring every frontier vertex has out-degree exactly 1, so the
  // ADVANCE-MODEL's d must converge to 1 and is recorded per iteration.
  const auto g = ring(2000);
  SelfTuningOptions options;
  options.set_point = 50.0;
  const auto r = self_tuning_sssp(g, 0, options);
  ASSERT_GT(r.num_iterations(), 10u);
  for (const auto& it : r.iterations) {
    EXPECT_GT(it.degree_estimate, 0.0);
    EXPECT_GT(it.alpha_estimate, 0.0);
  }
  EXPECT_NEAR(r.iterations.back().degree_estimate, 1.0, 0.2);
}

TEST(SelfTuning, MaxIterationsCap) {
  const auto g = ring(5000);
  SelfTuningOptions options;
  options.set_point = 1.0;
  options.max_iterations = 25;
  const auto r = self_tuning_sssp(g, 0, options);
  EXPECT_EQ(r.num_iterations(), 25u);
}

TEST(SelfTuning, ZeroWeightEdgesExact) {
  std::vector<graph::Edge> edges;
  util::Xoshiro256 rng(123);
  for (int i = 0; i < 2000; ++i) {
    edges.push_back({static_cast<graph::VertexId>(rng.next_below(400)),
                     static_cast<graph::VertexId>(rng.next_below(400)),
                     static_cast<graph::Weight>(rng.next_below(5))});  // 0-4
  }
  const auto g = graph::build_csr(400, std::move(edges));
  SelfTuningOptions options;
  options.set_point = 300.0;
  const auto r = self_tuning_sssp(g, 0, options);
  EXPECT_EQ(count_distance_mismatches(r.distances, dijkstra_distances(g, 0)),
            0u);
}

TEST(SelfTuning, UnreachableVerticesStayInfinite) {
  const auto g = graph::build_csr(6, {{0, 1, 3}, {1, 2, 4}});
  SelfTuningOptions options;
  options.set_point = 50.0;
  const auto r = self_tuning_sssp(g, 0, options);
  EXPECT_EQ(r.reached_count(), 3u);
  EXPECT_EQ(r.distances[5], graph::kInfiniteDistance);
}

TEST(SelfTuning, AblationsStillExact) {
  const auto g = random_graph(1200, 4.0, 99, 31);
  const auto expected = dijkstra_distances(g, 0);
  for (const bool adaptive : {true, false}) {
    for (const bool down : {true, false}) {
      for (const bool bounds : {true, false}) {
        SelfTuningOptions options;
        options.set_point = 1000.0;
        options.adaptive_learning_rate = adaptive;
        options.rebalance_down = down;
        options.partition_boundaries = bounds;
        const auto r = self_tuning_sssp(g, 0, options);
        EXPECT_EQ(count_distance_mismatches(r.distances, expected), 0u)
            << "adaptive=" << adaptive << " down=" << down
            << " bounds=" << bounds;
      }
    }
  }
}

// Exactness property sweep: arbitrary set-points must never break
// correctness (the controller only shifts work, never skips it).
struct TuningCase {
  std::uint64_t seed;
  double set_point;
};

class SelfTuningProperty : public ::testing::TestWithParam<TuningCase> {};

TEST_P(SelfTuningProperty, MatchesDijkstra) {
  const auto [seed, set_point] = GetParam();
  const auto g = random_graph(900, 5.0, 99, seed);
  const auto src = static_cast<graph::VertexId>((seed * 37) % 900);
  SelfTuningOptions options;
  options.set_point = set_point;
  const auto r = self_tuning_sssp(g, src, options);
  EXPECT_EQ(
      count_distance_mismatches(r.distances, dijkstra_distances(g, src)), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelfTuningProperty,
    ::testing::Values(TuningCase{1, 1.0}, TuningCase{1, 100.0},
                      TuningCase{1, 10000.0}, TuningCase{1, 1e7},
                      TuningCase{2, 50.0}, TuningCase{2, 5000.0},
                      TuningCase{3, 333.0}, TuningCase{4, 2.0},
                      TuningCase{5, 1e6}, TuningCase{6, 777.0}),
    [](const ::testing::TestParamInfo<TuningCase>& tpi) {
      return "seed" + std::to_string(tpi.param.seed) + "_P" +
             std::to_string(static_cast<long long>(tpi.param.set_point));
    });

}  // namespace
}  // namespace sssp::core
