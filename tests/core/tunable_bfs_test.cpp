#include "core/tunable_bfs.hpp"

#include <gtest/gtest.h>

#include "graph/datasets.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::core {
namespace {

using algo::testing::diamond;
using algo::testing::random_graph;
using algo::testing::ring;

TEST(BfsLevels, ReferenceOnKnownGraphs) {
  const auto g = diamond();
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], 1u);
  EXPECT_EQ(levels[3], 2u);

  const auto r = ring(10);
  const auto ring_levels = bfs_levels(r, 3);
  EXPECT_EQ(ring_levels[3], 0u);
  EXPECT_EQ(ring_levels[4], 1u);
  EXPECT_EQ(ring_levels[2], 9u);
}

TEST(BfsLevels, UnreachableIsInfinite) {
  const auto g = graph::build_csr(3, {{0, 1, 7}});
  EXPECT_EQ(bfs_levels(g, 0)[2], graph::kInfiniteDistance);
}

TEST(BfsLevels, OutOfRangeSourceThrows) {
  EXPECT_THROW(bfs_levels(ring(3), 5), std::invalid_argument);
}

TEST(TunableBfs, RejectsMissingSetPoint) {
  EXPECT_THROW(tunable_bfs(ring(4), 0, TunableBfsOptions{}),
               std::invalid_argument);
}

TEST(TunableBfs, LevelsExactRegardlessOfWeights) {
  // The graph has non-unit weights; BFS must ignore them.
  const auto g = random_graph(1500, 5.0, 99, 61);
  TunableBfsOptions options;
  options.set_point = 2000.0;
  const auto result = tunable_bfs(g, 0, options);
  EXPECT_EQ(result.levels, bfs_levels(g, 0));
}

TEST(TunableBfs, LevelsExactAcrossSetPoints) {
  const auto g = random_graph(1000, 4.0, 50, 62);
  const auto expected = bfs_levels(g, 7);
  for (const double p : {10.0, 500.0, 50000.0}) {
    TunableBfsOptions options;
    options.set_point = p;
    EXPECT_EQ(tunable_bfs(g, 7, options).levels, expected) << "P=" << p;
  }
}

TEST(TunableBfs, SmallSetPointCapsLevelBursts) {
  // On a scale-free graph the middle BFS levels are enormous; a small
  // set-point must cap per-iteration work by postponing level slices.
  const auto g =
      graph::make_dataset(graph::Dataset::kWiki, {.scale = 1.0 / 256.0});
  const auto src = graph::default_source(graph::Dataset::kWiki, g);

  TunableBfsOptions capped;
  capped.set_point = 2000.0;
  TunableBfsOptions uncapped;
  uncapped.set_point = 1e9;  // effectively no cap
  const auto capped_run = tunable_bfs(g, src, capped);
  const auto uncapped_run = tunable_bfs(g, src, uncapped);

  auto peak_x2 = [](const TunableBfsResult& r) {
    std::uint64_t peak = 0;
    for (const auto& it : r.iterations) peak = std::max(peak, it.x2);
    return peak;
  };
  EXPECT_LT(peak_x2(capped_run), peak_x2(uncapped_run) / 2);
  // Capping trades burst size for more iterations.
  EXPECT_GT(capped_run.iterations.size(), uncapped_run.iterations.size());
  // Levels stay exact either way.
  EXPECT_EQ(capped_run.levels, bfs_levels(g, src));
}

TEST(TunableBfs, GridWavefrontTracksSetPoint) {
  const auto g = graph::make_dataset(graph::Dataset::kCal,
                                     {.scale = 1.0 / 64.0});
  const auto src = graph::default_source(graph::Dataset::kCal, g);
  TunableBfsOptions options;
  options.set_point = 2000.0;
  const auto run = tunable_bfs(g, src, options);
  EXPECT_EQ(run.levels, bfs_levels(g, src));
  EXPECT_GT(run.average_parallelism, 200.0);
}

}  // namespace
}  // namespace sssp::core
