// Integration: the qualitative shapes the paper's figures report, as
// executable assertions at test scale. These are the regression guards
// for EXPERIMENTS.md — if a refactor silently flips a figure's shape,
// one of these fails before the benchmark harness is ever run.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/self_tuning.hpp"
#include "graph/datasets.hpp"
#include "sim/run.hpp"
#include "sssp/delta_sweep.hpp"
#include "sssp/near_far.hpp"

namespace sssp {
namespace {

class FigureShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cal_ = new graph::CsrGraph(
        graph::make_dataset(graph::Dataset::kCal, {.scale = 1.0 / 32.0}));
    cal_src_ = graph::default_source(graph::Dataset::kCal, *cal_);
    wiki_ = new graph::CsrGraph(
        graph::make_dataset(graph::Dataset::kWiki, {.scale = 1.0 / 128.0}));
    wiki_src_ = graph::default_source(graph::Dataset::kWiki, *wiki_);
  }
  static void TearDownTestSuite() {
    delete cal_;
    delete wiki_;
    cal_ = wiki_ = nullptr;
  }

  static graph::CsrGraph* cal_;
  static graph::CsrGraph* wiki_;
  static graph::VertexId cal_src_;
  static graph::VertexId wiki_src_;
  sim::DeviceSpec device_ = sim::DeviceSpec::jetson_tk1();
};

graph::CsrGraph* FigureShapes::cal_ = nullptr;
graph::CsrGraph* FigureShapes::wiki_ = nullptr;
graph::VertexId FigureShapes::cal_src_ = 0;
graph::VertexId FigureShapes::wiki_src_ = 0;

// Figure 2: average parallelism is monotone (weakly) in delta and spans
// a large dynamic range.
TEST_F(FigureShapes, Fig2ParallelismGrowsWithDelta) {
  const std::pair<graph::CsrGraph*, graph::VertexId> inputs[] = {
      {cal_, cal_src_}, {wiki_, wiki_src_}};
  for (const auto& [input_graph, input_source] : inputs) {
    double previous = 0.0;
    std::size_t violations = 0;
    std::vector<double> series;
    for (graph::Distance delta = 1; delta <= (1u << 16); delta *= 8) {
      const auto run =
          algo::near_far(*input_graph, input_source, {.delta = delta});
      series.push_back(run.average_parallelism());
      if (series.back() + 1e-9 < previous) ++violations;
      previous = series.back();
    }
    EXPECT_LE(violations, 1u);  // weakly monotone (one wobble tolerated)
    EXPECT_GT(series.back(), 10.0 * series.front());
  }
}

// Figure 3: iteration count decreases with delta; simulated runtime has
// an interior minimum (U-shape).
TEST_F(FigureShapes, Fig3RuntimeIsUShapedOnCal) {
  const sim::PinnedDvfs policy(device_.max_frequencies());
  algo::DeltaSweepOptions options;
  options.min_delta = 4;
  options.max_delta = 1 << 19;
  options.ratio = 4.0;
  const auto sweep =
      algo::sweep_delta(*cal_, cal_src_, device_, policy, options);
  ASSERT_GE(sweep.points.size(), 4u);
  EXPECT_GT(sweep.points.front().iterations, sweep.points.back().iterations);
  // Interior minimum: best delta is neither the smallest nor the largest.
  EXPECT_NE(sweep.best_delta, sweep.points.front().delta);
  EXPECT_NE(sweep.best_delta, sweep.points.back().delta);
}

// Figure 5/1: the controller tightens the parallelism band around P
// relative to a comparable-average baseline.
TEST_F(FigureShapes, Fig5ControllerTightensTheBand) {
  const double p = 2000.0;
  core::SelfTuningOptions tuning;
  tuning.set_point = p;
  tuning.measure_controller_time = false;
  const auto tuned = core::self_tuning_sssp(*cal_, cal_src_, tuning);

  std::vector<double> steady;
  for (std::size_t i = tuned.num_iterations() / 4;
       i < tuned.num_iterations(); ++i)
    steady.push_back(static_cast<double>(tuned.iterations[i].x2));
  std::sort(steady.begin(), steady.end());
  const double median = steady[steady.size() / 2];
  const double iqr = steady[steady.size() * 3 / 4] - steady[steady.size() / 4];
  EXPECT_GT(median, 0.4 * p);
  EXPECT_LT(median, 2.5 * p);
  EXPECT_LT(iqr, 1.5 * median);  // concentrated mass near the median
}

// Figure 6 (Cal headline): at least one self-tuning configuration beats
// the baseline on time without using more power.
TEST_F(FigureShapes, Fig6SelfTuningDominatesBaselineSomewhereOnCal) {
  const sim::DefaultGovernor governor;
  algo::DeltaSweepOptions sweep_options;
  sweep_options.min_delta = 16;
  sweep_options.max_delta = 1 << 19;
  sweep_options.ratio = 2.0;
  const auto sweep =
      algo::sweep_delta(*cal_, cal_src_, device_, governor, sweep_options);
  const auto baseline =
      algo::near_far(*cal_, cal_src_, {.delta = sweep.best_delta});
  const auto base_report = sim::simulate_run(
      device_, governor, baseline.to_workload(""), {.keep_iteration_reports = false});

  bool dominated = false;
  for (const double p : {1000.0, 4000.0, 8000.0}) {
    core::SelfTuningOptions tuning;
    tuning.set_point = p;
    const auto run = core::self_tuning_sssp(*cal_, cal_src_, tuning);
    const auto report = sim::simulate_run(
        device_, governor, run.to_workload(""), {.keep_iteration_reports = false});
    if (report.total_seconds < base_report.total_seconds &&
        report.average_power_w <= base_report.average_power_w * 1.02) {
      dominated = true;
      break;
    }
  }
  EXPECT_TRUE(dominated);
}

// Figure 8: average power under the default governor rises with P.
TEST_F(FigureShapes, Fig8PowerRisesWithSetPoint) {
  const sim::DefaultGovernor governor;
  std::vector<double> powers;
  for (const double p : {500.0, 2000.0, 8000.0}) {
    core::SelfTuningOptions tuning;
    tuning.set_point = p;
    tuning.measure_controller_time = false;
    const auto run = core::self_tuning_sssp(*wiki_, wiki_src_, tuning);
    powers.push_back(sim::simulate_run(device_, governor,
                                       run.to_workload(""),
                                       {.keep_iteration_reports = false})
                         .average_power_w);
  }
  EXPECT_LT(powers.front(), powers.back());
}

}  // namespace
}  // namespace sssp
