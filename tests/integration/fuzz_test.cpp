// Randomized property tests ("fuzz"):
//
// 1. The near-far engine produces exact Dijkstra distances under ANY
//    threshold policy — including adversarial random walks that demote,
//    re-pull, and jump erratically. This is the invariant that makes
//    the whole self-tuning design safe (DESIGN.md Section 5).
//
// 2. The partitioned far queue is observably equivalent to the flat far
//    queue under random push/pull interleavings: the same vertices come
//    out for the same thresholds, regardless of boundary maintenance.
// 3. Control-plane fault injection: with failpoints feeding NaN/Inf
//    into the controller's models and stats pipeline, the self-tuning
//    solver still produces exact Dijkstra distances (the engine
//    invariant above makes the control plane non-critical for
//    correctness) and the self-healing monitor records the
//    degradation (docs/ROBUSTNESS.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "core/partitioned_far_queue.hpp"
#include "core/self_tuning.hpp"
#include "fault/failpoint.hpp"
#include "frontier/engine.hpp"
#include "frontier/far_queue.hpp"
#include "sssp/dijkstra.hpp"
#include "tests/sssp/test_graphs.hpp"
#include "util/rng.hpp"

namespace sssp {
namespace {

using graph::Distance;
using graph::kInfiniteDistance;
using graph::VertexId;

class RandomPolicyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPolicyFuzz, EngineExactUnderAdversarialThresholds) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256 rng(seed);
  const auto g = algo::testing::random_graph(
      400 + rng.next_below(800), 1.0 + 6.0 * rng.next_double(), 99, seed);
  const auto source = static_cast<VertexId>(rng.next_below(g.num_vertices()));
  const auto expected = algo::dijkstra_distances(g, source);

  frontier::NearFarEngine engine(g, source);
  frontier::FarQueue far;
  std::vector<VertexId> refill;
  Distance threshold = 1 + rng.next_below(50);

  std::size_t guard = 0;
  const std::size_t guard_limit = 50 * g.num_vertices() + 1000;
  while (!engine.frontier_empty() && ++guard < guard_limit) {
    engine.advance_and_filter();

    // Adversarial threshold move: grow, shrink, or jump randomly.
    switch (rng.next_below(4)) {
      case 0:  // multiplicative growth
        threshold = threshold + 1 + threshold / 2;
        break;
      case 1:  // harsh shrink
        threshold = std::max<Distance>(1, threshold / 3);
        break;
      case 2:  // random jump within the plausible distance range
        threshold = 1 + rng.next_below(100 * 100);
        break;
      default:  // hold
        break;
    }

    engine.bisect(threshold);
    for (const VertexId v : engine.spill()) far.push(v, engine.distance(v));
    engine.clear_spill();

    // Occasionally demote even further after bisect.
    if (rng.next_below(3) == 0) {
      const Distance demote_to = std::max<Distance>(1, threshold / 2);
      engine.demote(demote_to);
      for (const VertexId v : engine.spill()) far.push(v, engine.distance(v));
      engine.clear_spill();
    }

    // Forced progress, as all algorithms implement it.
    if (engine.frontier_empty() && !far.empty()) {
      const Distance next_live = far.min_live_distance(engine.distances());
      if (next_live == kInfiniteDistance) {
        far.clear();
      } else {
        threshold = std::max(threshold, next_live + 1 + rng.next_below(200));
        refill.clear();
        far.drain_below(threshold, engine.distances(), refill);
        engine.inject(refill);
      }
    }
  }
  ASSERT_LT(guard, guard_limit) << "policy failed to terminate";
  EXPECT_EQ(algo::count_distance_mismatches(engine.distances(), expected), 0u)
      << "seed " << seed;
}

TEST_P(RandomPolicyFuzz, PartitionedQueueMatchesFlatQueue) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256 rng(seed ^ 0xABCD);

  const std::size_t n = 2000;
  // Distances evolve downward over time, creating stale entries in both
  // structures identically.
  std::vector<Distance> dist(n);
  for (auto& d : dist) d = 100 + rng.next_below(100000);

  core::PartitionedFarQueue partitioned(1 + rng.next_below(5000));
  frontier::FarQueue flat;

  for (int round = 0; round < 200; ++round) {
    const auto op = rng.next_below(10);
    if (op < 5) {  // push a batch
      for (int i = 0; i < 20; ++i) {
        const auto v = static_cast<VertexId>(rng.next_below(n));
        partitioned.push(v, dist[v]);
        flat.push(v, dist[v]);
      }
    } else if (op < 7) {  // improve some distances (stale-ify entries)
      for (int i = 0; i < 10; ++i) {
        const auto v = static_cast<VertexId>(rng.next_below(n));
        if (dist[v] > 1) dist[v] -= 1 + rng.next_below(dist[v] - 1);
      }
    } else if (op < 9) {  // pull below a random threshold
      const Distance threshold = 1 + rng.next_below(120000);
      std::vector<VertexId> from_partitioned, from_flat;
      partitioned.pull_below(threshold, dist, from_partitioned);
      flat.drain_below(threshold, dist, from_flat);
      std::sort(from_partitioned.begin(), from_partitioned.end());
      std::sort(from_flat.begin(), from_flat.end());
      EXPECT_EQ(from_partitioned, from_flat) << "round " << round;
      partitioned.check_invariants();
    } else {  // boundary maintenance (must not change observable content)
      partitioned.update_boundary(1.0 + rng.next_below(5000),
                                  0.001 + rng.next_double() * 10.0);
      partitioned.check_invariants();
    }
  }

  // Final drain: identical live content.
  std::vector<VertexId> from_partitioned, from_flat;
  partitioned.pull_below(kInfiniteDistance, dist, from_partitioned);
  flat.drain_below(kInfiniteDistance, dist, from_flat);
  std::sort(from_partitioned.begin(), from_partitioned.end());
  std::sort(from_flat.begin(), from_flat.end());
  EXPECT_EQ(from_partitioned, from_flat);
  EXPECT_TRUE(partitioned.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPolicyFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- control-plane fault injection ---

class ControlPlaneFaultInjection
    : public ::testing::TestWithParam<const char*> {
 protected:
  // Failpoints are process-global; never leak an armed one into the
  // suites that share this binary.
  void TearDown() override { fault::FailpointRegistry::global().disarm_all(); }
};

TEST_P(ControlPlaneFaultInjection, DistancesExactUnderInjectedFaults) {
  const auto g = algo::testing::random_graph(900, 5.0, 99, 1234);
  const graph::VertexId source = 3;
  const auto expected = algo::dijkstra_distances(g, source);

  fault::FailpointRegistry::global().arm(GetParam());
  core::SelfTuningOptions options;
  options.set_point = 500.0;
  const auto result = core::self_tuning_sssp(g, source, options);
  const std::uint64_t fires = fault::FailpointRegistry::global().total_fires();
  fault::FailpointRegistry::global().disarm_all();

  EXPECT_GT(fires, 0u) << "failpoint never fired: " << GetParam();
  EXPECT_EQ(algo::count_distance_mismatches(result.distances, expected), 0u)
      << "spec " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Failpoints, ControlPlaneFaultInjection,
    ::testing::Values("controller.x4.nan",        // every plan suppressed
                      "controller.far.nan",       // Inf far-queue stats
                      "controller.observe.nan",   // poisoned ADVANCE input
                      "sgd.observe.nan",          // poisoned inside the SGD
                      "controller.x4.nan=0.4,7",  // intermittent corruption
                      "sgd.observe.nan=3"));      // every 3rd observation

TEST(ControlPlaneFaultInjection2, SustainedGarbageDegradesAndIsRecorded) {
  const auto g = algo::testing::random_graph(900, 5.0, 99, 1234);
  const graph::VertexId source = 3;
  const auto expected = algo::dijkstra_distances(g, source);

  fault::FailpointRegistry::global().arm("controller.x4.nan");
  core::SelfTuningOptions options;
  options.set_point = 500.0;
  const auto result = core::self_tuning_sssp(g, source, options);
  fault::FailpointRegistry::global().disarm_all();

  ASSERT_EQ(algo::count_distance_mismatches(result.distances, expected), 0u);
  // The health monitor saw the garbage, degraded once (the stream never
  // goes clean, so no recovery), and the per-iteration flag marks the
  // degraded tail of the run.
  EXPECT_GT(result.controller_rejected_inputs, 0u);
  EXPECT_EQ(result.controller_degradations, 1u);
  EXPECT_EQ(result.controller_recoveries, 0u);
  EXPECT_TRUE(result.iterations.back().controller_degraded);
  EXPECT_FALSE(result.iterations.front().controller_degraded);
}

TEST(ControlPlaneFaultInjection2, CleanRunStaysAdaptive) {
  const auto g = algo::testing::random_graph(900, 5.0, 99, 1234);
  core::SelfTuningOptions options;
  options.set_point = 500.0;
  const auto result = core::self_tuning_sssp(g, 3, options);
  EXPECT_EQ(result.controller_degradations, 0u);
  EXPECT_EQ(result.controller_rejected_inputs, 0u);
  for (const auto& it : result.iterations)
    EXPECT_FALSE(it.controller_degraded);
}

}  // namespace
}  // namespace sssp
