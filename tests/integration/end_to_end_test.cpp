// Integration: the full pipeline the benchmarks drive — dataset factory
// -> algorithms -> workload -> device simulation — with cross-module
// invariants that no single-module test can see.
#include <gtest/gtest.h>

#include "core/self_tuning.hpp"
#include "graph/datasets.hpp"
#include "sim/run.hpp"
#include "sssp/bellman_ford.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/delta_sweep.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/near_far.hpp"

namespace sssp {
namespace {

struct DatasetCase {
  graph::Dataset dataset;
  double scale;
};

class PipelineTest : public ::testing::TestWithParam<DatasetCase> {
 protected:
  void SetUp() override {
    const auto [dataset, scale] = GetParam();
    graph_ = graph::make_dataset(dataset, {.scale = scale, .seed = 7});
    source_ = graph::default_source(dataset, graph_);
    reference_ = algo::dijkstra_distances(graph_, source_);
  }

  graph::CsrGraph graph_;
  graph::VertexId source_ = 0;
  std::vector<graph::Distance> reference_;
};

TEST_P(PipelineTest, EveryAlgorithmMatchesDijkstra) {
  EXPECT_EQ(algo::count_distance_mismatches(
                algo::bellman_ford(graph_, source_).distances, reference_),
            0u);
  EXPECT_EQ(algo::count_distance_mismatches(
                algo::delta_stepping(graph_, source_).distances, reference_),
            0u);
  EXPECT_EQ(algo::count_distance_mismatches(
                algo::near_far(graph_, source_).distances, reference_),
            0u);
  core::SelfTuningOptions tuning;
  tuning.set_point = 3000.0;
  EXPECT_EQ(algo::count_distance_mismatches(
                core::self_tuning_sssp(graph_, source_, tuning).distances,
                reference_),
            0u);
}

TEST_P(PipelineTest, WorkloadReplaysConsistentlyOnBothDevices) {
  core::SelfTuningOptions tuning;
  tuning.set_point = 2000.0;
  tuning.measure_controller_time = false;
  const auto run = core::self_tuning_sssp(graph_, source_, tuning);
  const auto workload = run.to_workload("integration");

  for (const auto& device :
       {sim::DeviceSpec::jetson_tk1(), sim::DeviceSpec::jetson_tx1()}) {
    const auto report = sim::simulate_run(
        device, sim::PinnedDvfs(device.max_frequencies()), workload);
    EXPECT_GT(report.total_seconds, 0.0) << device.name;
    EXPECT_GT(report.average_power_w, device.static_power_w) << device.name;
    EXPECT_NEAR(report.energy_joules,
                report.average_power_w * report.total_seconds, 1e-9)
        << device.name;
    ASSERT_EQ(report.iterations.size(), workload.iterations.size())
        << device.name;
    // Every iteration must take at least one kernel launch.
    for (const auto& it : report.iterations)
      EXPECT_GE(it.seconds, device.kernel_launch_seconds);
  }
}

TEST_P(PipelineTest, GovernorNeverBeatsMaxPinnedOnTime) {
  // The default governor can only run at or below the max frequencies,
  // so its simulated time is never shorter than the max-pinned run.
  const auto baseline = algo::near_far(graph_, source_);
  const auto workload = baseline.to_workload("integration");
  const auto device = sim::DeviceSpec::jetson_tk1();
  const auto pinned = sim::simulate_run(
      device, sim::PinnedDvfs(device.max_frequencies()), workload);
  const auto governed =
      sim::simulate_run(device, sim::DefaultGovernor(), workload);
  EXPECT_GE(governed.total_seconds, pinned.total_seconds * 0.999);
  // ... and its average power is no higher.
  EXPECT_LE(governed.average_power_w, pinned.average_power_w * 1.001);
}

TEST_P(PipelineTest, SweepBestDeltaIsNoWorseThanDefaultDelta) {
  const auto device = sim::DeviceSpec::jetson_tk1();
  const sim::PinnedDvfs policy(device.max_frequencies());
  algo::DeltaSweepOptions sweep_options;
  sweep_options.min_delta = 1;
  sweep_options.max_delta = 1 << 18;
  sweep_options.ratio = 4.0;
  const auto sweep =
      algo::sweep_delta(graph_, source_, device, policy, sweep_options);

  const auto best =
      algo::near_far(graph_, source_, {.delta = sweep.best_delta});
  const auto default_run = algo::near_far(graph_, source_);
  const auto best_report =
      sim::simulate_run(device, policy, best.to_workload(""));
  const auto default_report =
      sim::simulate_run(device, policy, default_run.to_workload(""));
  EXPECT_LE(best_report.total_seconds, default_report.total_seconds * 1.05);
}

TEST_P(PipelineTest, AllAlgorithmsAgreeOnReachabilityAndWorkAccounting) {
  // Cross-algorithm invariants: every algorithm reaches the same vertex
  // set, and improving-relaxation counts respect the provable bounds —
  // at least one improvement per reached non-source vertex, and no
  // blow-up beyond a small multiple of the edge count.
  const auto bf = algo::bellman_ford(graph_, source_);
  const auto nf = algo::near_far(graph_, source_);
  core::SelfTuningOptions tuning;
  tuning.set_point = 1000.0;
  const auto st = core::self_tuning_sssp(graph_, source_, tuning);

  const std::size_t reached = bf.reached_count();
  EXPECT_EQ(nf.reached_count(), reached);
  EXPECT_EQ(st.reached_count(), reached);
  for (const auto* r : {&bf, &nf, &st}) {
    EXPECT_GE(r->improving_relaxations, reached - 1) << r->algorithm;
    // Sanity ceiling: no more improvements than edges times a small
    // constant (each improvement strictly decreases one distance; path
    // lengths bound re-improvements well below this on these graphs).
    EXPECT_LE(r->improving_relaxations, 8 * graph_.num_edges())
        << r->algorithm;
  }
  // Near-far's postponement avoids premature relaxations: it should not
  // do more improving work than plain Bellman-Ford by more than a small
  // factor, and typically does less.
  EXPECT_LE(nf.improving_relaxations, 2 * bf.improving_relaxations);
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, PipelineTest,
    ::testing::Values(DatasetCase{graph::Dataset::kCal, 1.0 / 128.0},
                      DatasetCase{graph::Dataset::kWiki, 1.0 / 256.0}),
    [](const ::testing::TestParamInfo<DatasetCase>& tpi) {
      return graph::dataset_name(tpi.param.dataset);
    });

}  // namespace
}  // namespace sssp
