// End-to-end determinism across thread counts: the full self-tuning and
// near-far drivers must produce bit-identical distances, parent trees,
// and per-iteration statistics (X1/X2/X3/X4, improving relaxations,
// rebalance work, far-queue sizes, delta trajectory) whether the global
// pool has 1, 2, 4, or 8 threads — the contract that makes recorded
// workloads machine-independent with parallel advance on by default.
// A failpoint-armed run rides along: fault-injection campaigns must be
// equally reproducible at any thread count.
#include <gtest/gtest.h>

#include <vector>

#include "core/self_tuning.hpp"
#include "fault/failpoint.hpp"
#include "graph/csr.hpp"
#include "graph/degree_stats.hpp"
#include "graph/rmat.hpp"
#include "graph/road.hpp"
#include "sssp/near_far.hpp"
#include "sssp/result.hpp"
#include "util/thread_pool.hpp"

namespace sssp {
namespace {

const graph::CsrGraph& road() {
  static const graph::CsrGraph g = [] {
    graph::RoadOptions options;
    options.rows = 96;
    options.cols = 96;
    return graph::generate_road(options);
  }();
  return g;
}

const graph::CsrGraph& rmat() {
  static const graph::CsrGraph g = [] {
    graph::RmatOptions options;
    options.scale = 12;
    options.num_edges = 1u << 15;
    return graph::generate_rmat(options);
  }();
  return g;
}

// Everything the determinism contract covers, comparable in one shot.
struct RunFingerprint {
  std::vector<graph::Distance> distances;
  std::vector<graph::VertexId> parents;
  std::vector<std::vector<std::uint64_t>> iterations;
  std::vector<double> deltas;
  std::uint64_t improving = 0;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint fingerprint(const algo::SsspResult& result) {
  RunFingerprint fp;
  fp.distances = result.distances;
  fp.parents = result.parents;
  fp.improving = result.improving_relaxations;
  for (const auto& it : result.iterations) {
    fp.iterations.push_back({it.x1, it.x2, it.x3, it.x4,
                             it.improving_relaxations, it.rebalance_items,
                             it.far_queue_size});
    fp.deltas.push_back(it.delta);
  }
  return fp;
}

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

template <typename Run>
void expect_identical_at_every_thread_count(Run run, const char* label) {
  util::ThreadPool::set_global_threads(1);
  const RunFingerprint reference = fingerprint(run());
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    util::ThreadPool::set_global_threads(kThreadCounts[i]);
    const RunFingerprint fp = fingerprint(run());
    EXPECT_EQ(fp, reference)
        << label << " diverged at threads=" << kThreadCounts[i];
  }
  util::ThreadPool::set_global_threads(0);
}

core::SelfTuningOptions self_tuning_options() {
  core::SelfTuningOptions options;
  options.set_point = 2000.0;
  // Wall-clock measurements are inherently nondeterministic; everything
  // else in the fingerprint must be bit-stable.
  options.measure_controller_time = false;
  options.parallel_advance = true;
  options.parallel_threshold = 1;  // force the parallel path everywhere
  return options;
}

TEST(ParallelDeterminism, SelfTuningOnRoad) {
  const auto& g = road();
  const auto src = graph::max_degree_vertex(g);
  expect_identical_at_every_thread_count(
      [&] { return core::self_tuning_sssp(g, src, self_tuning_options()); },
      "self-tuning/road");
}

TEST(ParallelDeterminism, SelfTuningOnRmat) {
  const auto& g = rmat();
  const auto src = graph::max_degree_vertex(g);
  expect_identical_at_every_thread_count(
      [&] { return core::self_tuning_sssp(g, src, self_tuning_options()); },
      "self-tuning/rmat");
}

TEST(ParallelDeterminism, NearFarOnRoad) {
  const auto& g = road();
  const auto src = graph::max_degree_vertex(g);
  expect_identical_at_every_thread_count(
      [&] {
        return algo::near_far(g, src, {.parallel = true,
                                       .parallel_threshold = 1});
      },
      "near-far/road");
}

TEST(ParallelDeterminism, NearFarOnRmat) {
  const auto& g = rmat();
  const auto src = graph::max_degree_vertex(g);
  expect_identical_at_every_thread_count(
      [&] {
        return algo::near_far(g, src, {.parallel = true,
                                       .parallel_threshold = 1});
      },
      "near-far/rmat");
}

TEST(ParallelDeterminism, FailpointArmedRunIsReproducible) {
  // Fault-injection campaigns must replay identically at any thread
  // count: same fire counts, same degraded-mode trajectory, same
  // results. The controller's X4 firewall path is armed to fire on
  // every hit (deterministic by construction) — what matters is that
  // the number of hits (iterations) does not depend on the schedule.
  const auto& g = rmat();
  const auto src = graph::max_degree_vertex(g);
  auto& registry = fault::FailpointRegistry::global();

  std::uint64_t reference_fires = 0;
  RunFingerprint reference;
  for (std::size_t i = 0; i < std::size(kThreadCounts); ++i) {
    util::ThreadPool::set_global_threads(kThreadCounts[i]);
    registry.arm("controller.x4.nan");
    const std::uint64_t fires_before = registry.total_fires();
    const RunFingerprint fp =
        fingerprint(core::self_tuning_sssp(g, src, self_tuning_options()));
    const std::uint64_t fires = registry.total_fires() - fires_before;
    registry.disarm_all();
    if (i == 0) {
      reference = fp;
      reference_fires = fires;
      EXPECT_GT(fires, 0u);  // the failpoint actually exercised the path
    } else {
      EXPECT_EQ(fp, reference)
          << "failpoint run diverged at threads=" << kThreadCounts[i];
      EXPECT_EQ(fires, reference_fires)
          << "fire count diverged at threads=" << kThreadCounts[i];
    }
  }
  util::ThreadPool::set_global_threads(0);
}

}  // namespace
}  // namespace sssp
