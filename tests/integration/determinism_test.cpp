// Integration: the whole pipeline is bit-deterministic from a seed —
// the property EXPERIMENTS.md relies on when comparing runs.
#include <gtest/gtest.h>

#include <sstream>

#include "core/self_tuning.hpp"
#include "graph/binary_io.hpp"
#include "graph/datasets.hpp"
#include "sim/run.hpp"
#include "sssp/near_far.hpp"

namespace sssp {
namespace {

TEST(Determinism, DatasetFactoryIsPureInSeed) {
  const graph::DatasetOptions options{.scale = 1.0 / 256.0, .seed = 11};
  const auto a = graph::make_dataset(graph::Dataset::kWiki, options);
  const auto b = graph::make_dataset(graph::Dataset::kWiki, options);
  std::stringstream sa, sb;
  graph::save_binary(a, sa);
  graph::save_binary(b, sb);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(Determinism, FullPipelineReproducesExactReports) {
  auto run_once = [] {
    const auto g =
        graph::make_dataset(graph::Dataset::kCal, {.scale = 1.0 / 128.0});
    const auto src = graph::default_source(graph::Dataset::kCal, g);
    core::SelfTuningOptions tuning;
    tuning.set_point = 1500.0;
    tuning.measure_controller_time = false;  // wall-clock is the only
                                             // nondeterministic input
    const auto result = core::self_tuning_sssp(g, src, tuning);
    return sim::simulate_run(sim::DeviceSpec::jetson_tk1(),
                             sim::DefaultGovernor(),
                             result.to_workload("det"));
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.total_seconds, b.total_seconds);      // bitwise, not NEAR
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.peak_power_w, b.peak_power_w);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].seconds, b.iterations[i].seconds) << i;
    EXPECT_EQ(a.iterations[i].frequencies, b.iterations[i].frequencies) << i;
  }
}

TEST(Determinism, DifferentSeedsChangeTheWorkload) {
  const auto g1 =
      graph::make_dataset(graph::Dataset::kWiki, {.scale = 1.0 / 256.0, .seed = 1});
  const auto g2 =
      graph::make_dataset(graph::Dataset::kWiki, {.scale = 1.0 / 256.0, .seed = 2});
  const auto r1 = algo::near_far(g1, graph::default_source(graph::Dataset::kWiki, g1));
  const auto r2 = algo::near_far(g2, graph::default_source(graph::Dataset::kWiki, g2));
  EXPECT_NE(r1.improving_relaxations, r2.improving_relaxations);
}

TEST(Determinism, ControllerTimeMeasurementDoesNotPerturbControl) {
  // Wall-clock measurement feeds reporting only — never the control
  // path — so the X-statistics must be identical with and without it.
  const auto g =
      graph::make_dataset(graph::Dataset::kWiki, {.scale = 1.0 / 256.0});
  const auto src = graph::default_source(graph::Dataset::kWiki, g);
  core::SelfTuningOptions with_time;
  with_time.set_point = 4000.0;
  with_time.measure_controller_time = true;
  core::SelfTuningOptions without_time = with_time;
  without_time.measure_controller_time = false;
  const auto a = core::self_tuning_sssp(g, src, with_time);
  const auto b = core::self_tuning_sssp(g, src, without_time);
  ASSERT_EQ(a.num_iterations(), b.num_iterations());
  for (std::size_t i = 0; i < a.num_iterations(); ++i) {
    EXPECT_EQ(a.iterations[i].x2, b.iterations[i].x2) << i;
    EXPECT_EQ(a.iterations[i].x4, b.iterations[i].x4) << i;
    EXPECT_EQ(a.iterations[i].rebalance_items,
              b.iterations[i].rebalance_items)
        << i;
  }
}

}  // namespace
}  // namespace sssp
