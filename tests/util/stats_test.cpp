#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sssp::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, KnownSequence) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats left, right, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    (i < 37 ? left : right).add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Ema, ConvergesToConstantInput) {
  Ema ema(0.0, 4.0);
  for (int i = 0; i < 200; ++i) ema.update(10.0);
  EXPECT_NEAR(ema.value(), 10.0, 1e-9);
}

TEST(Ema, TauOneTracksInputExactly) {
  Ema ema(5.0, 1.0);
  EXPECT_DOUBLE_EQ(ema.update(42.0), 42.0);
  EXPECT_DOUBLE_EQ(ema.update(-3.0), -3.0);
}

TEST(Ema, ClampsTauBelowOne) {
  Ema ema(0.0, 0.25);
  EXPECT_DOUBLE_EQ(ema.tau(), 1.0);
  ema.set_tau(0.0);
  EXPECT_DOUBLE_EQ(ema.tau(), 1.0);
}

TEST(Ema, SingleStepFormula) {
  Ema ema(2.0, 2.0);
  // y <- 0.5*2 + 0.5*6 = 4
  EXPECT_DOUBLE_EQ(ema.update(6.0), 4.0);
}

TEST(QuantileSummary, MedianOfOddSample) {
  QuantileSummary q;
  for (double x : {5.0, 1.0, 3.0}) q.add(x);
  EXPECT_DOUBLE_EQ(q.median(), 3.0);
  EXPECT_DOUBLE_EQ(q.min(), 1.0);
  EXPECT_DOUBLE_EQ(q.max(), 5.0);
}

TEST(QuantileSummary, InterpolatesBetweenOrderStats) {
  QuantileSummary q;
  q.add(0.0);
  q.add(10.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.25), 2.5);
}

TEST(QuantileSummary, EmptyThrows) {
  QuantileSummary q;
  EXPECT_THROW(q.quantile(0.5), std::domain_error);
}

TEST(QuantileSummary, OutOfRangeQThrows) {
  QuantileSummary q;
  q.add(1.0);
  EXPECT_THROW(q.quantile(-0.1), std::domain_error);
  EXPECT_THROW(q.quantile(1.1), std::domain_error);
}

TEST(QuantileSummary, AddAllAndMean) {
  QuantileSummary q;
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  q.add_all(xs);
  EXPECT_EQ(q.count(), 4u);
  EXPECT_DOUBLE_EQ(q.mean(), 2.5);
  EXPECT_DOUBLE_EQ(q.iqr(), q.quantile(0.75) - q.quantile(0.25));
}

TEST(QuantileSummary, CacheInvalidatedByAdd) {
  QuantileSummary q;
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.median(), 1.0);
  q.add(100.0);
  EXPECT_DOUBLE_EQ(q.median(), 50.5);
}

TEST(Histogram, LinearBinning) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.lower_edge(0), 0.0);
  EXPECT_DOUBLE_EQ(h.upper_edge(4), 10.0);
}

TEST(Histogram, OutOfRangeClampsIntoEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, LogBinning) {
  Histogram h(1.0, 10000.0, 4, Histogram::Scale::kLog);
  h.add(2.0);      // decade [1,10)
  h.add(50.0);     // [10,100)
  h.add(500.0);    // [100,1000)
  h.add(5000.0);   // [1000,10000)
  for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(h.count(b), 1u) << b;
  EXPECT_NEAR(h.lower_edge(1), 10.0, 1e-9);
  EXPECT_NEAR(h.upper_edge(2), 1000.0, 1e-9);
}

TEST(Histogram, InvalidArgumentsThrow) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 10.0, 4, Histogram::Scale::kLog),
               std::invalid_argument);
}

TEST(RelativeDifference, Basics) {
  EXPECT_DOUBLE_EQ(relative_difference(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(relative_difference(10.0, 5.0), 0.5);
  EXPECT_DOUBLE_EQ(relative_difference(0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace sssp::util
