#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace sssp::util {
namespace {

Flags make_flags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  auto f = make_flags({"--delta=32"});
  f.define("delta", "1", "delta value");
  EXPECT_EQ(f.get_int("delta"), 32);
}

TEST(Flags, SpaceSyntax) {
  auto f = make_flags({"--name", "wiki"});
  f.define("name", "", "dataset");
  EXPECT_EQ(f.get_string("name"), "wiki");
}

TEST(Flags, BooleanForms) {
  auto f = make_flags({"--fast", "--no-verbose"});
  f.define("fast", "false", "");
  f.define("verbose", "true", "");
  EXPECT_TRUE(f.get_bool("fast"));
  EXPECT_FALSE(f.get_bool("verbose"));
}

TEST(Flags, DefaultsApplyWhenAbsent) {
  auto f = make_flags({});
  f.define("p", "20000", "set-point");
  EXPECT_EQ(f.get_int("p"), 20000);
  EXPECT_FALSE(f.has("p"));
}

TEST(Flags, UndefinedFlagThrows) {
  auto f = make_flags({});
  EXPECT_THROW(f.get_string("nope"), std::invalid_argument);
}

TEST(Flags, MalformedNumberThrows) {
  auto f = make_flags({"--n=12x"});
  f.define("n", "0", "");
  EXPECT_THROW(f.get_int("n"), std::invalid_argument);
  auto g = make_flags({"--x=1.2.3"});
  g.define("x", "0", "");
  EXPECT_THROW(g.get_double("x"), std::invalid_argument);
}

TEST(Flags, MalformedBoolThrows) {
  auto f = make_flags({"--b=maybe"});
  f.define("b", "false", "");
  EXPECT_THROW(f.get_bool("b"), std::invalid_argument);
}

TEST(Flags, PositionalArguments) {
  auto f = make_flags({"input.gr", "--k=3", "more"});
  f.define("k", "0", "");
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.gr");
  EXPECT_EQ(f.positional()[1], "more");
}

TEST(Flags, DoubleDashTerminatesFlags) {
  auto f = make_flags({"--", "--not-a-flag"});
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "--not-a-flag");
}

TEST(Flags, CheckUnknownCatchesTypos) {
  auto f = make_flags({"--detla=32"});
  f.define("delta", "1", "");
  EXPECT_THROW(f.check_unknown(), std::invalid_argument);
}

TEST(Flags, CheckUnknownPassesForDefinedFlags) {
  auto f = make_flags({"--delta=32"});
  f.define("delta", "1", "");
  EXPECT_NO_THROW(f.check_unknown());
}

TEST(Flags, DoubleParsing) {
  auto f = make_flags({"--scale=0.125"});
  f.define("scale", "1.0", "");
  EXPECT_DOUBLE_EQ(f.get_double("scale"), 0.125);
}

}  // namespace
}  // namespace sssp::util
