#include "util/weight_math.hpp"

#include <gtest/gtest.h>

#include "graph/types.hpp"

namespace sssp::util {
namespace {

constexpr graph::Distance kInf = graph::kInfiniteDistance;
constexpr graph::Distance kMaxWeight = 0xFFFFFFFFull;  // 32-bit edge cap

TEST(WeightMathTest, OrdinarySumsAreExact) {
  EXPECT_EQ(saturating_add(0, 0), 0u);
  EXPECT_EQ(saturating_add(0, 7), 7u);
  EXPECT_EQ(saturating_add(1000, kMaxWeight), 1000u + kMaxWeight);
  static_assert(saturating_add(3, 4) == 7);
}

TEST(WeightMathTest, InfinityIsAbsorbing) {
  EXPECT_EQ(saturating_add(kInf, 0), kInf);
  EXPECT_EQ(saturating_add(kInf, 1), kInf);
  EXPECT_EQ(saturating_add(kInf, kMaxWeight), kInf);
}

TEST(WeightMathTest, NearInfinityClampsInsteadOfWrapping) {
  // The adversarial case the guard exists for: a label near INF plus a
  // weight would wrap modulo 2^64 into a tiny "distance" that then
  // beats every honest label.
  EXPECT_EQ(saturating_add(kInf - 1, 1), kInf);
  EXPECT_EQ(saturating_add(kInf - 1, kMaxWeight), kInf);
  EXPECT_EQ(saturating_add(kInf - kMaxWeight, kMaxWeight), kInf);
}

TEST(WeightMathTest, BoundaryIsTight) {
  // The largest dist that still produces a finite sum with weight w is
  // exactly INF - w - 1.
  const graph::Distance w = 5;
  EXPECT_EQ(saturating_add(kInf - w - 1, w), kInf - 1);
  EXPECT_EQ(saturating_add(kInf - w, w), kInf);
}

TEST(WeightMathTest, AddSaturatesMatchesTheClamp) {
  const graph::Distance w = 17;
  EXPECT_FALSE(add_saturates(0, w));
  EXPECT_FALSE(add_saturates(kInf - w - 1, w));
  EXPECT_TRUE(add_saturates(kInf - w, w));
  EXPECT_TRUE(add_saturates(kInf, 0));
  EXPECT_TRUE(add_saturates(kInf, w));
  // add_saturates(d, w) is true exactly when the sum lands on INF.
  for (const graph::Distance d : {graph::Distance{0}, kInf - w - 1,
                                  kInf - w, kInf - 1, kInf}) {
    EXPECT_EQ(add_saturates(d, w), saturating_add(d, w) == kInf) << "d=" << d;
  }
}

}  // namespace
}  // namespace sssp::util
