#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace sssp::util {
namespace {

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = timer.elapsed_seconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);  // sanity upper bound (slow CI tolerant)
}

TEST(WallTimer, UnitConversions) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = timer.elapsed_seconds();
  const double ms = timer.elapsed_millis();
  const double us = timer.elapsed_micros();
  EXPECT_NEAR(ms, s * 1e3, s * 1e3);   // same order (captured sequentially)
  EXPECT_GT(us, ms);                    // micros numerically larger
}

TEST(WallTimer, ResetRestartsClock) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.reset();
  EXPECT_LT(timer.elapsed_seconds(), 0.015);
}

TEST(AccumulatingTimer, SumsIntervals) {
  AccumulatingTimer timer;
  EXPECT_DOUBLE_EQ(timer.total_seconds(), 0.0);
  EXPECT_EQ(timer.intervals(), 0u);
  for (int i = 0; i < 3; ++i) {
    timer.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    timer.stop();
  }
  EXPECT_EQ(timer.intervals(), 3u);
  EXPECT_GE(timer.total_seconds(), 0.010);
  EXPECT_NEAR(timer.mean_seconds(), timer.total_seconds() / 3.0, 1e-12);
}

}  // namespace
}  // namespace sssp::util
