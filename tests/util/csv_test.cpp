#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sssp::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "csv_test_out.csv";
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_);
    csv.write_header({"a", "b"});
    csv.write(1, 2.5);
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2.5\n");
}

TEST_F(CsvWriterTest, QuotesCellsWithCommasAndQuotes) {
  {
    CsvWriter csv(path_);
    csv.write_row({"hello, world", "say \"hi\""});
  }
  EXPECT_EQ(read_file(path_), "\"hello, world\",\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvWriterTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add("x", 1);
  t.add("longer", 22);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(s.find("----"), std::string::npos);
  // Every row ends with newline.
  EXPECT_EQ(s.back(), '\n');
}

TEST(TextTable, WorksWithoutHeader) {
  TextTable t;
  t.add(1, 2, 3);
  const std::string s = t.to_string();
  EXPECT_EQ(s.find("----"), std::string::npos);
  EXPECT_NE(s.find('1'), std::string::npos);
}

}  // namespace
}  // namespace sssp::util
