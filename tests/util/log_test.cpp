#include "util/log.hpp"

#include <gtest/gtest.h>

#include <regex>
#include <thread>

namespace sssp::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
  // Unknown names default to info rather than crashing experiments.
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::kInfo);
}

TEST(Log, SetAndGetLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST(Log, SuppressedLinesDoNotFormat) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Streaming into a suppressed line must be a no-op (and not crash).
  SSSP_LOG(kDebug) << "invisible " << 42;
  SSSP_LOG(kError) << "also invisible at kOff " << 3.14;
  SUCCEED();
}

TEST(Log, EmittingLineDoesNotThrow) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  EXPECT_NO_THROW((SSSP_LOG(kError) << "expected test error line"));
}

TEST(Log, FormattedLineHasTimestampLevelAndThread) {
  const std::string line =
      detail::format_line(LogLevel::kWarn, "delta -> 4096");
  // 2026-08-06T12:34:56.789Z [WARN] tN delta -> 4096
  const std::regex pattern(
      R"(\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z )"
      R"(\[WARN\] t\d+ delta -> 4096)");
  EXPECT_TRUE(std::regex_match(line, pattern)) << line;
}

TEST(Log, ThreadIdIsStablePerThread) {
  const unsigned first = log_thread_id();
  EXPECT_GE(first, 1u);
  EXPECT_EQ(log_thread_id(), first);
  unsigned other = 0;
  std::thread([&] { other = log_thread_id(); }).join();
  EXPECT_NE(other, first);
}

}  // namespace
}  // namespace sssp::util
