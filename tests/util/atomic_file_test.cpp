// atomic_write_file (util/atomic_file.hpp): the single write path for
// every durable artifact. Contracts: readers only ever see the whole
// new file or the whole old file; ENOSPC deletes the tmp and throws
// DiskFullError with the previous contents intact; short writes and
// transient errors are absorbed; a throwing before_rename hook leaves
// the tmp behind (the crash drill's contract).
#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <fstream>
#include <iterator>
#include <string>

namespace sssp::util {
namespace {

std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "atomic_file_" + tag + ".out";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

bool exists(const std::string& path) {
  return std::ifstream(path).good();
}

// Fault hooks are function pointers (util cannot depend on fault), so
// the test drives them through file-local state.
int g_enospc_after = -1;  // fail the Nth write call with ENOSPC
int g_short_writes = 0;   // truncate this many write calls
int g_transient = 0;      // fail this many write calls with EIO

WriteFault scripted_fault() noexcept {
  WriteFault fault;
  if (g_enospc_after == 0) {
    fault.error = ENOSPC;
    return fault;
  }
  if (g_enospc_after > 0) --g_enospc_after;
  if (g_short_writes > 0) {
    --g_short_writes;
    fault.short_write = true;
    return fault;
  }
  if (g_transient > 0) {
    --g_transient;
    fault.error = EIO;
  }
  return fault;
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_enospc_after = -1;
    g_short_writes = 0;
    g_transient = 0;
    set_write_fault_hook(nullptr);
  }
  void TearDown() override { set_write_fault_hook(nullptr); }
};

TEST_F(AtomicFileTest, WritesAndReplacesWhole) {
  const std::string path = temp_path("replace");
  atomic_write_file(path, "first contents\n");
  EXPECT_EQ(slurp(path), "first contents\n");
  atomic_write_file(path, "second, longer contents entirely\n");
  EXPECT_EQ(slurp(path), "second, longer contents entirely\n");
  EXPECT_FALSE(exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST_F(AtomicFileTest, LargePayloadRoundTrips) {
  const std::string path = temp_path("large");
  std::string bytes(1 << 20, '\0');
  for (std::size_t i = 0; i < bytes.size(); ++i)
    bytes[i] = static_cast<char>(i * 31 % 251);
  atomic_write_file(path, bytes);
  EXPECT_EQ(slurp(path), bytes);
  std::remove(path.c_str());
}

TEST_F(AtomicFileTest, EnospcThrowsDiskFullAndRemovesTmp) {
  const std::string path = temp_path("enospc");
  atomic_write_file(path, "previous version\n");
  g_enospc_after = 0;
  set_write_fault_hook(&scripted_fault);
  try {
    atomic_write_file(path, "new version that will not fit\n");
    FAIL() << "injected ENOSPC did not throw";
  } catch (const DiskFullError& e) {
    EXPECT_EQ(e.path(), path);
  }
  set_write_fault_hook(nullptr);
  EXPECT_EQ(slurp(path), "previous version\n")
      << "old contents must survive a failed replace";
  EXPECT_FALSE(exists(path + ".tmp")) << "tmp must be unlinked on ENOSPC";
  std::remove(path.c_str());
}

TEST_F(AtomicFileTest, EnospcMidStreamStillCleansUp) {
  const std::string path = temp_path("enospc_mid");
  std::remove(path.c_str());  // residue from an earlier run must not mask
  g_enospc_after = 2;  // a few chunks land, then the disk fills
  set_write_fault_hook(&scripted_fault);
  std::string bytes(1 << 20, 'x');
  EXPECT_THROW(atomic_write_file(path, bytes), DiskFullError);
  set_write_fault_hook(nullptr);
  EXPECT_FALSE(exists(path));
  EXPECT_FALSE(exists(path + ".tmp"));
}

TEST_F(AtomicFileTest, ShortWritesAreResumed) {
  const std::string path = temp_path("short");
  g_short_writes = 5;
  set_write_fault_hook(&scripted_fault);
  std::string bytes(1 << 18, 'y');
  atomic_write_file(path, bytes);
  set_write_fault_hook(nullptr);
  EXPECT_EQ(slurp(path), bytes);
  std::remove(path.c_str());
}

TEST_F(AtomicFileTest, TransientErrorsAreRetried) {
  const std::string path = temp_path("transient");
  g_transient = 2;  // below max_transient_retries
  set_write_fault_hook(&scripted_fault);
  AtomicWriteOptions options;
  options.retry_backoff_ms = 0;
  atomic_write_file(path, "eventually lands\n", options);
  set_write_fault_hook(nullptr);
  EXPECT_EQ(slurp(path), "eventually lands\n");
  std::remove(path.c_str());
}

TEST_F(AtomicFileTest, PersistentTransientErrorGivesUpCleanly) {
  const std::string path = temp_path("persistent");
  g_transient = 100;  // beyond any retry budget
  set_write_fault_hook(&scripted_fault);
  AtomicWriteOptions options;
  options.retry_backoff_ms = 0;
  EXPECT_THROW(atomic_write_file(path, "never lands\n", options),
               std::runtime_error);
  set_write_fault_hook(nullptr);
  EXPECT_FALSE(exists(path));
  EXPECT_FALSE(exists(path + ".tmp"));
}

TEST_F(AtomicFileTest, ThrowingBeforeRenameLeavesTmpBehind) {
  const std::string path = temp_path("crash_drill");
  AtomicWriteOptions options;
  options.before_rename = [] { throw std::runtime_error("simulated death"); };
  EXPECT_THROW(atomic_write_file(path, "almost durable\n", options),
               std::runtime_error);
  EXPECT_FALSE(exists(path));
  // The drill simulates dying between tmp-fsync and rename: a dead
  // process cleans nothing up, so the tmp must still be there.
  EXPECT_TRUE(exists(path + ".tmp"));
  EXPECT_EQ(slurp(path + ".tmp"), "almost durable\n");
  std::remove((path + ".tmp").c_str());
}

TEST_F(AtomicFileTest, UnwritableDirectoryFailsWithoutArtifacts) {
  EXPECT_THROW(
      atomic_write_file("/proc/definitely/not/writable/file", "x"),
      std::runtime_error);
}

}  // namespace
}  // namespace sssp::util
