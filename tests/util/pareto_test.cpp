#include "util/pareto.hpp"

#include <gtest/gtest.h>

namespace sssp::util {
namespace {

TEST(Pareto, EmptyInput) {
  EXPECT_TRUE(pareto_front({}).empty());
}

TEST(Pareto, SinglePointIsFront) {
  const ParetoPoint p{1.0, 2.0, 7};
  const auto front = pareto_front(std::span(&p, 1));
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].tag, 7u);
}

TEST(Pareto, DominatedPointsRemoved) {
  const ParetoPoint points[] = {
      {1.0, 1.0, 0},  // front
      {2.0, 0.5, 1},  // dominated by 0 (costlier, worse)
      {2.0, 2.0, 2},  // front
      {3.0, 1.5, 3},  // dominated by 2
      {0.5, 0.2, 4},  // front (cheapest)
  };
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].tag, 4u);
  EXPECT_EQ(front[1].tag, 0u);
  EXPECT_EQ(front[2].tag, 2u);
  // Sorted ascending by cost, ascending by value along the front.
  EXPECT_LT(front[0].cost, front[1].cost);
  EXPECT_LT(front[1].value, front[2].value);
}

TEST(Pareto, EqualCostKeepsBestValue) {
  const ParetoPoint points[] = {{1.0, 1.0, 0}, {1.0, 3.0, 1}};
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].tag, 1u);
}

TEST(Pareto, ExactTiesKeepFirstOccurrence) {
  const ParetoPoint points[] = {{1.0, 1.0, 5}, {1.0, 1.0, 6}};
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].tag, 5u);
}

TEST(Pareto, IsDominatedAgreesWithFront) {
  const ParetoPoint points[] = {
      {1.0, 1.0, 0}, {2.0, 0.5, 1}, {2.0, 2.0, 2}, {3.0, 1.5, 3}};
  EXPECT_FALSE(is_dominated(points[0], points));
  EXPECT_TRUE(is_dominated(points[1], points));
  EXPECT_FALSE(is_dominated(points[2], points));
  EXPECT_TRUE(is_dominated(points[3], points));
}

TEST(Pareto, AllOnDiagonalAllSurvive) {
  // Strictly increasing value with cost: nothing dominates anything.
  std::vector<ParetoPoint> points;
  for (std::size_t i = 0; i < 10; ++i)
    points.push_back({static_cast<double>(i), static_cast<double>(i), i});
  EXPECT_EQ(pareto_front(points).size(), 10u);
}

}  // namespace
}  // namespace sssp::util
