#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sssp::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, NextRangeInclusiveBounds) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  // All four values should appear in 10k draws.
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  // Mean of U[0,1) should be ~0.5.
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro256, ForkedStreamsAreIndependentAndDeterministic) {
  Xoshiro256 parent1(5), parent2(5);
  Xoshiro256 child1 = parent1.fork();
  Xoshiro256 child2 = parent2.fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child1.next(), child2.next());
  // Child stream differs from the parent's continuation.
  EXPECT_NE(child1.next(), parent1.next());
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

}  // namespace
}  // namespace sssp::util
