#include "util/run_control.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <limits>
#include <thread>

namespace sssp::util {
namespace {

TEST(RunControl, StartsClean) {
  RunControl control;
  EXPECT_EQ(control.reason(), StopReason::kNone);
  EXPECT_FALSE(control.stop_requested());
  EXPECT_FALSE(control.should_abort());
  EXPECT_EQ(control.poll_iteration(0), StopReason::kNone);
  EXPECT_NO_THROW(control.throw_if_stopped());
}

TEST(RunControl, FirstReasonWins) {
  RunControl control;
  control.request_stop(StopReason::kInterrupt);
  control.request_stop(StopReason::kDeadline);
  control.request_stop(StopReason::kStall);
  EXPECT_EQ(control.reason(), StopReason::kInterrupt);
}

TEST(RunControl, NoneIsIgnored) {
  RunControl control;
  control.request_stop(StopReason::kNone);
  EXPECT_FALSE(control.stop_requested());
  control.request_stop(StopReason::kStall);
  control.request_stop(StopReason::kNone);
  EXPECT_EQ(control.reason(), StopReason::kStall);
}

TEST(RunControl, DeadlineRejectsNonPositive) {
  RunControl control;
  EXPECT_THROW(control.set_deadline(0.0), std::invalid_argument);
  EXPECT_THROW(control.set_deadline(-1.0), std::invalid_argument);
}

TEST(RunControl, ExpiredDeadlinePromotesToStop) {
  RunControl control;
  control.set_deadline(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(control.should_abort());
  EXPECT_EQ(control.reason(), StopReason::kDeadline);
}

TEST(RunControl, PollIterationChecksDeadline) {
  RunControl control;
  control.set_deadline(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(control.poll_iteration(1), StopReason::kDeadline);
}

TEST(RunControl, UnexpiredDeadlineKeepsRunning) {
  RunControl control;
  control.set_deadline(3600.0);
  EXPECT_FALSE(control.should_abort());
  EXPECT_EQ(control.poll_iteration(1), StopReason::kNone);
}

TEST(RunControl, StallWatchdogFiresAfterLimit) {
  RunControl control;
  control.set_stall_limit(3);
  // First poll only records the baseline.
  EXPECT_EQ(control.poll_iteration(10), StopReason::kNone);
  EXPECT_EQ(control.poll_iteration(10), StopReason::kNone);  // stall 1
  EXPECT_EQ(control.poll_iteration(10), StopReason::kNone);  // stall 2
  EXPECT_EQ(control.poll_iteration(10), StopReason::kStall);  // stall 3
}

TEST(RunControl, ProgressResetsStallCounter) {
  RunControl control;
  control.set_stall_limit(2);
  EXPECT_EQ(control.poll_iteration(10), StopReason::kNone);
  EXPECT_EQ(control.poll_iteration(10), StopReason::kNone);  // stall 1
  EXPECT_EQ(control.poll_iteration(11), StopReason::kNone);  // progress
  EXPECT_EQ(control.poll_iteration(11), StopReason::kNone);  // stall 1
  EXPECT_EQ(control.poll_iteration(11), StopReason::kStall);  // stall 2
}

TEST(RunControl, ZeroStallLimitDisarmsWatchdog) {
  RunControl control;
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(control.poll_iteration(7), StopReason::kNone);
}

TEST(RunControl, ThrowIfStoppedCarriesReason) {
  RunControl control;
  control.request_stop(StopReason::kStall);
  try {
    control.throw_if_stopped();
    FAIL() << "expected StopRequested";
  } catch (const StopRequested& e) {
    EXPECT_EQ(e.reason(), StopReason::kStall);
    EXPECT_STREQ(e.what(), "run stopped: stall");
  }
}

TEST(RunControl, ToStringCoversAllReasons) {
  EXPECT_STREQ(to_string(StopReason::kNone), "none");
  EXPECT_STREQ(to_string(StopReason::kInterrupt), "interrupt");
  EXPECT_STREQ(to_string(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(to_string(StopReason::kStall), "stall");
}

TEST(RunControl, SignalHandlerRequestsInterrupt) {
  RunControl control;
  install_signal_stop(control);
  std::raise(SIGTERM);
  uninstall_signal_stop();
  EXPECT_EQ(control.reason(), StopReason::kInterrupt);
}

TEST(RunControl, SignalAfterDeadlineDoesNotReclassify) {
  RunControl control;
  control.request_stop(StopReason::kDeadline);
  install_signal_stop(control);
  std::raise(SIGINT);
  uninstall_signal_stop();
  EXPECT_EQ(control.reason(), StopReason::kDeadline);
}

// Regression: steady_clock::duration is int64 nanoseconds, so an
// unclamped duration_cast of a huge seconds value wrapped negative and
// produced an already-expired deadline — a run with --deadline-ms set
// to "effectively forever" died instantly with exit 9.
TEST(RunControl, HugeDeadlineDoesNotOverflowIntoThePast) {
  RunControl control;
  control.set_deadline(1e18);  // ~31 billion years
  EXPECT_TRUE(control.has_deadline());
  EXPECT_FALSE(control.should_abort());
  EXPECT_EQ(control.poll_iteration(1), StopReason::kNone);
  EXPECT_EQ(control.reason(), StopReason::kNone);
}

TEST(RunControl, InfiniteDeadlineClampsSafely) {
  RunControl control;
  control.set_deadline(std::numeric_limits<double>::infinity());
  EXPECT_FALSE(control.should_abort());
  EXPECT_EQ(control.reason(), StopReason::kNone);
}

TEST(RunControl, NearOverflowDeadlineStillExpiresWhenShort) {
  RunControl control;
  control.set_deadline(1e-9);  // immediately expired, but via the
                               // normal path, not via wraparound
  EXPECT_TRUE(control.should_abort());
  EXPECT_EQ(control.reason(), StopReason::kDeadline);
}

}  // namespace
}  // namespace sssp::util
