#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sssp::util {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(touched.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t total = 0;
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    total += end - begin;
  });
  EXPECT_EQ(total, 10u);
}

TEST(ThreadPool, SumMatchesSerial) {
  ThreadPool pool(3);
  std::atomic<long long> sum{0};
  const std::size_t n = 100000;
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    long long local = 0;
    for (std::size_t i = begin; i < end; ++i) local += static_cast<long long>(i);
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Pool is still usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(97, [&](std::size_t begin, std::size_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
    ASSERT_EQ(count.load(), 97);
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  std::atomic<int> count{0};
  parallel_for(5, [&](std::size_t begin, std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, ForEachChunkCoversEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(257);
  pool.for_each_chunk(touched.size(), [&](std::size_t chunk, std::size_t) {
    touched[chunk].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ForEachChunkReportsValidThreadIds) {
  ThreadPool pool(4);
  std::atomic<int> bad{0};
  pool.for_each_chunk(500, [&](std::size_t, std::size_t thread_id) {
    if (thread_id >= pool.size()) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(ThreadPool, ForEachChunkPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.for_each_chunk(64,
                                   [](std::size_t chunk, std::size_t) {
                                     if (chunk == 63)
                                       throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.for_each_chunk(8, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, RunOnAllVisitsEveryThreadOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> visits(pool.size());
  pool.run_on_all([&](std::size_t thread_id) {
    visits[thread_id].fetch_add(1);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, SetGlobalThreadsResizesThePool) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().size(), 3u);
  ThreadPool::set_global_threads(5);
  EXPECT_EQ(ThreadPool::global().size(), 5u);
  // Matching size is a no-op (same pool object keeps working).
  ThreadPool* before = &ThreadPool::global();
  ThreadPool::set_global_threads(5);
  EXPECT_EQ(before, &ThreadPool::global());
  std::atomic<int> count{0};
  for_each_chunk(11, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 11);
  ThreadPool::set_global_threads(0);  // restore env/hardware default
}

}  // namespace
}  // namespace sssp::util
