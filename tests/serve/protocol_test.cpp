#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "graph/types.hpp"

namespace sssp::serve {
namespace {

constexpr std::uint64_t kVertices = 100;

TEST(ProtocolTest, MinimalQueryParses) {
  const ParsedRequest p =
      parse_request(R"({"id":"q1","source":7})", kVertices);
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.id, "q1");
  EXPECT_EQ(p.request.cmd, "query");
  EXPECT_EQ(p.request.source, 7u);
  EXPECT_EQ(p.request.deadline_ms, 0.0);
  EXPECT_EQ(p.request.verify, -1);  // server default
}

TEST(ProtocolTest, IntegerIdCanonicalizesToString) {
  const ParsedRequest p = parse_request(R"({"id":42,"source":0})", kVertices);
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.request.id, "42");
}

TEST(ProtocolTest, FullQueryParses) {
  const ParsedRequest p = parse_request(
      R"({"id":"x","source":3,"algorithm":"dijkstra","deadline_ms":250.5,)"
      R"("verify":false,"targets":[1,2,99],"set_point":512,"delta":9})",
      kVertices);
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.algorithm, "dijkstra");
  EXPECT_DOUBLE_EQ(p.request.deadline_ms, 250.5);
  EXPECT_EQ(p.request.verify, 0);
  EXPECT_EQ(p.request.targets.size(), 3u);
  EXPECT_EQ(p.request.targets[2], 99u);
  EXPECT_DOUBLE_EQ(p.request.set_point, 512.0);
  EXPECT_EQ(p.request.delta, 9u);
}

TEST(ProtocolTest, InfoCommandNeedsNoSource) {
  const ParsedRequest p =
      parse_request(R"({"id":"i","cmd":"info"})", kVertices);
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.request.cmd, "info");
}

TEST(ProtocolTest, FirewallRejections) {
  // Each entry must be rejected without throwing; these are the
  // poisoned inputs the firewall exists to stop.
  const char* bad[] = {
      "not json at all",
      "[1,2,3]",
      R"({"source":0})",                            // missing id
      R"({"id":"","source":0})",                    // empty id
      R"({"id":true,"source":0})",                  // bool id
      R"({"id":"q","cmd":"drop_tables"})",          // unknown cmd
      R"({"id":"q"})",                              // missing source
      R"({"id":"q","source":100})",                 // source == V
      R"({"id":"q","source":-1})",                  // negative source
      R"({"id":"q","source":1.5})",                 // fractional source
      R"({"id":"q","source":0,"algorithm":"bogus"})",
      R"({"id":"q","source":0,"deadline_ms":-5})",
      R"({"id":"q","source":0,"deadline_ms":1e999})",  // non-finite
      R"({"id":"q","source":0,"verify":"yes"})",
      R"({"id":"q","source":0,"targets":7})",
      R"({"id":"q","source":0,"targets":[100]})",   // target == V
      R"({"id":"q","source":0,"set_point":-1})",
      R"({"id":"q","source":0,"delta":3.7})",
  };
  for (const char* line : bad) {
    const ParsedRequest p = parse_request(line, kVertices);
    EXPECT_FALSE(p.ok) << "accepted: " << line;
    EXPECT_FALSE(p.error.empty());
  }
}

TEST(ProtocolTest, TargetListIsBounded) {
  std::string doc = R"({"id":"q","source":0,"targets":[)";
  for (std::size_t i = 0; i <= kMaxTargets; ++i)
    doc += (i ? ",0" : "0");
  doc += "]}";
  EXPECT_FALSE(parse_request(doc, kVertices).ok);
}

TEST(ProtocolTest, OversizedFrameRejected) {
  std::string doc = R"({"id":"q","source":0,"pad":")";
  doc.append(kMaxFrameBytes, 'x');
  doc += "\"}";
  const ParsedRequest p = parse_request(doc, kVertices);
  EXPECT_FALSE(p.ok);
  EXPECT_NE(p.error.find("frame"), std::string::npos);
}

TEST(ProtocolTest, OkResponseRoundTrips) {
  Response r;
  r.id = "q7";
  r.status = Status::kOk;
  r.algorithm = "near-far";
  r.reached = 1234;
  r.iterations = 17;
  r.improving_relaxations = 4321;
  r.dist_checksum = 0xabcdef12u;  // stays exact in a double
  r.targets.push_back({5, 42});
  r.targets.push_back({9, graph::kInfiniteDistance});
  r.cache_hit = true;
  r.verified = true;
  r.certified = true;
  r.queue_ms = 1.5;
  r.run_ms = 2.25;

  Response out;
  ASSERT_TRUE(parse_response(format_response(r), out));
  EXPECT_EQ(out.id, "q7");
  EXPECT_EQ(out.status, Status::kOk);
  EXPECT_EQ(out.reached, 1234u);
  EXPECT_EQ(out.dist_checksum, 0xabcdef12u);
  ASSERT_EQ(out.targets.size(), 2u);
  EXPECT_EQ(out.targets[0].distance, 42u);
  // INF serialized as null and parsed back as unreachable.
  EXPECT_EQ(out.targets[1].distance, graph::kInfiniteDistance);
  EXPECT_TRUE(out.cache_hit);
  EXPECT_TRUE(out.verified);
  EXPECT_TRUE(out.certified);
}

TEST(ProtocolTest, ShedResponseCarriesRetryHint) {
  Response r;
  r.id = "q1";
  r.status = Status::kOverloaded;
  r.error = "queue full";
  r.retry_after_ms = 75.0;
  Response out;
  ASSERT_TRUE(parse_response(format_response(r), out));
  EXPECT_EQ(out.status, Status::kOverloaded);
  EXPECT_EQ(out.error, "queue full");
  EXPECT_DOUBLE_EQ(out.retry_after_ms, 75.0);
}

TEST(ProtocolTest, InfoResponseRoundTrips) {
  Response r;
  r.id = "i";
  r.status = Status::kOk;
  r.has_info = true;
  r.num_vertices = 4096;
  r.num_edges = 39339;
  r.graph_fingerprint = 0x1234567u;
  r.queue_capacity = 64;
  r.workers = 2;
  r.cache_entries = 128;
  r.draining = true;
  Response out;
  ASSERT_TRUE(parse_response(format_response(r), out));
  ASSERT_TRUE(out.has_info);
  EXPECT_EQ(out.num_vertices, 4096u);
  EXPECT_EQ(out.queue_capacity, 64u);
  EXPECT_TRUE(out.draining);
}

TEST(ProtocolTest, TornResponseFailsCleanly) {
  Response r;
  r.id = "q1";
  r.status = Status::kOk;
  const std::string doc = format_response(r);
  Response out;
  // Every proper prefix is a parse failure, never a crash or a false
  // accept — this is what the client's torn-write recovery leans on.
  for (std::size_t cut = 0; cut < doc.size(); ++cut)
    EXPECT_FALSE(parse_response(doc.substr(0, cut), out)) << cut;
  EXPECT_TRUE(parse_response(doc, out));
}

TEST(ProtocolTest, HealthAndReadyCommandsParse) {
  const ParsedRequest health =
      parse_request(R"({"id":"h","cmd":"health"})", kVertices);
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_EQ(health.request.cmd, "health");
  const ParsedRequest ready =
      parse_request(R"({"id":"r","cmd":"ready"})", kVertices);
  ASSERT_TRUE(ready.ok) << ready.error;
  EXPECT_EQ(ready.request.cmd, "ready");
}

TEST(ProtocolTest, HealthResponseRoundTrips) {
  Response r;
  r.id = "h1";
  r.status = Status::kOk;
  r.has_health = true;
  r.role = "supervisor";
  r.ready = true;
  r.workers_alive = 3;
  r.workers_total = 4;
  r.restarts = 7;
  Response out;
  ASSERT_TRUE(parse_response(format_response(r), out));
  ASSERT_TRUE(out.has_health);
  EXPECT_EQ(out.role, "supervisor");
  EXPECT_TRUE(out.ready);
  EXPECT_EQ(out.workers_alive, 3u);
  EXPECT_EQ(out.workers_total, 4u);
  EXPECT_EQ(out.restarts, 7u);
}

TEST(ProtocolTest, HealthResponseCarriesNoQueryPayload) {
  Response r;
  r.id = "h2";
  r.status = Status::kOk;
  r.has_health = true;
  r.role = "server";
  r.ready = true;
  const std::string doc = format_response(r);
  // An ok health document must not leak query-result keys: the client
  // keys its certification invariant on their presence.
  EXPECT_EQ(doc.find("\"verified\""), std::string::npos) << doc;
  EXPECT_EQ(doc.find("\"dist_checksum\""), std::string::npos) << doc;
}

// format_request is what the supervisor uses to re-key and forward
// validated queries to workers: everything the firewall accepted must
// survive the round trip, or redispatch would mutate queries.
TEST(ProtocolTest, FormatRequestRoundTripsThroughTheFirewall) {
  Request q;
  q.id = "s42";
  q.cmd = "query";
  q.source = 17;
  q.algorithm = "near-far";
  q.deadline_ms = 125.5;
  q.verify = 1;
  q.targets = {1, 5, 99};
  q.set_point = 256.0;
  q.delta = 12;
  const ParsedRequest p = parse_request(format_request(q), kVertices);
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.id, "s42");
  EXPECT_EQ(p.request.source, 17u);
  EXPECT_EQ(p.request.algorithm, "near-far");
  EXPECT_DOUBLE_EQ(p.request.deadline_ms, 125.5);
  EXPECT_EQ(p.request.verify, 1);
  ASSERT_EQ(p.request.targets.size(), 3u);
  EXPECT_EQ(p.request.targets[2], 99u);
  EXPECT_DOUBLE_EQ(p.request.set_point, 256.0);
  EXPECT_EQ(p.request.delta, 12u);
}

TEST(ProtocolTest, FormatRequestMinimalQuery) {
  Request q;
  q.id = "s0";
  q.source = 3;
  const ParsedRequest p = parse_request(format_request(q), kVertices);
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.source, 3u);
  EXPECT_EQ(p.request.verify, -1);
  EXPECT_EQ(p.request.deadline_ms, 0.0);
  EXPECT_TRUE(p.request.targets.empty());
}

TEST(ProtocolTest, StatusStringsAreStable) {
  EXPECT_STREQ(to_string(Status::kOk), "ok");
  EXPECT_STREQ(to_string(Status::kOverloaded), "overloaded");
  EXPECT_STREQ(to_string(Status::kExpired), "expired");
  EXPECT_STREQ(to_string(Status::kInvalid), "invalid");
  EXPECT_STREQ(to_string(Status::kError), "error");
  EXPECT_STREQ(to_string(Status::kShuttingDown), "shutting_down");
}

}  // namespace
}  // namespace sssp::serve
