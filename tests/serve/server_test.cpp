#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/failpoint.hpp"
#include "obs/json.hpp"
#include "res/budget.hpp"
#include "serve/socket.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::serve {
namespace {

using algo::testing::random_graph;
using algo::testing::ring;

// Collects responses from any thread and lets the test block until a
// count arrives (queries resolve on worker threads).
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Response> responses;

  Server::ResponseSink sink() {
    return [this](const Response& r) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(r);
      cv.notify_all();
    };
  }

  bool wait_for(std::size_t n, int timeout_ms = 20000) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return responses.size() >= n; });
  }

  std::size_t count(Status status) {
    std::lock_guard<std::mutex> lock(mu);
    return static_cast<std::size_t>(
        std::count_if(responses.begin(), responses.end(),
                      [&](const Response& r) { return r.status == status; }));
  }

  Response first(Status status) {
    std::lock_guard<std::mutex> lock(mu);
    for (const Response& r : responses)
      if (r.status == status) return r;
    ADD_FAILURE() << "no response with status " << to_string(status);
    return {};
  }
};

std::string query(const std::string& id, graph::VertexId source,
                  const std::string& extra = "") {
  return "{\"id\":\"" + id + "\",\"source\":" + std::to_string(source) +
         extra + "}";
}

TEST(ServerTest, OkQueryIsCertifiedAndCached) {
  const auto g = random_graph(512, 4.0, 100, 1);
  Server server(g, {});
  server.start();
  Collector c;
  server.submit(query("a", 0), c.sink());
  ASSERT_TRUE(c.wait_for(1));
  const Response first = c.responses[0];
  EXPECT_EQ(first.status, Status::kOk);
  EXPECT_TRUE(first.verified);
  EXPECT_TRUE(first.certified);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.reached, 0u);
  EXPECT_NE(first.dist_checksum, 0u);

  server.submit(query("b", 0), c.sink());
  ASSERT_TRUE(c.wait_for(2));
  const Response second = c.responses[1];
  EXPECT_EQ(second.status, Status::kOk);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(second.certified);  // cache hits re-certify
  EXPECT_EQ(second.dist_checksum, first.dist_checksum);
  server.drain();
}

TEST(ServerTest, TargetsComeBackExact) {
  const auto g = ring(16);  // dist(k) = k from source 0
  Server server(g, {});
  server.start();
  Collector c;
  server.submit(query("t", 0, ",\"targets\":[3,7]"), c.sink());
  ASSERT_TRUE(c.wait_for(1));
  const Response r = c.responses[0];
  ASSERT_EQ(r.status, Status::kOk);
  ASSERT_EQ(r.targets.size(), 2u);
  EXPECT_EQ(r.targets[0].vertex, 3u);
  EXPECT_EQ(r.targets[0].distance, 3u);
  EXPECT_EQ(r.targets[1].distance, 7u);
  server.drain();
}

TEST(ServerTest, InvalidRequestRejectedInline) {
  const auto g = ring(16);
  Server server(g, {});
  server.start();
  Collector c;
  server.submit("definitely not json", c.sink());
  server.submit(query("oob", 99), c.sink());  // source out of range
  // Inline responses need no wait.
  ASSERT_EQ(c.responses.size(), 2u);
  EXPECT_EQ(c.responses[0].status, Status::kInvalid);
  EXPECT_EQ(c.responses[1].status, Status::kInvalid);
  EXPECT_EQ(server.stats().invalid, 2u);
  server.drain();
}

TEST(ServerTest, InfoServedInline) {
  const auto g = ring(16);
  Server server(g, {});
  server.start();
  Collector c;
  server.submit(R"({"id":"i","cmd":"info"})", c.sink());
  ASSERT_EQ(c.responses.size(), 1u);
  const Response& r = c.responses[0];
  EXPECT_TRUE(r.has_info);
  EXPECT_EQ(r.num_vertices, 16u);
  EXPECT_EQ(r.graph_fingerprint, server.graph_fingerprint());
  EXPECT_FALSE(r.draining);
  server.drain();
}

TEST(ServerTest, OverloadShedsWithStructuredResponses) {
  const auto g = random_graph(4096, 8.0, 100, 2);
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  Server server(g, options);
  server.start();
  Collector c;
  const std::size_t kFlood = 20;
  for (std::size_t i = 0; i < kFlood; ++i)
    server.submit(query("f" + std::to_string(i),
                        static_cast<graph::VertexId>(i)),
                  c.sink());
  // Exactly one response per submit — shed or executed, never dropped.
  ASSERT_TRUE(c.wait_for(kFlood));
  EXPECT_EQ(c.responses.size(), kFlood);
  EXPECT_GE(c.count(Status::kOverloaded), 1u);
  EXPECT_GE(c.count(Status::kOk), 1u);
  const Response shed = c.first(Status::kOverloaded);
  EXPECT_GT(shed.retry_after_ms, 0.0);
  EXPECT_FALSE(shed.error.empty());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.responses, kFlood);
  EXPECT_GE(stats.shed_queue_full, 1u);
  server.drain();
  EXPECT_EQ(server.stats().queue_depth, 0u);
  EXPECT_EQ(server.stats().in_flight, 0u);
}

TEST(ServerTest, DropOldestDisplacesQueuedQuery) {
  const auto g = random_graph(4096, 8.0, 100, 2);
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.shed_policy = ShedPolicy::kDropOldest;
  Server server(g, options);
  server.start();
  Collector c;
  for (std::size_t i = 0; i < 10; ++i)
    server.submit(query("d" + std::to_string(i),
                        static_cast<graph::VertexId>(i)),
                  c.sink());
  ASSERT_TRUE(c.wait_for(10));
  EXPECT_GE(c.count(Status::kOverloaded), 1u);
  server.drain();
}

TEST(ServerTest, ExpiredInQueueIsShedBeforeExecution) {
  const auto g = random_graph(2048, 4.0, 100, 3);
  ServerOptions options;
  options.workers = 1;
  Server server(g, options);
  server.start();
  Collector c;
  // A long query occupies the single worker, then a micro-deadline
  // query waits behind it and must expire in the queue.
  server.submit(query("long", 0), c.sink());
  server.submit(query("tiny", 1, ",\"deadline_ms\":0.001"), c.sink());
  ASSERT_TRUE(c.wait_for(2));
  std::size_t expired = c.count(Status::kExpired);
  EXPECT_EQ(expired, 1u);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed_expired_queue + stats.expired_running, 1u);
  server.drain();
}

TEST(ServerTest, HandlerCrashCostsOneErrorNotAWorker) {
  const auto g = ring(64);
  ServerOptions options;
  options.workers = 1;
  Server server(g, options);
  server.start();
  Collector c;
  fault::FailpointRegistry::global().arm("serve.handler.crash");
  server.submit(query("boom", 0), c.sink());
  ASSERT_TRUE(c.wait_for(1));
  fault::FailpointRegistry::global().disarm_all();
  EXPECT_EQ(c.responses[0].status, Status::kError);
  EXPECT_EQ(server.stats().handler_errors, 1u);
  // The worker and its queue slot survived: the next query executes.
  server.submit(query("after", 0), c.sink());
  ASSERT_TRUE(c.wait_for(2));
  EXPECT_EQ(c.responses[1].status, Status::kOk);
  EXPECT_TRUE(c.responses[1].certified);
  server.drain();
  EXPECT_EQ(server.stats().in_flight, 0u);
}

TEST(ServerTest, PoisonedCacheEntryCaughtQuarantinedRecomputed) {
  const auto g = ring(128);
  Server server(g, {});
  server.start();
  Collector c;
  // Fresh result certifies and enters the cache poisoned (the stored
  // copy is bit-flipped; the response was computed pre-insert).
  fault::FailpointRegistry::global().arm("serve.cache.flip");
  server.submit(query("seed", 0), c.sink());
  ASSERT_TRUE(c.wait_for(1));
  fault::FailpointRegistry::global().disarm_all();
  EXPECT_EQ(c.responses[0].status, Status::kOk);
  EXPECT_TRUE(c.responses[0].certified);

  // The cache hit serves the poisoned copy: read-side certification
  // must catch it, respond `error`, and quarantine the entry.
  server.submit(query("hit", 0), c.sink());
  ASSERT_TRUE(c.wait_for(2));
  EXPECT_EQ(c.responses[1].status, Status::kError);
  EXPECT_NE(c.responses[1].error.find("certification"), std::string::npos);
  EXPECT_EQ(server.stats().cache_poisoned, 1u);
  EXPECT_EQ(server.stats().cache.invalidations, 1u);

  // Quarantined: the next query recomputes and certifies clean.
  server.submit(query("clean", 0), c.sink());
  ASSERT_TRUE(c.wait_for(3));
  EXPECT_EQ(c.responses[2].status, Status::kOk);
  EXPECT_FALSE(c.responses[2].cache_hit);
  EXPECT_TRUE(c.responses[2].certified);
  server.drain();
}

TEST(ServerTest, DrainShedsEverythingAndStops) {
  const auto g = random_graph(4096, 8.0, 100, 4);
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 8;
  options.drain_ms = 1.0;  // force the shed path
  Server server(g, options);
  server.start();
  Collector c;
  const std::size_t kSubmitted = 8;
  for (std::size_t i = 0; i < kSubmitted; ++i)
    server.submit(query("s" + std::to_string(i),
                        static_cast<graph::VertexId>(i)),
                  c.sink());
  server.drain();
  // Every admitted query resolved: ok, shed by drain, or aborted.
  ASSERT_TRUE(c.wait_for(kSubmitted));
  EXPECT_EQ(c.responses.size(), kSubmitted);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_TRUE(stats.drain_requested);
  // New submissions after drain get a structured shutting_down.
  server.submit(query("late", 0), c.sink());
  ASSERT_EQ(c.responses.size(), kSubmitted + 1);
  EXPECT_EQ(c.responses.back().status, Status::kShuttingDown);
  EXPECT_GT(c.responses.back().retry_after_ms, 0.0);
}

TEST(ServerTest, DrainIsIdempotentAndCleanWhenIdle) {
  const auto g = ring(16);
  Server server(g, {});
  server.start();
  server.drain();
  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_TRUE(stats.drain_requested);
  EXPECT_TRUE(stats.drain_clean);
}

TEST(ServerTest, ReportIsValidJson) {
  const auto g = ring(64);
  Server server(g, {});
  server.start();
  Collector c;
  server.submit(query("r", 0), c.sink());
  ASSERT_TRUE(c.wait_for(1));
  server.drain();
  std::ostringstream out;
  server.write_report(out);
  obs::JsonValue doc;
  ASSERT_TRUE(obs::parse_json(out.str(), doc)) << out.str();
  EXPECT_EQ(doc.string_or("schema", ""), "tunesssp.serve.v1");
  const obs::JsonValue* totals = doc.find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->number_or("completed", -1), 1.0);
  ASSERT_NE(doc.find("latency_ms"), nullptr);
  ASSERT_NE(doc.find("drain"), nullptr);
}

// --- socket transport ---------------------------------------------------

TEST(SocketTest, FrameRoundTripOverLoopback) {
  const int listen_fd = listen_tcp(0);
  const std::uint16_t port = bound_port(listen_fd);
  std::thread echo([listen_fd] {
    const int conn = accept_conn(listen_fd);
    ASSERT_GE(conn, 0);
    std::string payload;
    while (read_frame(conn, payload)) write_frame(conn, payload);
    ::close(conn);
  });
  const int fd = connect_tcp(port);
  write_frame(fd, R"({"id":"1","source":0})");
  write_frame(fd, "");  // empty frame is legal
  std::string back;
  ASSERT_TRUE(read_frame(fd, back));
  EXPECT_EQ(back, R"({"id":"1","source":0})");
  ASSERT_TRUE(read_frame(fd, back));
  EXPECT_TRUE(back.empty());
  ::shutdown(fd, SHUT_WR);
  EXPECT_FALSE(read_frame(fd, back));  // clean EOF
  ::close(fd);
  echo.join();
  ::close(listen_fd);
}

TEST(SocketTest, TornFrameTruncatesPayloadButKeepsFraming) {
  const int listen_fd = listen_tcp(0);
  const std::uint16_t port = bound_port(listen_fd);
  std::thread sender([listen_fd] {
    const int conn = accept_conn(listen_fd);
    ASSERT_GE(conn, 0);
    write_torn_frame(conn, "0123456789");
    write_frame(conn, "intact");
    ::close(conn);
  });
  const int fd = connect_tcp(port);
  std::string payload;
  ASSERT_TRUE(read_frame(fd, payload));
  EXPECT_EQ(payload, "01234");  // half, with a matching prefix
  ASSERT_TRUE(read_frame(fd, payload));  // the stream survived
  EXPECT_EQ(payload, "intact");
  ::close(fd);
  sender.join();
  ::close(listen_fd);
}

// Memory-aware admission (docs/ROBUSTNESS.md, "Resource budgets &
// exhaustion"): with a process memory budget too small for even one
// projected query footprint, every submit sheds kOverloaded with a
// retry hint — same client contract as a full queue, but it fires
// *before* a solve could OOM.
TEST(ServerTest, MemoryBudgetShedsWithRetryHint) {
  const auto g = random_graph(512, 4.0, 100, 1);
  res::ResourceBudget::global().reset();
  res::ResourceBudget::global().set_memory_limit(1024);  // << one query
  Server server(g, {});
  server.start();
  Collector c;
  server.submit(query("m1", 0), c.sink());
  ASSERT_TRUE(c.wait_for(1));
  const Response shed = c.responses[0];
  EXPECT_EQ(shed.status, Status::kOverloaded);
  EXPECT_GT(shed.retry_after_ms, 0.0);
  EXPECT_NE(shed.error.find("memory"), std::string::npos) << shed.error;
  server.drain();
  EXPECT_EQ(server.stats().shed_memory, 1u);
  res::ResourceBudget::global().reset();
}

TEST(ServerTest, AdmitFailpointForcesMemoryShed) {
  const auto g = random_graph(256, 4.0, 100, 1);
  Server server(g, {});
  server.start();
  Collector c;
  // No budget limit configured: only the armed drill can shed here.
  fault::FailpointRegistry::global().arm("res.serve.admit");
  server.submit(query("f1", 0), c.sink());
  ASSERT_TRUE(c.wait_for(1));
  EXPECT_EQ(c.responses[0].status, Status::kOverloaded);
  fault::FailpointRegistry::global().disarm_all();
  // Disarmed, the very next query goes through and certifies.
  server.submit(query("f2", 1), c.sink());
  ASSERT_TRUE(c.wait_for(2));
  EXPECT_EQ(c.responses[1].status, Status::kOk);
  server.drain();
  EXPECT_EQ(server.stats().shed_memory, 1u);
}

TEST(SocketTest, OversizedPrefixRejectedBeforeAllocation) {
  const int listen_fd = listen_tcp(0);
  const std::uint16_t port = bound_port(listen_fd);
  std::thread sender([listen_fd] {
    const int conn = accept_conn(listen_fd);
    ASSERT_GE(conn, 0);
    const unsigned char huge[4] = {0xff, 0xff, 0xff, 0x7f};
    ASSERT_EQ(::write(conn, huge, 4), 4);
    ::close(conn);
  });
  const int fd = connect_tcp(port);
  std::string payload;
  EXPECT_THROW(read_frame(fd, payload), ServeError);
  ::close(fd);
  sender.join();
  ::close(listen_fd);
}

TEST(SocketTest, BindConflictThrowsServeError) {
  const int first = listen_tcp(0);
  const std::uint16_t port = bound_port(first);
  // SO_REUSEADDR does not allow two live listeners on one port.
  EXPECT_THROW(listen_tcp(port), ServeError);
  ::close(first);
}

}  // namespace
}  // namespace sssp::serve
