#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace sssp::serve {
namespace {

Ticket ticket(const std::string& id) {
  Ticket t;
  t.request.id = id;
  t.admitted_at = std::chrono::steady_clock::now();
  return t;
}

TEST(AdmissionTest, FifoUnderCapacity) {
  AdmissionQueue q(4, ShedPolicy::kRejectNew);
  EXPECT_TRUE(q.push(ticket("a")).admitted);
  EXPECT_TRUE(q.push(ticket("b")).admitted);
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.pop()->ticket.request.id, "a");
  EXPECT_EQ(q.pop()->ticket.request.id, "b");
  EXPECT_EQ(q.depth(), 0u);
}

TEST(AdmissionTest, RejectNewHandsTheTicketBack) {
  AdmissionQueue q(2, ShedPolicy::kRejectNew);
  ASSERT_TRUE(q.push(ticket("a")).admitted);
  ASSERT_TRUE(q.push(ticket("b")).admitted);
  const auto outcome = q.push(ticket("c"));
  EXPECT_FALSE(outcome.admitted);
  EXPECT_FALSE(outcome.displaced.has_value());
  // The rejected ticket (with its response sink) comes back to the
  // caller — losing it would be a silent drop.
  ASSERT_TRUE(outcome.rejected.has_value());
  EXPECT_EQ(outcome.rejected->request.id, "c");
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.pop()->ticket.request.id, "a");
}

TEST(AdmissionTest, DropOldestDisplacesTheFront) {
  AdmissionQueue q(2, ShedPolicy::kDropOldest);
  ASSERT_TRUE(q.push(ticket("a")).admitted);
  ASSERT_TRUE(q.push(ticket("b")).admitted);
  const auto outcome = q.push(ticket("c"));
  EXPECT_TRUE(outcome.admitted);
  ASSERT_TRUE(outcome.displaced.has_value());
  EXPECT_EQ(outcome.displaced->request.id, "a");
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.pop()->ticket.request.id, "b");
  EXPECT_EQ(q.pop()->ticket.request.id, "c");
}

TEST(AdmissionTest, ExpiredFlaggedAtPop) {
  AdmissionQueue q(4, ShedPolicy::kRejectNew);
  Ticket past = ticket("late");
  past.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  Ticket future = ticket("fresh");
  future.deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  ASSERT_TRUE(q.push(std::move(past)).admitted);
  ASSERT_TRUE(q.push(std::move(future)).admitted);
  const auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->expired);
  const auto second = q.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->expired);
}

TEST(AdmissionTest, NoDeadlineNeverExpires) {
  AdmissionQueue q(1, ShedPolicy::kRejectNew);
  ASSERT_TRUE(q.push(ticket("a")).admitted);
  EXPECT_FALSE(q.pop()->expired);
}

TEST(AdmissionTest, CloseRejectsPushesAndDrainsPoppers) {
  AdmissionQueue q(4, ShedPolicy::kRejectNew);
  ASSERT_TRUE(q.push(ticket("a")).admitted);
  q.close();
  EXPECT_TRUE(q.closed());
  const auto outcome = q.push(ticket("b"));
  EXPECT_FALSE(outcome.admitted);
  ASSERT_TRUE(outcome.rejected.has_value());
  // Queued work is still popped after close...
  EXPECT_EQ(q.pop()->ticket.request.id, "a");
  // ...and an empty closed queue is the worker exit signal.
  EXPECT_FALSE(q.pop().has_value());
}

TEST(AdmissionTest, CloseWakesABlockedPopper) {
  AdmissionQueue q(4, ShedPolicy::kRejectNew);
  std::thread popper([&q] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  popper.join();
}

TEST(AdmissionTest, DrainRemainingEmptiesTheQueue) {
  AdmissionQueue q(8, ShedPolicy::kRejectNew);
  for (const char* id : {"a", "b", "c"})
    ASSERT_TRUE(q.push(ticket(id)).admitted);
  const auto drained = q.drain_remaining();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].request.id, "a");
  EXPECT_EQ(drained[2].request.id, "c");
  EXPECT_EQ(q.depth(), 0u);
}

TEST(AdmissionTest, ZeroCapacityClampsToOne) {
  AdmissionQueue q(0, ShedPolicy::kRejectNew);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.push(ticket("a")).admitted);
  EXPECT_FALSE(q.push(ticket("b")).admitted);
}

TEST(AdmissionTest, ShedPolicyParsing) {
  EXPECT_EQ(parse_shed_policy("reject-new"), ShedPolicy::kRejectNew);
  EXPECT_EQ(parse_shed_policy("drop-oldest"), ShedPolicy::kDropOldest);
  EXPECT_THROW(parse_shed_policy("lifo"), std::invalid_argument);
  EXPECT_STREQ(to_string(ShedPolicy::kRejectNew), "reject-new");
  EXPECT_STREQ(to_string(ShedPolicy::kDropOldest), "drop-oldest");
}

}  // namespace
}  // namespace sssp::serve
