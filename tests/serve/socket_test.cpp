// Framed-transport robustness (serve/socket.hpp): signal interruption,
// torn and dribbled frames, and the pre-allocation length check. These
// are the failure modes the crash-isolated supervisor leans on — its
// SIGCHLD handler is installed *without* SA_RESTART, so every blocking
// read/write in the routing path can take EINTR mid-frame and must
// resume instead of tearing the stream.
#include "serve/socket.hpp"

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>

#include "util/rng.hpp"

namespace sssp::serve {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      ADD_FAILURE() << "socketpair: " << std::strerror(errno);
      return;
    }
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

void drip_write(int fd, const std::string& bytes) {
  for (char c : bytes) ASSERT_EQ(::write(fd, &c, 1), 1);
}

std::string frame_bytes(const std::string& payload) {
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string bytes;
  bytes.push_back(static_cast<char>(length & 0xff));
  bytes.push_back(static_cast<char>((length >> 8) & 0xff));
  bytes.push_back(static_cast<char>((length >> 16) & 0xff));
  bytes.push_back(static_cast<char>((length >> 24) & 0xff));
  bytes += payload;
  return bytes;
}

TEST(SocketFraming, RoundTripOverSocketpair) {
  SocketPair sp;
  write_frame(sp.a, R"({"id":"x","source":1})");
  std::string payload;
  ASSERT_TRUE(read_frame(sp.b, payload));
  EXPECT_EQ(payload, R"({"id":"x","source":1})");
}

TEST(SocketFraming, CleanEofAtFrameBoundaryReturnsFalse) {
  SocketPair sp;
  write_frame(sp.a, "hello");
  ::close(sp.a);
  sp.a = -1;
  std::string payload;
  ASSERT_TRUE(read_frame(sp.b, payload));
  EXPECT_EQ(payload, "hello");
  EXPECT_FALSE(read_frame(sp.b, payload));
}

TEST(SocketFraming, EofMidFrameIsATornFrame) {
  SocketPair sp;
  const std::string full = frame_bytes("abcdefgh");
  drip_write(sp.a, full.substr(0, full.size() - 3));
  ::close(sp.a);
  sp.a = -1;
  std::string payload;
  EXPECT_THROW(read_frame(sp.b, payload), ServeError);
}

TEST(SocketFraming, OversizeLengthPrefixRejectedBeforeAllocation) {
  SocketPair sp;
  // A 4 GB length prefix must be rejected from the 4 prefix bytes
  // alone — no allocation, no waiting for a payload that never comes.
  const char prefix[4] = {'\xff', '\xff', '\xff', '\xff'};
  ASSERT_EQ(::write(sp.a, prefix, 4), 4);
  std::string payload;
  EXPECT_THROW(read_frame(sp.b, payload), ServeError);
}

// Satellite drill: a writer that flushes one byte at a time with
// seeded pauses. Every frame must arrive intact and in order — short
// reads are a normal stream state, never a parse error.
TEST(SocketFraming, OneByteDribbleTortureKeepsFraming) {
  SocketPair sp;
  constexpr int kFrames = 64;
  std::thread writer([&] {
    util::Xoshiro256 rng(2026);
    for (int i = 0; i < kFrames; ++i) {
      std::string payload = "frame-" + std::to_string(i) + "-";
      payload.append(rng.next() % 300, 'x');
      const std::string bytes = frame_bytes(payload);
      for (std::size_t off = 0; off < bytes.size();) {
        // Random run lengths, frequently exactly 1 byte.
        const std::size_t n =
            std::min<std::size_t>(1 + rng.next() % 3, bytes.size() - off);
        ASSERT_EQ(::write(sp.a, bytes.data() + off,
                          static_cast<std::size_t>(n)),
                  static_cast<ssize_t>(n));
        off += n;
        if (rng.next() % 8 == 0)
          std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    ::shutdown(sp.a, SHUT_WR);
  });
  std::string payload;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(read_frame(sp.b, payload)) << "frame " << i;
    const std::string want_prefix = "frame-" + std::to_string(i) + "-";
    ASSERT_EQ(payload.compare(0, want_prefix.size(), want_prefix), 0)
        << "misframed at " << i << ": " << payload.substr(0, 32);
  }
  EXPECT_FALSE(read_frame(sp.b, payload));  // clean EOF, not a tear
  writer.join();
}

// Satellite drill: signals without SA_RESTART land mid-read. The
// supervisor installs SIGCHLD exactly this way, so read_frame must
// absorb EINTR at *every* byte position — both inside the length
// prefix and inside the payload.
TEST(SocketFraming, SignalStormDuringFramedReadIsInvisible) {
  struct sigaction sa {};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  SocketPair sp;
  std::atomic<bool> done{false};
  const pthread_t reader_thread = ::pthread_self();

  // One thread pounds the reader with signals; another dribbles the
  // frame so the reader is parked in read() when they land.
  std::thread storm([&] {
    while (!done.load()) {
      ::pthread_kill(reader_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  const std::string payload(4096, 'q');
  std::thread writer([&] {
    const std::string bytes = frame_bytes(payload);
    for (std::size_t off = 0; off < bytes.size(); ++off) {
      while (::write(sp.a, bytes.data() + off, 1) != 1) {
        ASSERT_TRUE(errno == EINTR || errno == EAGAIN);
      }
      if (off % 512 == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::string got;
  EXPECT_TRUE(read_frame(sp.b, got));
  EXPECT_EQ(got, payload);

  done.store(true);
  storm.join();
  writer.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
}

TEST(SocketFraming, WriteFrameSurvivesSignalStorm) {
  struct sigaction sa {};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  SocketPair sp;
  std::atomic<bool> done{false};
  pthread_t writer_thread{};
  std::atomic<bool> writer_started{false};

  // Payload bigger than the socketpair buffer, so write_frame blocks
  // and the signals land inside the blocking write().
  const std::string payload(1 << 20, 'w');
  std::thread writer([&] {
    writer_thread = ::pthread_self();
    writer_started.store(true);
    write_frame(sp.a, payload);
  });
  while (!writer_started.load()) std::this_thread::yield();
  std::thread storm([&] {
    while (!done.load()) {
      ::pthread_kill(writer_thread, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::string got;
  EXPECT_TRUE(read_frame(sp.b, got));
  EXPECT_EQ(got.size(), payload.size());
  EXPECT_EQ(got, payload);

  done.store(true);
  storm.join();
  writer.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
}

}  // namespace
}  // namespace sssp::serve
