#include "serve/result_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "fault/failpoint.hpp"
#include "graph/binary_io.hpp"
#include "sssp/dijkstra.hpp"
#include "tests/sssp/test_graphs.hpp"
#include "verify/certifier.hpp"

namespace sssp::serve {
namespace {

using algo::testing::ring;

CacheKey key(std::uint64_t fingerprint, graph::VertexId source) {
  CacheKey k;
  k.fingerprint = fingerprint;
  k.source = source;
  k.options_key = cache_options_key("near-far", 0, 0.0);
  return k;
}

std::shared_ptr<CacheEntry> entry_for(const graph::CsrGraph& g,
                                      graph::VertexId source) {
  auto entry = std::make_shared<CacheEntry>();
  entry->result = algo::dijkstra(g, source);
  entry->dist_checksum = graph::fnv1a64(
      entry->result.distances.data(),
      entry->result.distances.size() * sizeof(graph::Distance));
  return entry;
}

TEST(ResultCacheTest, HitAfterInsert) {
  const auto g = ring(32);
  ResultCache cache(4);
  EXPECT_EQ(cache.lookup(key(1, 0)), nullptr);
  cache.insert(key(1, 0), entry_for(g, 0));
  const auto hit = cache.lookup(key(1, 0));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result.distances[5], 5u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  const auto g = ring(32);
  ResultCache cache(2);
  cache.insert(key(1, 0), entry_for(g, 0));
  cache.insert(key(1, 1), entry_for(g, 1));
  // Touch 0 so 1 becomes the LRU victim.
  ASSERT_NE(cache.lookup(key(1, 0)), nullptr);
  cache.insert(key(1, 2), entry_for(g, 2));
  EXPECT_NE(cache.lookup(key(1, 0)), nullptr);
  EXPECT_EQ(cache.lookup(key(1, 1)), nullptr);  // evicted
  EXPECT_NE(cache.lookup(key(1, 2)), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCacheTest, CapacityIsAHardBound) {
  const auto g = ring(32);
  ResultCache cache(3);
  for (graph::VertexId s = 0; s < 20; ++s)
    cache.insert(key(1, s), entry_for(g, s));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 17u);
}

TEST(ResultCacheTest, FingerprintMismatchNeverHits) {
  const auto g = ring(32);
  ResultCache cache(4);
  cache.insert(key(0xAAAA, 0), entry_for(g, 0));
  // Same source and options on a *different graph's* fingerprint — a
  // restarted server must never serve the old graph's answer.
  EXPECT_EQ(cache.lookup(key(0xBBBB, 0)), nullptr);
  EXPECT_NE(cache.lookup(key(0xAAAA, 0)), nullptr);
}

TEST(ResultCacheTest, OptionsAreSeparateEntries) {
  const auto g = ring(32);
  ResultCache cache(4);
  CacheKey nf = key(1, 0);
  CacheKey ds = key(1, 0);
  ds.options_key = cache_options_key("delta-stepping", 16, 0.0);
  cache.insert(nf, entry_for(g, 0));
  EXPECT_EQ(cache.lookup(ds), nullptr);
  EXPECT_NE(cache.lookup(nf), nullptr);
}

TEST(ResultCacheTest, InvalidateRemoves) {
  const auto g = ring(32);
  ResultCache cache(4);
  cache.insert(key(1, 0), entry_for(g, 0));
  cache.invalidate(key(1, 0));
  EXPECT_EQ(cache.lookup(key(1, 0)), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  cache.invalidate(key(1, 0));  // absent: a no-op, not a count
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  const auto g = ring(32);
  ResultCache cache(0);
  cache.insert(key(1, 0), entry_for(g, 0));
  EXPECT_EQ(cache.lookup(key(1, 0)), nullptr);
}

// The cache-poisoning drill: with serve.cache.flip armed, the stored
// copy has one finite distance bit-flipped while the producer-computed
// checksum is untouched — so the read side (certification or checksum
// comparison) must catch it. This is the in-vitro version of what the
// server's cache-hit path does in production.
TEST(ResultCacheTest, PoisonedInsertIsCaughtOnRead) {
  const auto g = ring(64);
  ResultCache cache(4);
  const auto clean = entry_for(g, 0);
  fault::FailpointRegistry::global().arm("serve.cache.flip");
  cache.insert(key(1, 0), clean);
  fault::FailpointRegistry::global().disarm_all();

  const auto poisoned = cache.lookup(key(1, 0));
  ASSERT_NE(poisoned, nullptr);
  // The caller's copy was not mutated — only the stored one.
  const verify::Certificate clean_cert = verify::certify(g, clean->result);
  EXPECT_TRUE(clean_cert.certified);
  // Certification catches the flip...
  const verify::Certificate cert = verify::certify(g, poisoned->result);
  EXPECT_FALSE(cert.certified) << cert.summary();
  // ...and so does the checksum comparison.
  const std::uint64_t read_checksum = graph::fnv1a64(
      poisoned->result.distances.data(),
      poisoned->result.distances.size() * sizeof(graph::Distance));
  EXPECT_NE(read_checksum, poisoned->dist_checksum);
}

// Byte bound (docs/ROBUSTNESS.md, "Resource budgets & exhaustion"):
// entry counts say nothing about V-sized payloads, so the cache also
// enforces a summed-bytes cap, evicting from the LRU tail.
TEST(ResultCacheTest, ByteBudgetEvictsFromTheTail) {
  const auto g = ring(64);
  // One ring-64 entry is ~64*12 payload bytes plus the struct; three
  // entries fit comfortably, five do not.
  const std::size_t one_entry =
      sizeof(CacheEntry) + 64 * (sizeof(graph::Distance) +
                                 sizeof(graph::VertexId));
  ResultCache cache(100, 3 * one_entry + one_entry / 2);
  for (graph::VertexId s = 0; s < 5; ++s)
    cache.insert(key(1, s), entry_for(g, s));
  const auto stats = cache.stats();
  EXPECT_LE(stats.bytes, 3 * one_entry + one_entry / 2);
  EXPECT_LT(stats.entries, 5u) << "byte bound never evicted";
  EXPECT_GT(stats.evictions, 0u);
  // Newest entries survive; the oldest were evicted.
  EXPECT_NE(cache.lookup(key(1, 4)), nullptr);
  EXPECT_EQ(cache.lookup(key(1, 0)), nullptr);
}

TEST(ResultCacheTest, BytesAccountingFollowsInsertAndInvalidate) {
  const auto g = ring(32);
  ResultCache cache(8, 1 << 20);
  EXPECT_EQ(cache.stats().bytes, 0u);
  cache.insert(key(1, 0), entry_for(g, 0));
  const std::size_t after_one = cache.stats().bytes;
  EXPECT_GT(after_one, 0u);
  cache.insert(key(1, 1), entry_for(g, 1));
  EXPECT_EQ(cache.stats().bytes, 2 * after_one);
  // Replacing an entry must not double-count it.
  cache.insert(key(1, 0), entry_for(g, 0));
  EXPECT_EQ(cache.stats().bytes, 2 * after_one);
  cache.invalidate(key(1, 0));
  cache.invalidate(key(1, 1));
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// Concurrent hits, inserts, and evictions on a small cache: entries are
// handed out as shared_ptr<const>, so readers must never race an
// eviction. Run under TSan in CI.
TEST(ResultCacheTest, ConcurrentHitInsertEvict) {
  const auto g = ring(32);
  ResultCache cache(4);
  std::vector<std::shared_ptr<CacheEntry>> entries;
  for (graph::VertexId s = 0; s < 8; ++s) entries.push_back(entry_for(g, s));

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &entries, t] {
      for (int i = 0; i < 400; ++i) {
        const auto s = static_cast<graph::VertexId>((i + t) % 8);
        if ((i + t) % 3 == 0) {
          cache.insert(key(1, s), entries[s]);
        } else if (const auto hit = cache.lookup(key(1, s)); hit != nullptr) {
          // Touch the payload: a use-after-evict would trip TSan/ASan.
          EXPECT_EQ(hit->result.distances[s], 0u);  // source's own distance
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.stats();
  EXPECT_LE(stats.entries, 4u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace sssp::serve
