// Descriptor hygiene (docs/ROBUSTNESS.md, "Resource budgets &
// exhaustion"): the serving stack must be fd-neutral — a full
// connect–query–drain cycle, repeated server lifecycles, and accept
// churn (including the injected EMFILE drill) must return
// /proc/self/fd to its starting population. A leaked descriptor per
// connection is how long-lived servers die of EMFILE in production.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "fault/failpoint.hpp"
#include "res/budget.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::serve {
namespace {

using algo::testing::random_graph;

int fd_count() { return res::ResourceBudget::open_fd_count(); }

TEST(FdHygieneTest, ConnectQueryDrainIsFdNeutral) {
  const auto g = random_graph(256, 4.0, 100, 1);
  const int before = fd_count();
  ASSERT_GT(before, 0);
  {
    Server server(g, {});
    server.start();
    const int listen_fd = listen_tcp(0);
    const std::uint16_t port = bound_port(listen_fd);

    // Server side of one connection, the way sssp_server wires it.
    std::thread acceptor([&] {
      const int conn = accept_conn(listen_fd);
      ASSERT_GE(conn, 0);
      std::string payload;
      while (read_frame(conn, payload))
        server.submit(payload, [conn](const Response& r) {
          try {
            write_frame(conn, format_response(r));
          } catch (const ServeError&) {
          }
        });
      ::close(conn);
    });

    const int client = connect_tcp(port);
    ASSERT_GE(client, 0);
    for (int i = 0; i < 3; ++i) {
      write_frame(client, "{\"id\":\"q" + std::to_string(i) +
                              "\",\"source\":" + std::to_string(i) + "}");
      std::string doc;
      ASSERT_TRUE(read_frame(client, doc));
      Response response;
      ASSERT_TRUE(parse_response(doc, response));
      EXPECT_EQ(response.status, Status::kOk);
    }
    ::shutdown(client, SHUT_WR);
    ::close(client);
    acceptor.join();
    ::close(listen_fd);
    server.drain();
  }
  EXPECT_EQ(fd_count(), before)
      << "connect-query-drain leaked file descriptors";
}

TEST(FdHygieneTest, RepeatedServerLifecyclesAreFdNeutral) {
  const auto g = random_graph(128, 4.0, 50, 2);
  const int before = fd_count();
  for (int cycle = 0; cycle < 3; ++cycle) {
    Server server(g, {});
    server.start();
    bool done = false;
    std::mutex mu;
    std::condition_variable cv;
    server.submit("{\"id\":\"x\",\"source\":0}", [&](const Response&) {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(20),
                            [&] { return done; }));
    lock.unlock();
    server.drain();
  }
  EXPECT_EQ(fd_count(), before) << "server lifecycle leaked descriptors";
}

TEST(FdHygieneTest, AcceptChurnWithEmfileDrillIsFdNeutral) {
  const int before = fd_count();
  const int listen_fd = listen_tcp(0);
  const std::uint16_t port = bound_port(listen_fd);

  // Churn: half the accepts are refused by the injected EMFILE drill
  // (every 2nd); both the refused and the served path must close
  // everything they opened.
  fault::FailpointRegistry::global().arm("serve.accept.emfile=2");
  std::thread acceptor([&] {
    for (int served = 0; served < 8;) {
      const int conn = accept_conn(listen_fd);
      if (conn < 0) continue;  // the drill refused this accept
      ::close(conn);
      ++served;
    }
  });
  for (int i = 0; i < 16; ++i) {
    const int client = connect_tcp(port);
    ASSERT_GE(client, 0);
    ::close(client);
  }
  acceptor.join();
  fault::FailpointRegistry::global().disarm_all();
  ::close(listen_fd);
  EXPECT_EQ(fd_count(), before) << "accept churn leaked descriptors";
}

}  // namespace
}  // namespace sssp::serve
