// Query-coalescing tests (docs/SERVING.md, "Query coalescing"): the
// worker that pops a batchable near-far query drains compatible queued
// queries into one batched run. The invariants under test:
//   - coalescing actually happens (stats().batches) and every ticket
//     still gets exactly one response with the right answer;
//   - incompatible queries are left in the queue and solved alone;
//   - a batch shed mid-drain loses no response sink — every member
//     gets a structured response, never silence.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "sssp/near_far.hpp"
#include "tests/sssp/test_graphs.hpp"

namespace sssp::serve {
namespace {

using algo::testing::random_graph;

struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Response> responses;

  Server::ResponseSink sink() {
    return [this](const Response& r) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(r);
      cv.notify_all();
    };
  }

  bool wait_for(std::size_t n, int timeout_ms = 20000) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return responses.size() >= n; });
  }
};

std::string query(const std::string& id, graph::VertexId source,
                  const std::string& extra = "") {
  return "{\"id\":\"" + id + "\",\"source\":" + std::to_string(source) +
         extra + "}";
}

// Queries submitted before start() pile up in the admission queue; the
// first worker to pop then drains the rest into one batched run.
TEST(BatchingTest, CompatibleQueuedQueriesCoalesceIntoOneRun) {
  const auto g = random_graph(2048, 5.0, 80, 3);
  ServerOptions options;
  options.workers = 1;
  options.batch_max = 8;
  Server server(g, options);
  Collector c;
  const std::vector<graph::VertexId> sources = {1, 7, 42, 99, 7};
  for (std::size_t i = 0; i < sources.size(); ++i)
    server.submit(query("q" + std::to_string(i), sources[i]), c.sink());
  server.start();
  ASSERT_TRUE(c.wait_for(sources.size()));
  server.drain();

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GE(stats.batched_queries, 2u);
  EXPECT_EQ(stats.responses, sources.size());

  // Every response is ok, certified, and distance-identical to a
  // single-source solve (checksum comparison via the duplicate source:
  // q1 and q4 both query source 7 and must agree byte-for-byte).
  std::lock_guard<std::mutex> lock(c.mu);
  ASSERT_EQ(c.responses.size(), sources.size());
  std::uint64_t checksum_q1 = 0, checksum_q4 = 0;
  for (const Response& r : c.responses) {
    EXPECT_EQ(r.status, Status::kOk) << r.id << ": " << r.error;
    EXPECT_TRUE(r.certified) << r.id;
    if (r.id == "q1") checksum_q1 = r.dist_checksum;
    if (r.id == "q4") checksum_q4 = r.dist_checksum;
  }
  EXPECT_NE(checksum_q1, 0u);
  EXPECT_EQ(checksum_q1, checksum_q4);
}

// Batched answers must byte-match the single-query path: the same
// source queried alone (fresh server, coalescing off) produces the
// same distance checksum.
TEST(BatchingTest, BatchedChecksumMatchesUnbatched) {
  const auto g = random_graph(1024, 4.0, 60, 9);

  ServerOptions solo_options;
  solo_options.batch_max = 1;  // coalescing off
  Server solo(g, solo_options);
  solo.start();
  Collector solo_c;
  solo.submit(query("s", 33), solo_c.sink());
  ASSERT_TRUE(solo_c.wait_for(1));
  solo.drain();
  ASSERT_EQ(solo.stats().batches, 0u);

  for (const char* strategy : {"fused", "independent"}) {
    ServerOptions options;
    options.workers = 1;
    options.batch_strategy = algo::parse_batch_strategy(strategy);
    Server server(g, options);
    Collector c;
    server.submit(query("a", 33), c.sink());
    server.submit(query("b", 500), c.sink());
    server.submit(query("c", 77), c.sink());
    server.start();
    ASSERT_TRUE(c.wait_for(3));
    server.drain();
    EXPECT_GE(server.stats().batches, 1u) << strategy;

    std::lock_guard<std::mutex> lock(c.mu);
    for (const Response& r : c.responses) {
      EXPECT_EQ(r.status, Status::kOk) << strategy << " " << r.id;
      if (r.id == "a") {
        EXPECT_EQ(r.dist_checksum, solo_c.responses[0].dist_checksum)
            << strategy;
      }
    }
  }
}

// Only compatible queries coalesce: a different delta or a different
// algorithm stays out of the batch but still gets served.
TEST(BatchingTest, IncompatibleQueriesAreServedSeparately) {
  const auto g = random_graph(1024, 4.0, 60, 5);
  ServerOptions options;
  options.workers = 1;
  Server server(g, options);
  Collector c;
  server.submit(query("nf1", 3), c.sink());
  server.submit(query("nf2", 9), c.sink());
  server.submit(query("dij", 3, ",\"algorithm\":\"dijkstra\""), c.sink());
  server.submit(query("wide", 9, ",\"delta\":5000"), c.sink());
  server.start();
  ASSERT_TRUE(c.wait_for(4));
  server.drain();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.responses, 4u);
  EXPECT_EQ(stats.completed, 4u);
  // The one possible batch is {nf1, nf2}; dij and wide never join it.
  EXPECT_LE(stats.batched_queries, 2u);

  std::lock_guard<std::mutex> lock(c.mu);
  for (const Response& r : c.responses)
    EXPECT_EQ(r.status, Status::kOk) << r.id << ": " << r.error;
}

// The drain-deadline invariant extended to batches: when a batched run
// is interrupted mid-flight by a zero-budget drain, every member of
// the batch still receives a structured response — no sink is lost.
TEST(BatchingTest, ShedMidDrainLosesNoResponseSink) {
  // Big enough that the batched near-far run is still in flight when
  // drain fires.
  const auto g = random_graph(200000, 8.0, 1000, 17);
  ServerOptions options;
  options.workers = 1;
  options.batch_max = 8;
  options.drain_ms = 0.0;  // shed immediately
  Server server(g, options);
  Collector c;
  const std::size_t n = 4;
  for (std::size_t i = 0; i < n; ++i)
    server.submit(query("q" + std::to_string(i),
                        static_cast<graph::VertexId>(i * 1000)),
                  c.sink());
  server.start();
  // Wait until the batch is actually executing, then pull the plug.
  while (server.stats().in_flight == 0 && server.stats().completed == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  server.drain();

  ASSERT_TRUE(c.wait_for(n, 1000));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.responses, n);
  EXPECT_EQ(stats.in_flight, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);

  std::lock_guard<std::mutex> lock(c.mu);
  ASSERT_EQ(c.responses.size(), n);
  std::vector<std::string> ids;
  for (const Response& r : c.responses) {
    ids.push_back(r.id);
    EXPECT_TRUE(r.status == Status::kOk ||
                r.status == Status::kShuttingDown)
        << r.id << ": " << to_string(r.status);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::string>{"q0", "q1", "q2", "q3"}));
}

// --sample-reports surfaces the full per-iteration arrays of the first
// N fresh solves in the final report.
TEST(BatchingTest, SampleReportsSurfaceIterationArrays) {
  const auto g = random_graph(1024, 4.0, 60, 7);
  ServerOptions options;
  options.workers = 1;
  options.sample_reports = 2;
  Server server(g, options);
  Collector c;
  server.submit(query("a", 3), c.sink());
  server.submit(query("b", 9), c.sink());
  server.submit(query("c", 21), c.sink());
  server.start();
  ASSERT_TRUE(c.wait_for(3));
  server.drain();

  std::ostringstream out;
  server.write_report(out);
  const std::string report = out.str();
  EXPECT_NE(report.find("\"sampled_reports\""), std::string::npos);
  EXPECT_NE(report.find("\"id\":\"a\""), std::string::npos);
  EXPECT_NE(report.find("\"x1\""), std::string::npos);
  EXPECT_NE(report.find("\"improving_relaxations\""), std::string::npos);
  // Capped at sample_reports = 2: the third query is not sampled.
  EXPECT_EQ(report.find("\"id\":\"c\""), std::string::npos);
}

}  // namespace
}  // namespace sssp::serve
