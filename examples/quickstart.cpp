// Quickstart: generate (or load) a weighted graph, run self-tuning SSSP
// at a parallelism set-point, verify against Dijkstra, and report the
// simulated time/power/energy on a Jetson TK1 device model.
//
//   ./quickstart                        # synthetic scale-free graph
//   ./quickstart --graph my.gr          # DIMACS .gr file
//   ./quickstart --set-point 50000      # choose the parallelism target
#include <cstdio>

#include "core/self_tuning.hpp"
#include "graph/dimacs.hpp"
#include "graph/degree_stats.hpp"
#include "graph/rmat.hpp"
#include "sim/run.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/result.hpp"
#include "util/flags.hpp"

using namespace sssp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("graph", "", "DIMACS .gr file (empty = synthetic R-MAT)");
  flags.define("source", "-1", "source vertex (-1 = max-degree vertex)");
  flags.define("set-point", "20000", "parallelism target P");
  flags.define("scale", "16", "R-MAT scale when generating (2^scale nodes)");
  if (flags.handle_help("tunesssp quickstart")) return 0;
  flags.check_unknown();

  // 1. Get a graph.
  graph::CsrGraph g;
  if (const std::string path = flags.get_string("graph"); !path.empty()) {
    g = graph::load_dimacs_file(path);
  } else {
    graph::RmatOptions options;
    options.scale = static_cast<unsigned>(flags.get_int("scale"));
    options.num_edges = (std::uint64_t{1} << options.scale) * 12;
    g = graph::generate_rmat(options);
  }
  std::printf("graph: %s\n",
              to_string(graph::compute_degree_stats(g)).c_str());

  // 2. Pick a source.
  const std::int64_t requested = flags.get_int("source");
  const graph::VertexId source =
      requested >= 0 ? static_cast<graph::VertexId>(requested)
                     : graph::max_degree_vertex(g);

  // 3. Run the self-tuning SSSP.
  core::SelfTuningOptions options;
  options.set_point = flags.get_double("set-point");
  const algo::SsspResult result = core::self_tuning_sssp(g, source, options);
  std::printf("self-tuning SSSP: source=%u reached=%zu iterations=%zu "
              "avg parallelism=%.0f (target P=%.0f)\n",
              source, result.reached_count(), result.num_iterations(),
              result.average_parallelism(), options.set_point);

  // 4. Verify exactness against Dijkstra.
  const auto reference = algo::dijkstra_distances(g, source);
  const std::size_t mismatches =
      algo::count_distance_mismatches(result.distances, reference);
  std::printf("verification vs Dijkstra: %s\n",
              mismatches == 0 ? "EXACT" : "MISMATCH!");

  // 5. Replay the run on the device model.
  const auto device = sim::DeviceSpec::jetson_tk1();
  const sim::DefaultGovernor governor;
  const auto report =
      sim::simulate_run(device, governor, result.to_workload("quickstart"));
  std::printf("simulated on %s: %.4f s, %.2f W avg (peak %.2f W), %.2f J\n",
              device.name.c_str(), report.total_seconds,
              report.average_power_w, report.peak_power_w,
              report.energy_joules);
  std::printf("controller overhead: %.1f us total (%.4f%% of runtime)\n",
              result.controller_seconds * 1e6,
              100.0 * result.controller_seconds / report.total_seconds);
  return mismatches == 0 ? 0 : 1;
}
