// Power capping: the paper's proposed extension (Section 5.2 / Figure 8
// discussion). Instead of choosing a parallelism set-point, the user
// gives a board power budget in watts; the library sweeps candidate
// set-points on the device model and picks the fastest one under the
// cap.
#include <cstdio>

#include "core/power_cap.hpp"
#include "core/power_feedback.hpp"
#include "graph/datasets.hpp"
#include "sim/device.hpp"
#include "sim/dvfs.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"

using namespace sssp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("budget", "7.5", "board power budget in watts");
  flags.define("dataset", "cal", "cal | wiki");
  flags.define("scale", "0.03", "dataset scale (1.0 = paper size)");
  flags.define("device", "tk1", "tk1 | tx1");
  if (flags.handle_help("choose a set-point that meets a power cap")) return 0;
  flags.check_unknown();

  const auto dataset = graph::parse_dataset(flags.get_string("dataset"));
  const auto g =
      graph::make_dataset(dataset, {.scale = flags.get_double("scale")});
  const auto source = graph::default_source(dataset, g);
  const auto device = flags.get_string("device") == "tx1"
                          ? sim::DeviceSpec::jetson_tx1()
                          : sim::DeviceSpec::jetson_tk1();
  const sim::DefaultGovernor governor;

  core::PowerCapOptions options;
  options.power_budget_w = flags.get_double("budget");

  std::printf("power cap %.2f W on %s, %s dataset (n=%zu, m=%zu)\n\n",
              options.power_budget_w, device.name.c_str(),
              graph::dataset_name(dataset).c_str(), g.num_vertices(),
              g.num_edges());

  const core::PowerCapResult result = core::choose_set_point_for_power_cap(
      g, source, device, governor, options);

  util::TextTable table;
  table.set_header({"set_point", "avg_power_w", "sim_seconds", "in_budget"});
  for (const auto& point : result.sweep) {
    table.add(point.set_point, point.average_power_w, point.simulated_seconds,
              point.within_budget ? "yes" : "no");
  }
  std::printf("%s\n", table.to_string().c_str());

  if (result.chosen_set_point > 0.0) {
    std::printf("chosen set-point: P = %.0f (fastest within budget)\n",
                result.chosen_set_point);
  } else {
    std::printf("no candidate met the budget; best effort: P = %.0f\n",
                result.best_effort_set_point);
  }

  // Mode 2 — closed-loop feedback (no sweep): adjust P online from the
  // simulated PowerMon signal, converging inside a single run.
  core::PowerFeedbackOptions feedback;
  feedback.power_budget_w = options.power_budget_w;
  const auto fb =
      core::power_feedback_sssp(g, source, device, governor, feedback);
  std::printf("\nclosed-loop feedback (single run, no sweep):\n"
              "  final P = %.0f, avg power %.2f W (budget %.2f W),\n"
              "  %.0f%% of iterations compliant, %.4f s simulated, %s\n",
              fb.set_point_trace.back(), fb.report.average_power_w,
              options.power_budget_w, 100.0 * fb.compliant_fraction,
              fb.report.total_seconds,
              fb.report.average_power_w <= options.power_budget_w * 1.05
                  ? "within budget"
                  : "over budget (graph cannot run cooler)");
  return 0;
}
