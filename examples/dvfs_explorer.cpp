// DVFS + set-point design-space explorer: sweeps every (core, mem)
// frequency pair crossed with a set-point grid, prints the Pareto front
// of (relative power -> speedup), and reports energy-delay metrics for
// the front — the full Figure 6/7 plane instead of the paper's sampled
// points, plus the race-to-halt view of each frontier configuration.
//
//   ./dvfs_explorer --dataset cal --scale 0.03 --device tx1
//   ./dvfs_explorer --device-file myboard.cfg
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/self_tuning.hpp"
#include "graph/datasets.hpp"
#include "sim/device_config.hpp"
#include "sim/energy_metrics.hpp"
#include "sim/power_model.hpp"
#include "sim/run.hpp"
#include "sssp/delta_sweep.hpp"
#include "sssp/near_far.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/pareto.hpp"

using namespace sssp;

namespace {

struct Candidate {
  std::string label;
  double seconds = 0.0;
  double power_w = 0.0;
  double energy_j = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("dataset", "cal", "cal | wiki");
  flags.define("scale", "0.03", "dataset scale (1.0 = paper size)");
  flags.define("device", "tk1", "tk1 | tx1 (ignored with --device-file)");
  flags.define("device-file", "", "custom device config (see sim/device_config.hpp)");
  flags.define("freq-stride", "4", "take every k-th entry of each frequency menu");
  if (flags.handle_help("explore the DVFS x set-point design space")) return 0;
  flags.check_unknown();

  const auto dataset = graph::parse_dataset(flags.get_string("dataset"));
  const auto g =
      graph::make_dataset(dataset, {.scale = flags.get_double("scale")});
  const auto source = graph::default_source(dataset, g);

  sim::DeviceSpec device;
  if (const auto path = flags.get_string("device-file"); !path.empty()) {
    device = sim::load_device_config_file(path);
  } else {
    device = flags.get_string("device") == "tx1"
                 ? sim::DeviceSpec::jetson_tx1()
                 : sim::DeviceSpec::jetson_tk1();
  }
  std::printf("device %s, %s dataset (n=%zu, m=%zu)\n", device.name.c_str(),
              graph::dataset_name(dataset).c_str(), g.num_vertices(),
              g.num_edges());

  // Algorithms: baseline at its time-minimizing delta + three set-points.
  const sim::DefaultGovernor governor;
  algo::DeltaSweepOptions sweep_options;
  sweep_options.min_delta = 16;
  sweep_options.max_delta = 1u << 20;
  const auto best_delta =
      algo::sweep_delta(g, source, device, governor, sweep_options).best_delta;
  std::vector<std::pair<std::string, algo::SsspResult>> runs;
  runs.emplace_back("near-far",
                    algo::near_far(g, source, {.delta = best_delta}));
  const double base_p = static_cast<double>(g.num_edges()) / 16.0;
  for (const double p : {base_p / 4.0, base_p, base_p * 4.0}) {
    core::SelfTuningOptions options;
    options.set_point = p;
    runs.emplace_back("tuned-P" + std::to_string(static_cast<long>(p)),
                      core::self_tuning_sssp(g, source, options));
  }

  // Frequency grid (strided menus) x algorithms.
  const auto stride = static_cast<std::size_t>(flags.get_int("freq-stride"));
  std::vector<Candidate> candidates;
  auto add_candidate = [&](const std::string& label,
                           const sim::DvfsPolicy& policy,
                           const algo::SsspResult& run) {
    const auto report = sim::simulate_run(device, policy, run.to_workload(""),
                                          {.keep_iteration_reports = false});
    candidates.push_back({label, report.total_seconds,
                          report.average_power_w, report.energy_joules});
  };
  for (const auto& [name, run] : runs)
    add_candidate(name + " @default", governor, run);
  for (std::size_t ci = 0; ci < device.core_freq_menu_mhz.size();
       ci += stride) {
    for (std::size_t mi = 0; mi < device.mem_freq_menu_mhz.size();
         mi += stride) {
      const sim::FrequencyPair pair{device.core_freq_menu_mhz[ci],
                                    device.mem_freq_menu_mhz[mi]};
      const sim::PinnedDvfs policy(pair);
      for (const auto& [name, run] : runs)
        add_candidate(name + " @" + pair.label(), policy, run);
    }
  }

  // Reference = baseline at default DVFS (first candidate).
  const Candidate& reference = candidates.front();
  std::vector<util::ParetoPoint> points;
  points.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    points.push_back({candidates[i].power_w / reference.power_w,
                      reference.seconds / candidates[i].seconds, i});
  }
  const auto front = pareto_front(points);

  std::printf("\n%zu configurations; Pareto front (rel power -> speedup):\n\n",
              candidates.size());
  util::TextTable table;
  table.set_header({"configuration", "speedup", "rel_power", "energy_J",
                    "EDP", "race_to_halt@2x"});
  for (const util::ParetoPoint& p : front) {
    const Candidate& c = candidates[p.tag];
    sim::RunReport report;
    report.total_seconds = c.seconds;
    report.average_power_w = c.power_w;
    report.energy_joules = c.energy_j;
    const auto metrics = sim::compute_energy_metrics(report);
    const auto race = sim::race_to_halt(
        report, sim::idle_power(device, device.min_frequencies()),
        2.0 * reference.seconds);
    table.add(c.label, p.value, p.cost, c.energy_j, metrics.edp,
              race.race_wins ? "race" : "stretch");
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%zu of %zu configurations are Pareto-optimal; every other\n"
              "point is dominated by one of the rows above.\n",
              front.size(), candidates.size());
  return 0;
}
