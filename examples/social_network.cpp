// Social/hyperlink network analysis: the paper's Wiki scenario. Runs
// weighted shortest paths from a hub on a scale-free R-MAT graph, shows
// the bursty parallelism profile of the baseline, and how the
// self-tuning controller reshapes it at different set-points — the
// Figure 1 experience as a library user sees it.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/self_tuning.hpp"
#include "graph/degree_stats.hpp"
#include "graph/rmat.hpp"
#include "sssp/near_far.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

using namespace sssp;

namespace {

// Crude terminal sparkline of the per-iteration X2 series.
void sparkline(const algo::SsspResult& result, double scale_max) {
  static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#", "@"};
  std::string line;
  const std::size_t stride =
      std::max<std::size_t>(1, result.num_iterations() / 60);
  for (std::size_t i = 0; i < result.num_iterations(); i += stride) {
    const double x = static_cast<double>(result.iterations[i].x2);
    const auto level = static_cast<std::size_t>(
        std::min(8.0, 8.0 * x / scale_max));
    line += levels[level];
  }
  std::printf("   [%s]\n", line.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("scale", "15", "R-MAT scale (2^scale vertices)");
  flags.define("edges-per-vertex", "12", "average out-degree");
  if (flags.handle_help("scale-free network parallelism profiles")) return 0;
  flags.check_unknown();

  graph::RmatOptions rmat;
  rmat.scale = static_cast<unsigned>(flags.get_int("scale"));
  rmat.num_edges = (std::uint64_t{1} << rmat.scale) *
                   static_cast<std::uint64_t>(flags.get_int("edges-per-vertex"));
  const graph::CsrGraph g = graph::generate_rmat(rmat);
  const graph::VertexId hub = graph::max_degree_vertex(g);
  std::printf("network: %s\n", to_string(graph::compute_degree_stats(g)).c_str());
  std::printf("source: hub vertex %u (degree %zu)\n\n", hub,
              g.out_degree(hub));

  // Baseline at a handful of static deltas: the burst problem.
  double global_max = 1.0;
  std::vector<std::pair<std::string, algo::SsspResult>> runs;
  for (const graph::Distance delta : {8u, 128u, 4096u}) {
    runs.emplace_back("near-far delta=" + std::to_string(delta),
                      algo::near_far(g, hub, {.delta = delta}));
  }
  for (const double p : {5000.0, 20000.0, 80000.0}) {
    core::SelfTuningOptions options;
    options.set_point = p;
    runs.emplace_back("self-tuning P=" + std::to_string(static_cast<int>(p)),
                      core::self_tuning_sssp(g, hub, options));
  }
  for (const auto& [label, result] : runs) {
    for (const auto& it : result.iterations)
      global_max = std::max(global_max, static_cast<double>(it.x2));
  }

  for (const auto& [label, result] : runs) {
    util::QuantileSummary q;
    for (const auto& it : result.iterations)
      q.add(static_cast<double>(it.x2));
    std::printf("%-28s iters=%4zu  med=%8.0f  p95=%8.0f  max=%8.0f\n",
                label.c_str(), result.num_iterations(), q.median(),
                q.quantile(0.95), q.max());
    sparkline(result, global_max);
  }
  std::printf("\nEach bar charts available parallelism (X2) over iterations\n"
              "on a shared scale; self-tuning trades the baseline's bursts\n"
              "for a steady band at the chosen set-point.\n");
  return 0;
}
