// Road navigation: the paper's Cal scenario. Computes travel times from
// a depot over a synthetic road network with four algorithms (Dijkstra,
// Bellman-Ford, classic delta-stepping, static near-far, self-tuning)
// and compares work efficiency plus simulated time/energy on the TK1.
//
// Demonstrates why SSSP on road networks is the hard case for GPU
// parallelism: the wavefront is narrow for thousands of iterations.
#include <cstdio>

#include "core/self_tuning.hpp"
#include "graph/degree_stats.hpp"
#include "graph/road.hpp"
#include "sim/run.hpp"
#include "sssp/bellman_ford.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/near_far.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"

using namespace sssp;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  flags.define("side", "320", "road grid side length (side^2 intersections)");
  flags.define("set-point", "6000", "parallelism target for self-tuning");
  flags.define("delta", "0", "static near-far delta (0 = mean edge weight)");
  if (flags.handle_help("road network navigation comparison")) return 0;
  flags.check_unknown();

  graph::RoadOptions road;
  road.rows = static_cast<std::uint32_t>(flags.get_int("side"));
  road.cols = road.rows;
  const graph::CsrGraph g = graph::generate_road(road);
  const auto depot = static_cast<graph::VertexId>(g.num_vertices() / 2);
  std::printf("road network: %s\n",
              to_string(graph::compute_degree_stats(g)).c_str());

  const auto device = sim::DeviceSpec::jetson_tk1();
  const sim::DefaultGovernor governor;

  const auto reference = algo::dijkstra(g, depot);

  util::TextTable table;
  table.set_header({"algorithm", "exact", "iterations", "avg_par",
                    "improving_relax", "sim_seconds", "energy_J"});

  auto report_row = [&](const algo::SsspResult& result) {
    const bool exact = algo::count_distance_mismatches(
                           result.distances, reference.distances) == 0;
    if (result.iterations.empty()) {
      table.add(result.algorithm, exact ? "yes" : "NO", "-", "-",
                result.improving_relaxations, "-", "-");
      return;
    }
    const auto sim_report = sim::simulate_run(
        device, governor, result.to_workload("road"), {.keep_iteration_reports = false});
    table.add(result.algorithm, exact ? "yes" : "NO",
              result.num_iterations(), result.average_parallelism(),
              result.improving_relaxations, sim_report.total_seconds,
              sim_report.energy_joules);
  };

  report_row(reference);
  report_row(algo::bellman_ford(g, depot));
  report_row(algo::delta_stepping(g, depot));
  report_row(algo::near_far(
      g, depot,
      {.delta = static_cast<graph::Distance>(flags.get_int("delta"))}));

  core::SelfTuningOptions tuning;
  tuning.set_point = flags.get_double("set-point");
  report_row(core::self_tuning_sssp(g, depot, tuning));

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("note: Dijkstra/Bellman-Ford rows have no device timing —\n"
              "Dijkstra is inherently serial, and Bellman-Ford's frontier\n"
              "rounds map to the device model only loosely.\n");
  return 0;
}
