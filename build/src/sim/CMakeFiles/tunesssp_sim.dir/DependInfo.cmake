
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/tunesssp_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/tunesssp_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/tunesssp_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/tunesssp_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/device_config.cpp" "src/sim/CMakeFiles/tunesssp_sim.dir/device_config.cpp.o" "gcc" "src/sim/CMakeFiles/tunesssp_sim.dir/device_config.cpp.o.d"
  "/root/repo/src/sim/dvfs.cpp" "src/sim/CMakeFiles/tunesssp_sim.dir/dvfs.cpp.o" "gcc" "src/sim/CMakeFiles/tunesssp_sim.dir/dvfs.cpp.o.d"
  "/root/repo/src/sim/energy_metrics.cpp" "src/sim/CMakeFiles/tunesssp_sim.dir/energy_metrics.cpp.o" "gcc" "src/sim/CMakeFiles/tunesssp_sim.dir/energy_metrics.cpp.o.d"
  "/root/repo/src/sim/power_model.cpp" "src/sim/CMakeFiles/tunesssp_sim.dir/power_model.cpp.o" "gcc" "src/sim/CMakeFiles/tunesssp_sim.dir/power_model.cpp.o.d"
  "/root/repo/src/sim/powermon.cpp" "src/sim/CMakeFiles/tunesssp_sim.dir/powermon.cpp.o" "gcc" "src/sim/CMakeFiles/tunesssp_sim.dir/powermon.cpp.o.d"
  "/root/repo/src/sim/run.cpp" "src/sim/CMakeFiles/tunesssp_sim.dir/run.cpp.o" "gcc" "src/sim/CMakeFiles/tunesssp_sim.dir/run.cpp.o.d"
  "/root/repo/src/sim/trace_io.cpp" "src/sim/CMakeFiles/tunesssp_sim.dir/trace_io.cpp.o" "gcc" "src/sim/CMakeFiles/tunesssp_sim.dir/trace_io.cpp.o.d"
  "/root/repo/src/sim/workload_io.cpp" "src/sim/CMakeFiles/tunesssp_sim.dir/workload_io.cpp.o" "gcc" "src/sim/CMakeFiles/tunesssp_sim.dir/workload_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tunesssp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
