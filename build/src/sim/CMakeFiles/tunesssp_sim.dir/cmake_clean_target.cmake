file(REMOVE_RECURSE
  "libtunesssp_sim.a"
)
