# Empty dependencies file for tunesssp_sim.
# This may be replaced when dependencies are built.
