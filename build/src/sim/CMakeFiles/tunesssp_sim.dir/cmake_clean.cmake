file(REMOVE_RECURSE
  "CMakeFiles/tunesssp_sim.dir/cost_model.cpp.o"
  "CMakeFiles/tunesssp_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/tunesssp_sim.dir/device.cpp.o"
  "CMakeFiles/tunesssp_sim.dir/device.cpp.o.d"
  "CMakeFiles/tunesssp_sim.dir/device_config.cpp.o"
  "CMakeFiles/tunesssp_sim.dir/device_config.cpp.o.d"
  "CMakeFiles/tunesssp_sim.dir/dvfs.cpp.o"
  "CMakeFiles/tunesssp_sim.dir/dvfs.cpp.o.d"
  "CMakeFiles/tunesssp_sim.dir/energy_metrics.cpp.o"
  "CMakeFiles/tunesssp_sim.dir/energy_metrics.cpp.o.d"
  "CMakeFiles/tunesssp_sim.dir/power_model.cpp.o"
  "CMakeFiles/tunesssp_sim.dir/power_model.cpp.o.d"
  "CMakeFiles/tunesssp_sim.dir/powermon.cpp.o"
  "CMakeFiles/tunesssp_sim.dir/powermon.cpp.o.d"
  "CMakeFiles/tunesssp_sim.dir/run.cpp.o"
  "CMakeFiles/tunesssp_sim.dir/run.cpp.o.d"
  "CMakeFiles/tunesssp_sim.dir/trace_io.cpp.o"
  "CMakeFiles/tunesssp_sim.dir/trace_io.cpp.o.d"
  "CMakeFiles/tunesssp_sim.dir/workload_io.cpp.o"
  "CMakeFiles/tunesssp_sim.dir/workload_io.cpp.o.d"
  "libtunesssp_sim.a"
  "libtunesssp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunesssp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
