file(REMOVE_RECURSE
  "CMakeFiles/tunesssp_util.dir/csv.cpp.o"
  "CMakeFiles/tunesssp_util.dir/csv.cpp.o.d"
  "CMakeFiles/tunesssp_util.dir/flags.cpp.o"
  "CMakeFiles/tunesssp_util.dir/flags.cpp.o.d"
  "CMakeFiles/tunesssp_util.dir/log.cpp.o"
  "CMakeFiles/tunesssp_util.dir/log.cpp.o.d"
  "CMakeFiles/tunesssp_util.dir/stats.cpp.o"
  "CMakeFiles/tunesssp_util.dir/stats.cpp.o.d"
  "CMakeFiles/tunesssp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/tunesssp_util.dir/thread_pool.cpp.o.d"
  "libtunesssp_util.a"
  "libtunesssp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunesssp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
