file(REMOVE_RECURSE
  "libtunesssp_util.a"
)
