# Empty dependencies file for tunesssp_util.
# This may be replaced when dependencies are built.
