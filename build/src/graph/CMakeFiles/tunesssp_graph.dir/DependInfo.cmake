
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/binary_io.cpp" "src/graph/CMakeFiles/tunesssp_graph.dir/binary_io.cpp.o" "gcc" "src/graph/CMakeFiles/tunesssp_graph.dir/binary_io.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/graph/CMakeFiles/tunesssp_graph.dir/builder.cpp.o" "gcc" "src/graph/CMakeFiles/tunesssp_graph.dir/builder.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/graph/CMakeFiles/tunesssp_graph.dir/components.cpp.o" "gcc" "src/graph/CMakeFiles/tunesssp_graph.dir/components.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/graph/CMakeFiles/tunesssp_graph.dir/csr.cpp.o" "gcc" "src/graph/CMakeFiles/tunesssp_graph.dir/csr.cpp.o.d"
  "/root/repo/src/graph/datasets.cpp" "src/graph/CMakeFiles/tunesssp_graph.dir/datasets.cpp.o" "gcc" "src/graph/CMakeFiles/tunesssp_graph.dir/datasets.cpp.o.d"
  "/root/repo/src/graph/degree_stats.cpp" "src/graph/CMakeFiles/tunesssp_graph.dir/degree_stats.cpp.o" "gcc" "src/graph/CMakeFiles/tunesssp_graph.dir/degree_stats.cpp.o.d"
  "/root/repo/src/graph/dimacs.cpp" "src/graph/CMakeFiles/tunesssp_graph.dir/dimacs.cpp.o" "gcc" "src/graph/CMakeFiles/tunesssp_graph.dir/dimacs.cpp.o.d"
  "/root/repo/src/graph/edge_list.cpp" "src/graph/CMakeFiles/tunesssp_graph.dir/edge_list.cpp.o" "gcc" "src/graph/CMakeFiles/tunesssp_graph.dir/edge_list.cpp.o.d"
  "/root/repo/src/graph/matrix_market.cpp" "src/graph/CMakeFiles/tunesssp_graph.dir/matrix_market.cpp.o" "gcc" "src/graph/CMakeFiles/tunesssp_graph.dir/matrix_market.cpp.o.d"
  "/root/repo/src/graph/rmat.cpp" "src/graph/CMakeFiles/tunesssp_graph.dir/rmat.cpp.o" "gcc" "src/graph/CMakeFiles/tunesssp_graph.dir/rmat.cpp.o.d"
  "/root/repo/src/graph/road.cpp" "src/graph/CMakeFiles/tunesssp_graph.dir/road.cpp.o" "gcc" "src/graph/CMakeFiles/tunesssp_graph.dir/road.cpp.o.d"
  "/root/repo/src/graph/weights.cpp" "src/graph/CMakeFiles/tunesssp_graph.dir/weights.cpp.o" "gcc" "src/graph/CMakeFiles/tunesssp_graph.dir/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tunesssp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
