file(REMOVE_RECURSE
  "CMakeFiles/tunesssp_graph.dir/binary_io.cpp.o"
  "CMakeFiles/tunesssp_graph.dir/binary_io.cpp.o.d"
  "CMakeFiles/tunesssp_graph.dir/builder.cpp.o"
  "CMakeFiles/tunesssp_graph.dir/builder.cpp.o.d"
  "CMakeFiles/tunesssp_graph.dir/components.cpp.o"
  "CMakeFiles/tunesssp_graph.dir/components.cpp.o.d"
  "CMakeFiles/tunesssp_graph.dir/csr.cpp.o"
  "CMakeFiles/tunesssp_graph.dir/csr.cpp.o.d"
  "CMakeFiles/tunesssp_graph.dir/datasets.cpp.o"
  "CMakeFiles/tunesssp_graph.dir/datasets.cpp.o.d"
  "CMakeFiles/tunesssp_graph.dir/degree_stats.cpp.o"
  "CMakeFiles/tunesssp_graph.dir/degree_stats.cpp.o.d"
  "CMakeFiles/tunesssp_graph.dir/dimacs.cpp.o"
  "CMakeFiles/tunesssp_graph.dir/dimacs.cpp.o.d"
  "CMakeFiles/tunesssp_graph.dir/edge_list.cpp.o"
  "CMakeFiles/tunesssp_graph.dir/edge_list.cpp.o.d"
  "CMakeFiles/tunesssp_graph.dir/matrix_market.cpp.o"
  "CMakeFiles/tunesssp_graph.dir/matrix_market.cpp.o.d"
  "CMakeFiles/tunesssp_graph.dir/rmat.cpp.o"
  "CMakeFiles/tunesssp_graph.dir/rmat.cpp.o.d"
  "CMakeFiles/tunesssp_graph.dir/road.cpp.o"
  "CMakeFiles/tunesssp_graph.dir/road.cpp.o.d"
  "CMakeFiles/tunesssp_graph.dir/weights.cpp.o"
  "CMakeFiles/tunesssp_graph.dir/weights.cpp.o.d"
  "libtunesssp_graph.a"
  "libtunesssp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunesssp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
