# Empty compiler generated dependencies file for tunesssp_graph.
# This may be replaced when dependencies are built.
