file(REMOVE_RECURSE
  "libtunesssp_graph.a"
)
