# Empty dependencies file for tunesssp_core.
# This may be replaced when dependencies are built.
