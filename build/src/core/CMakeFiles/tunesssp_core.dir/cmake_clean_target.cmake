file(REMOVE_RECURSE
  "libtunesssp_core.a"
)
