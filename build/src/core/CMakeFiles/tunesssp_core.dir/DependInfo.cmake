
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_sgd.cpp" "src/core/CMakeFiles/tunesssp_core.dir/adaptive_sgd.cpp.o" "gcc" "src/core/CMakeFiles/tunesssp_core.dir/adaptive_sgd.cpp.o.d"
  "/root/repo/src/core/advance_model.cpp" "src/core/CMakeFiles/tunesssp_core.dir/advance_model.cpp.o" "gcc" "src/core/CMakeFiles/tunesssp_core.dir/advance_model.cpp.o.d"
  "/root/repo/src/core/bisect_model.cpp" "src/core/CMakeFiles/tunesssp_core.dir/bisect_model.cpp.o" "gcc" "src/core/CMakeFiles/tunesssp_core.dir/bisect_model.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/tunesssp_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/tunesssp_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/partitioned_far_queue.cpp" "src/core/CMakeFiles/tunesssp_core.dir/partitioned_far_queue.cpp.o" "gcc" "src/core/CMakeFiles/tunesssp_core.dir/partitioned_far_queue.cpp.o.d"
  "/root/repo/src/core/power_cap.cpp" "src/core/CMakeFiles/tunesssp_core.dir/power_cap.cpp.o" "gcc" "src/core/CMakeFiles/tunesssp_core.dir/power_cap.cpp.o.d"
  "/root/repo/src/core/power_feedback.cpp" "src/core/CMakeFiles/tunesssp_core.dir/power_feedback.cpp.o" "gcc" "src/core/CMakeFiles/tunesssp_core.dir/power_feedback.cpp.o.d"
  "/root/repo/src/core/self_tuning.cpp" "src/core/CMakeFiles/tunesssp_core.dir/self_tuning.cpp.o" "gcc" "src/core/CMakeFiles/tunesssp_core.dir/self_tuning.cpp.o.d"
  "/root/repo/src/core/tunable_bfs.cpp" "src/core/CMakeFiles/tunesssp_core.dir/tunable_bfs.cpp.o" "gcc" "src/core/CMakeFiles/tunesssp_core.dir/tunable_bfs.cpp.o.d"
  "/root/repo/src/core/tunable_pagerank.cpp" "src/core/CMakeFiles/tunesssp_core.dir/tunable_pagerank.cpp.o" "gcc" "src/core/CMakeFiles/tunesssp_core.dir/tunable_pagerank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontier/CMakeFiles/tunesssp_frontier.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tunesssp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tunesssp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sssp/CMakeFiles/tunesssp_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tunesssp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
