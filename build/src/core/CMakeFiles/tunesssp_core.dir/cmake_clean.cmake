file(REMOVE_RECURSE
  "CMakeFiles/tunesssp_core.dir/adaptive_sgd.cpp.o"
  "CMakeFiles/tunesssp_core.dir/adaptive_sgd.cpp.o.d"
  "CMakeFiles/tunesssp_core.dir/advance_model.cpp.o"
  "CMakeFiles/tunesssp_core.dir/advance_model.cpp.o.d"
  "CMakeFiles/tunesssp_core.dir/bisect_model.cpp.o"
  "CMakeFiles/tunesssp_core.dir/bisect_model.cpp.o.d"
  "CMakeFiles/tunesssp_core.dir/controller.cpp.o"
  "CMakeFiles/tunesssp_core.dir/controller.cpp.o.d"
  "CMakeFiles/tunesssp_core.dir/partitioned_far_queue.cpp.o"
  "CMakeFiles/tunesssp_core.dir/partitioned_far_queue.cpp.o.d"
  "CMakeFiles/tunesssp_core.dir/power_cap.cpp.o"
  "CMakeFiles/tunesssp_core.dir/power_cap.cpp.o.d"
  "CMakeFiles/tunesssp_core.dir/power_feedback.cpp.o"
  "CMakeFiles/tunesssp_core.dir/power_feedback.cpp.o.d"
  "CMakeFiles/tunesssp_core.dir/self_tuning.cpp.o"
  "CMakeFiles/tunesssp_core.dir/self_tuning.cpp.o.d"
  "CMakeFiles/tunesssp_core.dir/tunable_bfs.cpp.o"
  "CMakeFiles/tunesssp_core.dir/tunable_bfs.cpp.o.d"
  "CMakeFiles/tunesssp_core.dir/tunable_pagerank.cpp.o"
  "CMakeFiles/tunesssp_core.dir/tunable_pagerank.cpp.o.d"
  "libtunesssp_core.a"
  "libtunesssp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunesssp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
