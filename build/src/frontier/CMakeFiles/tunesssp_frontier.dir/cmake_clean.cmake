file(REMOVE_RECURSE
  "CMakeFiles/tunesssp_frontier.dir/engine.cpp.o"
  "CMakeFiles/tunesssp_frontier.dir/engine.cpp.o.d"
  "CMakeFiles/tunesssp_frontier.dir/far_queue.cpp.o"
  "CMakeFiles/tunesssp_frontier.dir/far_queue.cpp.o.d"
  "libtunesssp_frontier.a"
  "libtunesssp_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunesssp_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
