file(REMOVE_RECURSE
  "libtunesssp_frontier.a"
)
