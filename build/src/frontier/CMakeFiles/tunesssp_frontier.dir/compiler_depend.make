# Empty compiler generated dependencies file for tunesssp_frontier.
# This may be replaced when dependencies are built.
