
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontier/engine.cpp" "src/frontier/CMakeFiles/tunesssp_frontier.dir/engine.cpp.o" "gcc" "src/frontier/CMakeFiles/tunesssp_frontier.dir/engine.cpp.o.d"
  "/root/repo/src/frontier/far_queue.cpp" "src/frontier/CMakeFiles/tunesssp_frontier.dir/far_queue.cpp.o" "gcc" "src/frontier/CMakeFiles/tunesssp_frontier.dir/far_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tunesssp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tunesssp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tunesssp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
