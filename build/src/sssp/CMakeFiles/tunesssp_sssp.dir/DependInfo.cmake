
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sssp/bellman_ford.cpp" "src/sssp/CMakeFiles/tunesssp_sssp.dir/bellman_ford.cpp.o" "gcc" "src/sssp/CMakeFiles/tunesssp_sssp.dir/bellman_ford.cpp.o.d"
  "/root/repo/src/sssp/delta_stepping.cpp" "src/sssp/CMakeFiles/tunesssp_sssp.dir/delta_stepping.cpp.o" "gcc" "src/sssp/CMakeFiles/tunesssp_sssp.dir/delta_stepping.cpp.o.d"
  "/root/repo/src/sssp/delta_sweep.cpp" "src/sssp/CMakeFiles/tunesssp_sssp.dir/delta_sweep.cpp.o" "gcc" "src/sssp/CMakeFiles/tunesssp_sssp.dir/delta_sweep.cpp.o.d"
  "/root/repo/src/sssp/dijkstra.cpp" "src/sssp/CMakeFiles/tunesssp_sssp.dir/dijkstra.cpp.o" "gcc" "src/sssp/CMakeFiles/tunesssp_sssp.dir/dijkstra.cpp.o.d"
  "/root/repo/src/sssp/multi_source.cpp" "src/sssp/CMakeFiles/tunesssp_sssp.dir/multi_source.cpp.o" "gcc" "src/sssp/CMakeFiles/tunesssp_sssp.dir/multi_source.cpp.o.d"
  "/root/repo/src/sssp/near_far.cpp" "src/sssp/CMakeFiles/tunesssp_sssp.dir/near_far.cpp.o" "gcc" "src/sssp/CMakeFiles/tunesssp_sssp.dir/near_far.cpp.o.d"
  "/root/repo/src/sssp/result.cpp" "src/sssp/CMakeFiles/tunesssp_sssp.dir/result.cpp.o" "gcc" "src/sssp/CMakeFiles/tunesssp_sssp.dir/result.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontier/CMakeFiles/tunesssp_frontier.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tunesssp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tunesssp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tunesssp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
