# Empty dependencies file for tunesssp_sssp.
# This may be replaced when dependencies are built.
