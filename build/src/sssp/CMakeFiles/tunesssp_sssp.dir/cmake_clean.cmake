file(REMOVE_RECURSE
  "CMakeFiles/tunesssp_sssp.dir/bellman_ford.cpp.o"
  "CMakeFiles/tunesssp_sssp.dir/bellman_ford.cpp.o.d"
  "CMakeFiles/tunesssp_sssp.dir/delta_stepping.cpp.o"
  "CMakeFiles/tunesssp_sssp.dir/delta_stepping.cpp.o.d"
  "CMakeFiles/tunesssp_sssp.dir/delta_sweep.cpp.o"
  "CMakeFiles/tunesssp_sssp.dir/delta_sweep.cpp.o.d"
  "CMakeFiles/tunesssp_sssp.dir/dijkstra.cpp.o"
  "CMakeFiles/tunesssp_sssp.dir/dijkstra.cpp.o.d"
  "CMakeFiles/tunesssp_sssp.dir/multi_source.cpp.o"
  "CMakeFiles/tunesssp_sssp.dir/multi_source.cpp.o.d"
  "CMakeFiles/tunesssp_sssp.dir/near_far.cpp.o"
  "CMakeFiles/tunesssp_sssp.dir/near_far.cpp.o.d"
  "CMakeFiles/tunesssp_sssp.dir/result.cpp.o"
  "CMakeFiles/tunesssp_sssp.dir/result.cpp.o.d"
  "libtunesssp_sssp.a"
  "libtunesssp_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunesssp_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
