file(REMOVE_RECURSE
  "libtunesssp_sssp.a"
)
