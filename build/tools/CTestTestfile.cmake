# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_graph_generate "/root/repo/build/tools/graph_tool" "generate" "--dataset" "wiki" "--scale" "0.002" "--out" "/root/repo/build/tools/smoke.bin")
set_tests_properties(tool_graph_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sssp_run "/root/repo/build/tools/sssp_tool" "--in" "/root/repo/build/tools/smoke.bin" "--set-point" "1000" "--workload-csv" "/root/repo/build/tools/smoke_wl.csv")
set_tests_properties(tool_sssp_run PROPERTIES  DEPENDS "tool_graph_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_replay "/root/repo/build/tools/replay_tool" "--workload" "/root/repo/build/tools/smoke_wl.csv" "--freq-stride" "8")
set_tests_properties(tool_replay PROPERTIES  DEPENDS "tool_sssp_run" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
