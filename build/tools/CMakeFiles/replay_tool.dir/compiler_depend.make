# Empty compiler generated dependencies file for replay_tool.
# This may be replaced when dependencies are built.
