file(REMOVE_RECURSE
  "CMakeFiles/replay_tool.dir/replay_tool.cpp.o"
  "CMakeFiles/replay_tool.dir/replay_tool.cpp.o.d"
  "replay_tool"
  "replay_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
