file(REMOVE_RECURSE
  "CMakeFiles/sssp_tool.dir/sssp_tool.cpp.o"
  "CMakeFiles/sssp_tool.dir/sssp_tool.cpp.o.d"
  "sssp_tool"
  "sssp_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
