# Empty dependencies file for sssp_tool.
# This may be replaced when dependencies are built.
