# Empty dependencies file for graph_tool.
# This may be replaced when dependencies are built.
