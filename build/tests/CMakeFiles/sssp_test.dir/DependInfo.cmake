
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sssp/bellman_ford_test.cpp" "tests/CMakeFiles/sssp_test.dir/sssp/bellman_ford_test.cpp.o" "gcc" "tests/CMakeFiles/sssp_test.dir/sssp/bellman_ford_test.cpp.o.d"
  "/root/repo/tests/sssp/delta_stepping_test.cpp" "tests/CMakeFiles/sssp_test.dir/sssp/delta_stepping_test.cpp.o" "gcc" "tests/CMakeFiles/sssp_test.dir/sssp/delta_stepping_test.cpp.o.d"
  "/root/repo/tests/sssp/delta_sweep_test.cpp" "tests/CMakeFiles/sssp_test.dir/sssp/delta_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/sssp_test.dir/sssp/delta_sweep_test.cpp.o.d"
  "/root/repo/tests/sssp/dijkstra_test.cpp" "tests/CMakeFiles/sssp_test.dir/sssp/dijkstra_test.cpp.o" "gcc" "tests/CMakeFiles/sssp_test.dir/sssp/dijkstra_test.cpp.o.d"
  "/root/repo/tests/sssp/multi_source_test.cpp" "tests/CMakeFiles/sssp_test.dir/sssp/multi_source_test.cpp.o" "gcc" "tests/CMakeFiles/sssp_test.dir/sssp/multi_source_test.cpp.o.d"
  "/root/repo/tests/sssp/near_far_test.cpp" "tests/CMakeFiles/sssp_test.dir/sssp/near_far_test.cpp.o" "gcc" "tests/CMakeFiles/sssp_test.dir/sssp/near_far_test.cpp.o.d"
  "/root/repo/tests/sssp/paths_test.cpp" "tests/CMakeFiles/sssp_test.dir/sssp/paths_test.cpp.o" "gcc" "tests/CMakeFiles/sssp_test.dir/sssp/paths_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tunesssp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sssp/CMakeFiles/tunesssp_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/frontier/CMakeFiles/tunesssp_frontier.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tunesssp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tunesssp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tunesssp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
