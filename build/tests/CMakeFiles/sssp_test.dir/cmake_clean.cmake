file(REMOVE_RECURSE
  "CMakeFiles/sssp_test.dir/sssp/bellman_ford_test.cpp.o"
  "CMakeFiles/sssp_test.dir/sssp/bellman_ford_test.cpp.o.d"
  "CMakeFiles/sssp_test.dir/sssp/delta_stepping_test.cpp.o"
  "CMakeFiles/sssp_test.dir/sssp/delta_stepping_test.cpp.o.d"
  "CMakeFiles/sssp_test.dir/sssp/delta_sweep_test.cpp.o"
  "CMakeFiles/sssp_test.dir/sssp/delta_sweep_test.cpp.o.d"
  "CMakeFiles/sssp_test.dir/sssp/dijkstra_test.cpp.o"
  "CMakeFiles/sssp_test.dir/sssp/dijkstra_test.cpp.o.d"
  "CMakeFiles/sssp_test.dir/sssp/multi_source_test.cpp.o"
  "CMakeFiles/sssp_test.dir/sssp/multi_source_test.cpp.o.d"
  "CMakeFiles/sssp_test.dir/sssp/near_far_test.cpp.o"
  "CMakeFiles/sssp_test.dir/sssp/near_far_test.cpp.o.d"
  "CMakeFiles/sssp_test.dir/sssp/paths_test.cpp.o"
  "CMakeFiles/sssp_test.dir/sssp/paths_test.cpp.o.d"
  "sssp_test"
  "sssp_test.pdb"
  "sssp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
