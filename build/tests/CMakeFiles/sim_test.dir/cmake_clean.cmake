file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/sim/cost_model_property_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/cost_model_property_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/cost_model_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/cost_model_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/device_config_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/device_config_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/device_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/device_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/dvfs_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/dvfs_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/energy_metrics_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/energy_metrics_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/power_model_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/power_model_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/powermon_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/powermon_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/run_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/run_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/trace_io_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/trace_io_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/workload_io_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/workload_io_test.cpp.o.d"
  "sim_test"
  "sim_test.pdb"
  "sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
