
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/cost_model_property_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/cost_model_property_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/cost_model_property_test.cpp.o.d"
  "/root/repo/tests/sim/cost_model_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/cost_model_test.cpp.o.d"
  "/root/repo/tests/sim/device_config_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/device_config_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/device_config_test.cpp.o.d"
  "/root/repo/tests/sim/device_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/device_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/device_test.cpp.o.d"
  "/root/repo/tests/sim/dvfs_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/dvfs_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/dvfs_test.cpp.o.d"
  "/root/repo/tests/sim/energy_metrics_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/energy_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/energy_metrics_test.cpp.o.d"
  "/root/repo/tests/sim/power_model_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/power_model_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/power_model_test.cpp.o.d"
  "/root/repo/tests/sim/powermon_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/powermon_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/powermon_test.cpp.o.d"
  "/root/repo/tests/sim/run_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/run_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/run_test.cpp.o.d"
  "/root/repo/tests/sim/trace_io_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/trace_io_test.cpp.o.d"
  "/root/repo/tests/sim/workload_io_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/workload_io_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/workload_io_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tunesssp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tunesssp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
