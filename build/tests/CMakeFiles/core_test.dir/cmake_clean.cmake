file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/adaptive_sgd_test.cpp.o"
  "CMakeFiles/core_test.dir/core/adaptive_sgd_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/controller_property_test.cpp.o"
  "CMakeFiles/core_test.dir/core/controller_property_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/controller_test.cpp.o"
  "CMakeFiles/core_test.dir/core/controller_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/models_test.cpp.o"
  "CMakeFiles/core_test.dir/core/models_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/partitioned_far_queue_test.cpp.o"
  "CMakeFiles/core_test.dir/core/partitioned_far_queue_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/power_cap_test.cpp.o"
  "CMakeFiles/core_test.dir/core/power_cap_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/power_feedback_property_test.cpp.o"
  "CMakeFiles/core_test.dir/core/power_feedback_property_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/power_feedback_test.cpp.o"
  "CMakeFiles/core_test.dir/core/power_feedback_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/self_tuning_test.cpp.o"
  "CMakeFiles/core_test.dir/core/self_tuning_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/tunable_bfs_test.cpp.o"
  "CMakeFiles/core_test.dir/core/tunable_bfs_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/tunable_pagerank_test.cpp.o"
  "CMakeFiles/core_test.dir/core/tunable_pagerank_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
