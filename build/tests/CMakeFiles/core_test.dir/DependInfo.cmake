
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/adaptive_sgd_test.cpp" "tests/CMakeFiles/core_test.dir/core/adaptive_sgd_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/adaptive_sgd_test.cpp.o.d"
  "/root/repo/tests/core/controller_property_test.cpp" "tests/CMakeFiles/core_test.dir/core/controller_property_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/controller_property_test.cpp.o.d"
  "/root/repo/tests/core/controller_test.cpp" "tests/CMakeFiles/core_test.dir/core/controller_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/controller_test.cpp.o.d"
  "/root/repo/tests/core/models_test.cpp" "tests/CMakeFiles/core_test.dir/core/models_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/models_test.cpp.o.d"
  "/root/repo/tests/core/partitioned_far_queue_test.cpp" "tests/CMakeFiles/core_test.dir/core/partitioned_far_queue_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/partitioned_far_queue_test.cpp.o.d"
  "/root/repo/tests/core/power_cap_test.cpp" "tests/CMakeFiles/core_test.dir/core/power_cap_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/power_cap_test.cpp.o.d"
  "/root/repo/tests/core/power_feedback_property_test.cpp" "tests/CMakeFiles/core_test.dir/core/power_feedback_property_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/power_feedback_property_test.cpp.o.d"
  "/root/repo/tests/core/power_feedback_test.cpp" "tests/CMakeFiles/core_test.dir/core/power_feedback_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/power_feedback_test.cpp.o.d"
  "/root/repo/tests/core/self_tuning_test.cpp" "tests/CMakeFiles/core_test.dir/core/self_tuning_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/self_tuning_test.cpp.o.d"
  "/root/repo/tests/core/tunable_bfs_test.cpp" "tests/CMakeFiles/core_test.dir/core/tunable_bfs_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/tunable_bfs_test.cpp.o.d"
  "/root/repo/tests/core/tunable_pagerank_test.cpp" "tests/CMakeFiles/core_test.dir/core/tunable_pagerank_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/tunable_pagerank_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tunesssp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sssp/CMakeFiles/tunesssp_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/frontier/CMakeFiles/tunesssp_frontier.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tunesssp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tunesssp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tunesssp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
