file(REMOVE_RECURSE
  "CMakeFiles/graph_test.dir/graph/binary_io_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/binary_io_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/builder_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/builder_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/components_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/components_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/csr_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/csr_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/datasets_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/datasets_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/degree_stats_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/degree_stats_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/dimacs_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/dimacs_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/edge_list_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/edge_list_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/generator_property_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/generator_property_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/matrix_market_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/matrix_market_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/rmat_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/rmat_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/road_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/road_test.cpp.o.d"
  "graph_test"
  "graph_test.pdb"
  "graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
