
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/binary_io_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/binary_io_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/binary_io_test.cpp.o.d"
  "/root/repo/tests/graph/builder_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/builder_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/builder_test.cpp.o.d"
  "/root/repo/tests/graph/components_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/components_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/components_test.cpp.o.d"
  "/root/repo/tests/graph/csr_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/csr_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/csr_test.cpp.o.d"
  "/root/repo/tests/graph/datasets_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/datasets_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/datasets_test.cpp.o.d"
  "/root/repo/tests/graph/degree_stats_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/degree_stats_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/degree_stats_test.cpp.o.d"
  "/root/repo/tests/graph/dimacs_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/dimacs_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/dimacs_test.cpp.o.d"
  "/root/repo/tests/graph/edge_list_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/edge_list_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/edge_list_test.cpp.o.d"
  "/root/repo/tests/graph/generator_property_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/generator_property_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/generator_property_test.cpp.o.d"
  "/root/repo/tests/graph/matrix_market_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/matrix_market_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/matrix_market_test.cpp.o.d"
  "/root/repo/tests/graph/rmat_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/rmat_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/rmat_test.cpp.o.d"
  "/root/repo/tests/graph/road_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/road_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/road_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/tunesssp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tunesssp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
