# Empty dependencies file for overhead_controller.
# This may be replaced when dependencies are built.
