file(REMOVE_RECURSE
  "../bench/overhead_controller"
  "../bench/overhead_controller.pdb"
  "CMakeFiles/overhead_controller.dir/overhead_controller.cpp.o"
  "CMakeFiles/overhead_controller.dir/overhead_controller.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
