file(REMOVE_RECURSE
  "../bench/fig3_delta_vs_performance"
  "../bench/fig3_delta_vs_performance.pdb"
  "CMakeFiles/fig3_delta_vs_performance.dir/fig3_delta_vs_performance.cpp.o"
  "CMakeFiles/fig3_delta_vs_performance.dir/fig3_delta_vs_performance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_delta_vs_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
