# Empty compiler generated dependencies file for fig3_delta_vs_performance.
# This may be replaced when dependencies are built.
