# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3_delta_vs_performance.
