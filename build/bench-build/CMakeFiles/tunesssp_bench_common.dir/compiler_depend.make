# Empty compiler generated dependencies file for tunesssp_bench_common.
# This may be replaced when dependencies are built.
