
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/common.cpp" "bench-build/CMakeFiles/tunesssp_bench_common.dir/common.cpp.o" "gcc" "bench-build/CMakeFiles/tunesssp_bench_common.dir/common.cpp.o.d"
  "/root/repo/bench/perf_power.cpp" "bench-build/CMakeFiles/tunesssp_bench_common.dir/perf_power.cpp.o" "gcc" "bench-build/CMakeFiles/tunesssp_bench_common.dir/perf_power.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tunesssp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tunesssp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tunesssp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sssp/CMakeFiles/tunesssp_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tunesssp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/frontier/CMakeFiles/tunesssp_frontier.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
