file(REMOVE_RECURSE
  "CMakeFiles/tunesssp_bench_common.dir/common.cpp.o"
  "CMakeFiles/tunesssp_bench_common.dir/common.cpp.o.d"
  "CMakeFiles/tunesssp_bench_common.dir/perf_power.cpp.o"
  "CMakeFiles/tunesssp_bench_common.dir/perf_power.cpp.o.d"
  "libtunesssp_bench_common.a"
  "libtunesssp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunesssp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
