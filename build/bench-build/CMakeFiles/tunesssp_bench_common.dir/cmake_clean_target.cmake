file(REMOVE_RECURSE
  "libtunesssp_bench_common.a"
)
