# Empty compiler generated dependencies file for fig8_power_vs_setpoint.
# This may be replaced when dependencies are built.
