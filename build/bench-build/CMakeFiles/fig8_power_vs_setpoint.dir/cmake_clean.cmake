file(REMOVE_RECURSE
  "../bench/fig8_power_vs_setpoint"
  "../bench/fig8_power_vs_setpoint.pdb"
  "CMakeFiles/fig8_power_vs_setpoint.dir/fig8_power_vs_setpoint.cpp.o"
  "CMakeFiles/fig8_power_vs_setpoint.dir/fig8_power_vs_setpoint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_power_vs_setpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
