file(REMOVE_RECURSE
  "../bench/ablation_controller"
  "../bench/ablation_controller.pdb"
  "CMakeFiles/ablation_controller.dir/ablation_controller.cpp.o"
  "CMakeFiles/ablation_controller.dir/ablation_controller.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
