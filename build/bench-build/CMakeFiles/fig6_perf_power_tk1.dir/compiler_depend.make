# Empty compiler generated dependencies file for fig6_perf_power_tk1.
# This may be replaced when dependencies are built.
