file(REMOVE_RECURSE
  "../bench/fig6_perf_power_tk1"
  "../bench/fig6_perf_power_tk1.pdb"
  "CMakeFiles/fig6_perf_power_tk1.dir/fig6_perf_power_tk1.cpp.o"
  "CMakeFiles/fig6_perf_power_tk1.dir/fig6_perf_power_tk1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_perf_power_tk1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
