file(REMOVE_RECURSE
  "../bench/fig2_delta_vs_parallelism"
  "../bench/fig2_delta_vs_parallelism.pdb"
  "CMakeFiles/fig2_delta_vs_parallelism.dir/fig2_delta_vs_parallelism.cpp.o"
  "CMakeFiles/fig2_delta_vs_parallelism.dir/fig2_delta_vs_parallelism.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_delta_vs_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
