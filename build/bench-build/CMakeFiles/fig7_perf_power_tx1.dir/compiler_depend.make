# Empty compiler generated dependencies file for fig7_perf_power_tx1.
# This may be replaced when dependencies are built.
