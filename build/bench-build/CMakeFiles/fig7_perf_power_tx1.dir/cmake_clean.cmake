file(REMOVE_RECURSE
  "../bench/fig7_perf_power_tx1"
  "../bench/fig7_perf_power_tx1.pdb"
  "CMakeFiles/fig7_perf_power_tx1.dir/fig7_perf_power_tx1.cpp.o"
  "CMakeFiles/fig7_perf_power_tx1.dir/fig7_perf_power_tx1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_perf_power_tx1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
