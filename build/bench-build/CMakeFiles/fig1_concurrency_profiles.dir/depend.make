# Empty dependencies file for fig1_concurrency_profiles.
# This may be replaced when dependencies are built.
