file(REMOVE_RECURSE
  "../bench/fig1_concurrency_profiles"
  "../bench/fig1_concurrency_profiles.pdb"
  "CMakeFiles/fig1_concurrency_profiles.dir/fig1_concurrency_profiles.cpp.o"
  "CMakeFiles/fig1_concurrency_profiles.dir/fig1_concurrency_profiles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_concurrency_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
