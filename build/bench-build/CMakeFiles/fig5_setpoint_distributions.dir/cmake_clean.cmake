file(REMOVE_RECURSE
  "../bench/fig5_setpoint_distributions"
  "../bench/fig5_setpoint_distributions.pdb"
  "CMakeFiles/fig5_setpoint_distributions.dir/fig5_setpoint_distributions.cpp.o"
  "CMakeFiles/fig5_setpoint_distributions.dir/fig5_setpoint_distributions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_setpoint_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
