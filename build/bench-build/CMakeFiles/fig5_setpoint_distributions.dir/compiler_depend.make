# Empty compiler generated dependencies file for fig5_setpoint_distributions.
# This may be replaced when dependencies are built.
