file(REMOVE_RECURSE
  "../bench/generalization_knobs"
  "../bench/generalization_knobs.pdb"
  "CMakeFiles/generalization_knobs.dir/generalization_knobs.cpp.o"
  "CMakeFiles/generalization_knobs.dir/generalization_knobs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalization_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
