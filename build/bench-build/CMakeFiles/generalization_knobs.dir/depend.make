# Empty dependencies file for generalization_knobs.
# This may be replaced when dependencies are built.
