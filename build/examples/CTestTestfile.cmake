# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--scale" "12")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_road_navigation "/root/repo/build/examples/road_navigation" "--side" "96")
set_tests_properties(example_road_navigation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_social_network "/root/repo/build/examples/social_network" "--scale" "12")
set_tests_properties(example_social_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_power_capping "/root/repo/build/examples/power_capping" "--scale" "0.004" "--budget" "7.5")
set_tests_properties(example_power_capping PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dvfs_explorer "/root/repo/build/examples/dvfs_explorer" "--scale" "0.004" "--freq-stride" "8")
set_tests_properties(example_dvfs_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
